"""Launch observation hooks.

The serving runtime needs to see every kernel launch that flows through
the engine — which kernel ran, over what geometry, and the trace it
produced — without the interpreter knowing anything about sessions or
monitors.  Hooks are process-global and deliberately cheap: when none are
registered (the common case) a launch pays one truthiness check.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from typing import Callable, List

from .launch import Grid


@dataclass(frozen=True)
class LaunchEvent:
    """What one kernel launch looked like from the outside."""

    kernel: str
    grid: Grid
    trace: object  # repro.engine.trace.Trace
    backend: str = "interp"  # which backend executed it ("interp"/"codegen")


_HOOKS: List[Callable[[LaunchEvent], None]] = []


def add_launch_hook(hook: Callable[[LaunchEvent], None]) -> Callable:
    """Register ``hook`` to be called after every kernel launch; returns the
    hook so callers can hold it for :func:`remove_launch_hook`."""
    _HOOKS.append(hook)
    return hook


def remove_launch_hook(hook: Callable[[LaunchEvent], None]) -> None:
    """Deregister ``hook``; unknown hooks are ignored."""
    with contextlib.suppress(ValueError):
        _HOOKS.remove(hook)


@contextlib.contextmanager
def launch_hook(hook: Callable[[LaunchEvent], None]):
    """Scope a hook to a ``with`` block (what sessions use per launch)."""
    add_launch_hook(hook)
    try:
        yield hook
    finally:
        remove_launch_hook(hook)


def notify_launch(kernel: str, grid: Grid, trace, backend: str = "interp") -> None:
    """Called by the engine after each launch completes."""
    if not _HOOKS:
        return
    event = LaunchEvent(kernel=kernel, grid=grid, trace=trace, backend=backend)
    # Iterate over a copy so a hook may deregister itself while running.
    for hook in list(_HOOKS):
        hook(event)
