"""Launch geometry, argument binding and backend selection for kernels."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Union

import numpy as np

from .._options import (  # noqa: F401  (re-exported for compatibility)
    BACKENDS,
    deprecated,
    options as _options_scope,
    validate_backend,
)
from .._options import current_options
from ..errors import ExecutionError
from ..kernel import ir
from ..kernel.frontend import KernelFn


def default_backend() -> str:
    """The backend used when ``launch`` is not given one explicitly.

    Reads the unified :func:`repro.options` scope; the process default
    stays ``"interp"`` on every thread — the tuner's cost model depends
    on instruction/memory traces that only the interpreter records, and
    pool workers must start from that default rather than inherit
    whatever the spawning thread had scoped.
    """
    backend = current_options().backend
    return backend if backend is not None else "interp"


class use_backend(_options_scope):
    """Deprecated: scope the launch backend to a ``with`` block.

    Superseded by the unified :func:`repro.options` scope::

        with repro.options(backend="codegen"):
            ...
    """

    def __init__(self, name: str) -> None:
        deprecated("use_backend(...)", "repro.options(backend=...)")
        super().__init__(backend=validate_backend(name))

    def __enter__(self) -> str:
        return super().__enter__().backend


@dataclass(frozen=True)
class Grid:
    """A launch configuration: ``blocks x blocks_y`` blocks of
    ``threads_per_block x threads_per_block_y`` threads — CUDA's
    ``<<<dim3(bx, by), dim3(tx, ty)>>>``, with the y extents defaulting to
    1 for the common 1-D launch.

    Threads are linearized x-fastest (then y, then block x, then block y),
    so warps run along the x axis, exactly as on hardware — the coalescing
    statistics depend on this.
    """

    blocks: int
    threads_per_block: int
    blocks_y: int = 1
    threads_per_block_y: int = 1

    def __post_init__(self) -> None:
        if min(
            self.blocks, self.threads_per_block, self.blocks_y, self.threads_per_block_y
        ) < 1:
            raise ExecutionError(
                f"grid must be positive, got blocks=({self.blocks}, {self.blocks_y}) "
                f"threads=({self.threads_per_block}, {self.threads_per_block_y})"
            )

    @property
    def block_threads(self) -> int:
        return self.threads_per_block * self.threads_per_block_y

    @property
    def total_blocks(self) -> int:
        return self.blocks * self.blocks_y

    @property
    def threads(self) -> int:
        return self.total_blocks * self.block_threads

    @property
    def is_2d(self) -> bool:
        return self.blocks_y > 1 or self.threads_per_block_y > 1

    @staticmethod
    def for_elements(n: int, threads_per_block: int = 256) -> "Grid":
        """The usual one-thread-per-element configuration, rounded up."""
        blocks = max(1, (n + threads_per_block - 1) // threads_per_block)
        return Grid(blocks, threads_per_block)

    @staticmethod
    def for_image(width: int, height: int, tx: int = 16, ty: int = 16) -> "Grid":
        """One thread per pixel over 2-D tiles, rounded up per axis."""
        return Grid(
            blocks=max(1, (width + tx - 1) // tx),
            threads_per_block=tx,
            blocks_y=max(1, (height + ty - 1) // ty),
            threads_per_block_y=ty,
        )


def bind_arguments(
    fn: ir.Function, args: Union[Sequence, Dict[str, object]]
) -> Dict[str, object]:
    """Match positional or keyword launch arguments against kernel params.

    Array parameters must be NumPy arrays with the declared element dtype;
    they are flattened *as views* so kernel stores are visible to the caller
    (the device-memory model of CUDA, without the copies).  Scalars are cast
    to the declared dtype.
    """
    if isinstance(args, dict):
        missing = [p.name for p in fn.params if p.name not in args]
        extra = [k for k in args if not any(p.name == k for p in fn.params)]
        if missing or extra:
            raise ExecutionError(
                f"{fn.name}: bad arguments (missing={missing}, unexpected={extra})"
            )
        ordered = [args[p.name] for p in fn.params]
    else:
        ordered = list(args)
        if len(ordered) != len(fn.params):
            raise ExecutionError(
                f"{fn.name} takes {len(fn.params)} arguments, got {len(ordered)}"
            )

    bound: Dict[str, object] = {}
    for param, value in zip(fn.params, ordered):
        if param.is_array:
            if not isinstance(value, np.ndarray):
                raise ExecutionError(
                    f"{fn.name}: argument {param.name!r} must be a numpy array"
                )
            expected = param.type.dtype.to_numpy()
            if value.dtype != expected:
                raise ExecutionError(
                    f"{fn.name}: array {param.name!r} has dtype {value.dtype}, "
                    f"kernel declares {expected}"
                )
            if not value.flags["C_CONTIGUOUS"]:
                raise ExecutionError(
                    f"{fn.name}: array {param.name!r} must be C-contiguous "
                    "(kernel writes must alias the caller's buffer)"
                )
            bound[param.name] = value.reshape(-1)
        else:
            bound[param.name] = param.type.dtype.to_numpy().type(value)
    return bound


def resolve_kernel(kernel: Union[KernelFn, ir.Function]) -> ir.Function:
    if isinstance(kernel, KernelFn):
        return kernel.fn
    if isinstance(kernel, ir.Function):
        return kernel
    raise ExecutionError(f"not a kernel: {kernel!r}")


def resolve_module(kernel: Union[KernelFn, ir.Function], module=None) -> ir.Module:
    if module is not None:
        return module
    if isinstance(kernel, KernelFn):
        return kernel.module
    single = ir.Module()
    single.add(kernel)
    return single


class Program:
    """Host-side orchestration of a multi-kernel pipeline.

    Applications such as the three-phase parallel scan launch several
    kernels with host logic in between; a ``Program`` subclass implements
    :meth:`run` using :func:`repro.engine.launch` and accumulates all launch
    traces into ``self.trace`` so the cost model prices the pipeline as a
    whole.
    """

    def __init__(self) -> None:
        from .trace import Trace

        self.trace = Trace()

    def launch(self, kernel, grid: Grid, args, **kwargs):
        from .interpreter import launch as _launch

        sub_trace = _launch(kernel, grid, args, **kwargs)
        self.trace.merge(sub_trace)
        return sub_trace

    def reset_trace(self) -> None:
        from .trace import Trace

        self.trace = Trace()
