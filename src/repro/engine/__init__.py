"""Execution engine: launch geometry, vectorized interpreter, traces."""

from .._options import LaunchOptions, current_options, options
from .hooks import LaunchEvent, add_launch_hook, launch_hook, remove_launch_hook
from .interpreter import call_device_function, launch
from .launch import (
    BACKENDS,
    Grid,
    Program,
    bind_arguments,
    default_backend,
    use_backend,
    validate_backend,
)
from .trace import MemStats, Trace

__all__ = [
    "launch",
    "call_device_function",
    "Grid",
    "Program",
    "bind_arguments",
    "Trace",
    "MemStats",
    "LaunchEvent",
    "add_launch_hook",
    "remove_launch_hook",
    "launch_hook",
    "BACKENDS",
    "LaunchOptions",
    "current_options",
    "default_backend",
    "options",
    "use_backend",
    "validate_backend",
]
