"""Vectorized interpreter for IR kernels.

A launch executes *all* threads of the grid simultaneously: every scalar
local becomes either a uniform NumPy scalar or a ``(threads,)`` array, and
each IR statement is one (or a few) NumPy operations across the whole grid.
This gives data-parallel kernels exact numerical semantics at NumPy speed,
which is what the quality measurements in the experiments rely on.

Divergence is handled by *predication*: a thread-dependent ``if`` executes
both arms under complementary masks, merging assignments with ``np.where``
and limiting stores/atomics to active lanes.  ``return`` inside divergent
control flow deactivates lanes for the rest of the function.  This mirrors
how a GPU actually executes divergent warps (both paths issue), and the
trace deliberately counts an instruction once per *active lane*, the
standard linear approximation of warp serialization.

Loop bounds must be uniform — the same restriction CUDA kernels satisfy in
every benchmark the paper evaluates — and the interpreter enforces it.

The launch optionally records a :class:`~repro.engine.trace.Trace` of
instruction classes and memory access streams for the device cost model.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from .._options import LaunchOptions, current_options, deprecated
from ..errors import CodegenError, ExecutionError
from ..kernel import intrinsics, ir
from ..obs import trace as obs_trace
from .launch import (
    Grid,
    bind_arguments,
    resolve_kernel,
    resolve_module,
    validate_backend,
)
from .trace import Trace

_INT_KINDS = ("i", "u")


def launch(
    kernel,
    grid: Grid,
    args,
    module: Optional[ir.Module] = None,
    trace: Optional[Trace] = None,
    bounds_check: bool = True,
    call_observer=None,
    backend: Optional[str] = None,
    parallel=None,
    options: Optional[LaunchOptions] = None,
) -> Trace:
    """Execute ``kernel`` over ``grid`` with ``args`` (sequence or mapping).

    Returns the trace of this launch (a fresh one unless ``trace`` is
    given, in which case events are accumulated into it and it is
    returned).  Array arguments are written in place.

    ``call_observer(name, arg_arrays)`` is invoked for every device-function
    call; the memoization profiler uses it to harvest the value streams that
    feed bit tuning (paper §3.1.3, "applying training data to the function").

    ``options`` is a :class:`repro.LaunchOptions` deciding backend,
    sharding and executor for this call; its set fields take precedence
    over the ambient :func:`repro.options` scope.  Backend ``"auto"``
    compiles the kernel via ``repro.codegen`` whenever neither ``trace``
    nor ``call_observer`` is requested — those need the interpreter,
    which records per-op events codegen elides — and falls back to the
    interpreter if lowering fails.  Kernels the shardability analysis
    rejects (and interpreter launches) transparently run serial.

    ``backend``/``parallel`` are the deprecated keyword spellings of the
    same knobs; they forward into ``options`` and warn.
    """
    fn = resolve_kernel(kernel)
    mod = resolve_module(kernel, module)
    if fn.kind != "kernel":
        raise ExecutionError(f"{fn.name} is a device function, not a kernel")
    if backend is not None or parallel is not None:
        deprecated(
            "launch(backend=..., parallel=...) keywords",
            "launch(options=LaunchOptions(...)) or a repro.options(...) scope",
        )
        legacy = LaunchOptions(backend=backend, parallel=parallel)
        options = legacy if options is None else legacy.merged_over(options)
    ambient = current_options()
    effective = ambient if options is None else options.merged_over(ambient)
    chosen = validate_backend(
        effective.backend if effective.backend is not None else "interp"
    )
    wants_interp = trace is not None or call_observer is not None
    if chosen == "codegen" and call_observer is not None:
        raise ExecutionError(
            f"{fn.name}: backend 'codegen' cannot honor call_observer; "
            "device-call observation requires the interpreter"
        )
    if chosen == "auto":
        chosen = "interp" if wants_interp else "codegen"
        fallback = True
    else:
        fallback = False
    # Any launch that cannot participate in fusion is a window boundary:
    # a producer deferred by repro.engine.fusion must run before it.
    will_offer = chosen == "codegen" and bool(effective.fuse)
    if not will_offer:
        _flush_fusion()
    bound = bind_arguments(fn, args)
    t = trace if trace is not None else Trace()
    if chosen == "codegen":
        from ..codegen import cache as _codegen_cache

        try:
            compiled = _codegen_cache.get_compiled(fn, mod, grid, bounds_check)
        except CodegenError:
            if not fallback:
                raise
            _codegen_cache.STATS.fallbacks += 1
            if will_offer:
                _flush_fusion()  # falling back to interp: boundary after all
        else:
            if will_offer:
                from . import fusion

                if fusion.offer(
                    fn, mod, compiled, grid, bound, effective, bounds_check
                ):
                    # Deferred as a producer or executed as the consumer
                    # half of a fused pair; either way the launch is
                    # accounted here and the kernel body is fusion's.
                    t.count_launch(grid.threads)
                    from .hooks import notify_launch

                    notify_launch(fn.name, grid, t, backend="codegen")
                    return t
            t.count_launch(grid.threads)
            with obs_trace.span(
                "engine.launch", kernel=fn.name, backend="codegen",
                threads=grid.threads,
            ):
                if not _maybe_shard(fn, mod, compiled, grid, bound, effective):
                    compiled.run(grid, bound)
            from .hooks import notify_launch

            notify_launch(fn.name, grid, t, backend="codegen")
            return t
    execution = _Execution(fn, mod, grid, bound, t, bounds_check)
    execution.call_observer = call_observer
    with obs_trace.span(
        "engine.launch", kernel=fn.name, backend="interp", threads=grid.threads
    ):
        execution.run()
    from .hooks import notify_launch

    notify_launch(fn.name, grid, t)
    return t


def _flush_fusion() -> None:
    """Run any launch the fusion window deferred on this thread.

    Reached through ``sys.modules`` so sessions that never enable
    ``fuse`` pay nothing — the fusion module is only imported (and its
    window only populated) by launches that opted in.
    """
    import sys

    fusion = sys.modules.get("repro.engine.fusion")
    if fusion is not None:
        fusion.flush()


def _maybe_shard(fn, mod, compiled, grid, bound, effective) -> bool:
    """Shard a codegen launch when the effective options ask for workers.

    Kept import-lazy so serial launches (the default everywhere) never
    pay for the :mod:`repro.parallel` machinery.
    """
    if effective.parallel is None and effective.executor is None:
        return False
    from ..parallel.pool import policy_from_options

    policy = policy_from_options(effective)
    if policy.serial:
        return False
    from ..parallel.shard import maybe_run_sharded

    return maybe_run_sharded(fn, mod, compiled, grid, bound, policy)


def call_device_function(fn, module: ir.Module, args) -> np.ndarray:
    """Evaluate a device function element-wise over NumPy argument arrays.

    ``args`` is one array (or scalar) per scalar parameter, broadcast to a
    common length.  Used by bit tuning and lookup-table population, which
    need the exact function evaluated over large batches of (quantized)
    inputs without the enclosing kernel.
    """
    from ..kernel.frontend import KernelFn

    if isinstance(fn, KernelFn):
        module = fn.module
        fn = fn.fn
    if fn.kind != "device":
        raise ExecutionError(f"{fn.name} is not a device function")
    arrays = [np.atleast_1d(np.asarray(a)) for a in args]
    n = max(a.size for a in arrays)
    execution = _Execution(fn, module, Grid(1, 1), {}, Trace(), True)
    execution.T = n
    execution.global_ids = np.arange(n, dtype=np.int32)
    execution.thread_ids = execution.global_ids
    execution.block_ids = np.zeros(n, dtype=np.int32)
    execution.root = _Frame({}, None, n)
    values = []
    for param, arr in zip(fn.params, arrays):
        cast = arr.astype(param.type.dtype.to_numpy(), copy=False)
        values.append(np.broadcast_to(cast, (n,)) if cast.size != n else cast)
    result = execution._call_device(fn, values, execution.root)
    return np.broadcast_to(result, (n,)) if np.ndim(result) == 0 else result


class _Frame:
    """Execution state of one function activation."""

    __slots__ = ("env", "mask", "active", "ret_val", "ret_mask", "returned_all")

    def __init__(self, env: Dict[str, object], mask, active: int) -> None:
        self.env = env
        self.mask = mask  # None (all live) or bool (T,) array
        self.active = active  # number of live lanes (for op counting)
        self.ret_val = None
        self.ret_mask = None  # lanes that have executed `return`
        self.returned_all = False


class _Execution:
    def __init__(self, fn, module, grid, bound_args, trace, bounds_check):
        self.fn = fn
        self.module = module
        self.grid = grid
        self.trace = trace
        self.bounds_check = bounds_check
        self.T = grid.threads
        linear = np.arange(self.T, dtype=np.int32)
        block_threads = np.int32(grid.block_threads)
        self.global_ids = linear
        self.thread_ids = linear % block_threads  # in-block linear id
        self.block_ids = linear // block_threads  # linear block id
        # 2-D decomposition (x fastest within a block, block x fastest in
        # the grid) — for 1-D launches the x ids equal the linear ids.
        tx = np.int32(grid.threads_per_block)
        self.thread_ids_x = self.thread_ids % tx
        self.thread_ids_y = self.thread_ids // tx
        self.block_ids_x = self.block_ids % np.int32(grid.blocks)
        self.block_ids_y = self.block_ids // np.int32(grid.blocks)
        self.global_ids_x = self.block_ids_x * tx + self.thread_ids_x
        self.global_ids_y = (
            self.block_ids_y * np.int32(grid.threads_per_block_y) + self.thread_ids_y
        )
        self.arrays: Dict[str, np.ndarray] = {}
        self.shared: Dict[str, np.ndarray] = {}
        env: Dict[str, object] = {}
        for name, value in bound_args.items():
            if isinstance(value, np.ndarray):
                self.arrays[name] = value
            else:
                env[name] = value
        self.root = _Frame(env, None, self.T)
        self.call_observer = None

    # ------------------------------------------------------------------ run

    def run(self) -> None:
        self.trace.count_launch(self.T)
        self._exec_body(self.fn.body, self.root)

    # ----------------------------------------------------------- statements

    def _exec_body(self, body, frame: _Frame) -> None:
        for stmt in body:
            if frame.returned_all:
                return
            self._exec_stmt(stmt, frame)

    def _exec_stmt(self, stmt, frame: _Frame) -> None:
        if isinstance(stmt, ir.Assign):
            value = self._eval(stmt.value, frame)
            self._assign(stmt.target, value, frame)
        elif isinstance(stmt, ir.Store):
            self._store(stmt, frame)
        elif isinstance(stmt, ir.AtomicRMW):
            self._atomic(stmt, frame)
        elif isinstance(stmt, ir.If):
            self._exec_if(stmt, frame)
        elif isinstance(stmt, ir.For):
            self._exec_for(stmt, frame)
        elif isinstance(stmt, ir.Return):
            self._exec_return(stmt, frame)
        elif isinstance(stmt, ir.Barrier):
            self.trace.count_op("barrier", "i32", 1)
        elif isinstance(stmt, ir.SharedAlloc):
            shape = (self.grid.blocks,) + tuple(stmt.shape)
            self.shared[stmt.name] = np.zeros(shape, dtype=stmt.dtype.to_numpy())
        else:
            raise ExecutionError(f"cannot execute {type(stmt).__name__}")

    def _assign(self, name: str, value, frame: _Frame) -> None:
        live = self._live_mask(frame)
        if live is None or name not in frame.env:
            frame.env[name] = value
        else:
            old = frame.env[name]
            frame.env[name] = np.where(live, value, old)

    def _store(self, stmt: ir.Store, frame: _Frame) -> None:
        idx = self._eval(stmt.index, frame)
        value = self._eval(stmt.value, frame)
        buf, space = self._resolve_array(stmt.array, frame)
        flat_idx, addresses = self._flatten_index(stmt.array, idx, frame)
        live = self._live_mask(frame)
        value = np.asarray(value, dtype=buf.dtype)
        if live is None:
            buf.reshape(-1)[flat_idx] = value
            count = self.T if np.ndim(flat_idx) else self.T
        else:
            fi = np.broadcast_to(np.asarray(flat_idx), (self.T,))[live]
            val = np.broadcast_to(value, (self.T,))[live]
            buf.reshape(-1)[fi] = val
            count = frame.active
        self.trace.record_access(
            space, "store", buf.dtype.itemsize, count, addresses, stmt.array.name
        )

    def _atomic(self, stmt: ir.AtomicRMW, frame: _Frame) -> None:
        idx = self._eval(stmt.index, frame)
        value = self._eval(stmt.value, frame)
        buf, space = self._resolve_array(stmt.array, frame)
        flat_idx, addresses = self._flatten_index(stmt.array, idx, frame)
        live = self._live_mask(frame)
        flat = buf.reshape(-1)
        fi = np.broadcast_to(np.asarray(flat_idx), (self.T,))
        val = np.broadcast_to(np.asarray(value, dtype=buf.dtype), (self.T,))
        if live is not None:
            fi, val = fi[live], val[live]
        op = stmt.op
        if op == "add":
            np.add.at(flat, fi, val)
        elif op == "inc":
            np.add.at(flat, fi, np.ones_like(val))
        elif op == "min":
            np.minimum.at(flat, fi, val)
        elif op == "max":
            np.maximum.at(flat, fi, val)
        elif op == "and":
            np.bitwise_and.at(flat, fi, val)
        elif op == "or":
            np.bitwise_or.at(flat, fi, val)
        elif op == "xor":
            np.bitwise_xor.at(flat, fi, val)
        else:  # pragma: no cover - guarded by IR validation
            raise ExecutionError(f"unknown atomic {op}")
        count = frame.active if live is not None else self.T
        self.trace.count_op("atomic", stmt.array.dtype.name, count)
        self.trace.record_access(
            space, "atomic", buf.dtype.itemsize, count, addresses, stmt.array.name
        )

    def _exec_if(self, stmt: ir.If, frame: _Frame) -> None:
        cond = self._eval(stmt.cond, frame)
        self.trace.count_op("branch", "bool", frame.active)
        if np.ndim(cond) == 0:
            body = stmt.then_body if bool(cond) else stmt.else_body
            self._exec_body(body, frame)
            return
        cond = np.asarray(cond, dtype=bool)
        base = frame.mask
        then_mask = cond if base is None else (cond & base)
        else_mask = ~cond if base is None else (~cond & base)
        saved_mask, saved_active = frame.mask, frame.active
        for mask, body in ((then_mask, stmt.then_body), (else_mask, stmt.else_body)):
            if not body:
                continue
            active = int(mask.sum())
            if active == 0:
                continue
            frame.mask, frame.active = mask, active
            frame.returned_all = False  # branch-local; recomputed below
            self._exec_body(body, frame)
            frame.mask, frame.active = saved_mask, saved_active
        frame.mask = saved_mask
        live_after = self._live_count(frame)
        # Lanes that returned inside a branch stay inactive from here on.
        frame.active = live_after if frame.ret_mask is not None else saved_active
        frame.returned_all = frame.ret_mask is not None and live_after == 0

    def _exec_for(self, stmt: ir.For, frame: _Frame) -> None:
        start = self._uniform_int(self._eval(stmt.start, frame), "loop start")
        stop = self._uniform_int(self._eval(stmt.stop, frame), "loop stop")
        step = self._uniform_int(self._eval(stmt.step, frame), "loop step")
        if step == 0:
            raise ExecutionError(f"{self.fn.name}: zero loop step")
        for k in range(start, stop, step):
            frame.env[stmt.var] = np.int32(k)
            self.trace.count_op("branch", "i32", frame.active)
            self._exec_body(stmt.body, frame)
            if frame.returned_all:
                return

    def _exec_return(self, stmt: ir.Return, frame: _Frame) -> None:
        value = self._eval(stmt.value, frame) if stmt.value is not None else None
        live = self._live_mask(frame)
        if live is None:
            frame.ret_val = value
            frame.returned_all = True
            if frame.ret_mask is None:
                frame.ret_mask = np.ones(self.T, dtype=bool)
            else:
                frame.ret_mask[:] = True
            return
        if value is not None:
            if frame.ret_val is None:
                frame.ret_val = np.where(live, value, np.zeros_like(value))
            else:
                frame.ret_val = np.where(live, value, frame.ret_val)
        if frame.ret_mask is None:
            frame.ret_mask = live.copy()
        else:
            frame.ret_mask |= live
        frame.returned_all = self._live_count(frame) == 0

    # --------------------------------------------------------------- values

    def _live_mask(self, frame: _Frame):
        """Lanes executing right now: frame mask minus already-returned."""
        if frame.ret_mask is None:
            return frame.mask
        if frame.mask is None:
            return ~frame.ret_mask
        return frame.mask & ~frame.ret_mask

    def _live_count(self, frame: _Frame) -> int:
        live = self._live_mask(frame)
        return self.T if live is None else int(live.sum())

    def _uniform_int(self, value, what: str) -> int:
        if np.ndim(value) != 0:
            flat = np.asarray(value).ravel()
            if flat.size and (flat != flat[0]).any():
                raise ExecutionError(
                    f"{self.fn.name}: {what} must be uniform across threads"
                )
            return int(flat[0])
        return int(value)

    def _resolve_array(self, ref: ir.ArrayRef, frame: _Frame):
        if ref.name in self.shared:
            return self.shared[ref.name], "shared"
        if ref.name in self.arrays:
            return self.arrays[ref.name], ref.type.space
        raise ExecutionError(f"{self.fn.name}: unbound array {ref.name!r}")

    def _flatten_index(self, ref: ir.ArrayRef, idx, frame: _Frame):
        """Return (flat index into the buffer, addresses for the trace).

        Shared arrays are per-block: logical index i of a thread in block b
        maps to flat index b*size + i.  Global arrays are flat already.
        Out-of-range indices raise when all lanes are live and are clamped
        (then masked out) when under predication.
        """
        if ref.name in self.shared:
            buf = self.shared[ref.name]
            size = buf.shape[1] if buf.ndim > 1 else buf.size
            idx_arr = np.asarray(idx)
            if self.bounds_check:
                self._check_bounds(ref, idx_arr, size, frame)
            idx_arr = np.clip(idx_arr, 0, size - 1)
            flat = self.block_ids * np.int64(size) + idx_arr
            # In-block addresses: used only for footprint tracking.
            return flat, idx_arr
        buf = self.arrays[ref.name]
        idx_arr = np.asarray(idx)
        if self.bounds_check:
            self._check_bounds(ref, idx_arr, buf.size, frame)
        idx_arr = np.clip(idx_arr, 0, max(buf.size - 1, 0))
        return idx_arr, idx_arr

    def _check_bounds(self, ref, idx_arr, size, frame) -> None:
        live = self._live_mask(frame)
        checked = idx_arr
        if live is not None and np.ndim(idx_arr) != 0:
            checked = idx_arr[live]
        if checked.size == 0:
            return
        lo, hi = checked.min(), checked.max()
        if lo < 0 or hi >= size:
            raise ExecutionError(
                f"{self.fn.name}: index into {ref.name!r} out of range "
                f"[{int(lo)}, {int(hi)}] vs size {size}"
            )

    # ---------------------------------------------------------- expressions

    def _eval(self, expr: ir.Expr, frame: _Frame):
        if isinstance(expr, ir.Const):
            return expr.dtype.to_numpy().type(expr.value)
        if isinstance(expr, ir.Var):
            try:
                return frame.env[expr.name]
            except KeyError:
                raise ExecutionError(
                    f"{self.fn.name}: read of unassigned variable {expr.name!r}"
                )
        if isinstance(expr, ir.ArrayRef):
            return expr  # only consumed by Load/Store/Atomic
        if isinstance(expr, ir.BinOp):
            return self._eval_binop(expr, frame)
        if isinstance(expr, ir.UnOp):
            operand = self._eval(expr.operand, frame)
            self.trace.count_op("alu", expr.dtype.name, frame.active)
            if expr.op == "neg":
                return -operand
            if expr.op == "lnot":
                return ~np.asarray(operand, dtype=bool) if np.ndim(operand) else not operand
            return ~operand  # bnot
        if isinstance(expr, ir.Cast):
            value = self._eval(expr.operand, frame)
            self.trace.count_op("alu", expr.dtype.name, frame.active)
            target = expr.dtype.to_numpy()
            # NaN/Inf -> int casts are well-defined garbage in C; silence
            # the NumPy warning (downstream clamps handle the value).
            with np.errstate(invalid="ignore"):
                if np.ndim(value) == 0:
                    return target.type(value)
                return np.asarray(value).astype(target)
        if isinstance(expr, ir.Select):
            cond = self._eval(expr.cond, frame)
            a = self._eval(expr.if_true, frame)
            b = self._eval(expr.if_false, frame)
            self.trace.count_op("alu", expr.dtype.name, frame.active)
            out_dtype = expr.dtype.to_numpy()
            if np.ndim(cond) == 0:
                chosen = a if bool(cond) else b
                return np.asarray(chosen, dtype=out_dtype) if np.ndim(chosen) else out_dtype.type(chosen)
            return np.where(cond, a, b).astype(out_dtype, copy=False)
        if isinstance(expr, ir.Load):
            return self._eval_load(expr, frame)
        if isinstance(expr, ir.Call):
            return self._eval_call(expr, frame)
        raise ExecutionError(f"cannot evaluate {type(expr).__name__}")

    def _eval_load(self, expr: ir.Load, frame: _Frame):
        idx = self._eval(expr.index, frame)
        buf, space = self._resolve_array(expr.array, frame)
        flat_idx, addresses = self._flatten_index(expr.array, idx, frame)
        value = buf.reshape(-1)[flat_idx]
        self.trace.record_access(
            space, "load", buf.dtype.itemsize, frame.active, addresses,
            expr.array.name,
        )
        return value

    def _eval_binop(self, expr: ir.BinOp, frame: _Frame):
        a = self._eval(expr.left, frame)
        b = self._eval(expr.right, frame)
        op = expr.op
        dtype = expr.dtype
        self.trace.count_op(_binop_class(op, dtype), dtype.name, frame.active)
        np_dtype = dtype.to_numpy()
        with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
            if op == "add":
                out = np.add(a, b)
            elif op == "sub":
                out = np.subtract(a, b)
            elif op == "mul":
                out = np.multiply(a, b)
            elif op == "div":
                out = _c_divide(a, b, dtype)
            elif op == "mod":
                out = _c_mod(a, b, dtype)
            elif op == "and":
                out = np.bitwise_and(a, b)
            elif op == "or":
                out = np.bitwise_or(a, b)
            elif op == "xor":
                out = np.bitwise_xor(a, b)
            elif op == "shl":
                out = np.left_shift(a, b)
            elif op == "shr":
                out = np.right_shift(a, b)
            elif op == "lt":
                out = np.less(a, b)
            elif op == "le":
                out = np.less_equal(a, b)
            elif op == "gt":
                out = np.greater(a, b)
            elif op == "ge":
                out = np.greater_equal(a, b)
            elif op == "eq":
                out = np.equal(a, b)
            elif op == "ne":
                out = np.not_equal(a, b)
            elif op == "land":
                out = np.logical_and(a, b)
            elif op == "lor":
                out = np.logical_or(a, b)
            else:  # pragma: no cover - guarded by IR construction
                raise ExecutionError(f"unknown binop {op}")
        if np.ndim(out) == 0:
            return np_dtype.type(out)
        return np.asarray(out).astype(np_dtype, copy=False)

    def _eval_call(self, expr: ir.Call, frame: _Frame):
        name = expr.func
        if name == "global_id":
            return self.global_ids
        if name == "thread_id":
            return self.thread_ids
        if name == "block_id":
            return self.block_ids
        if name == "block_dim":
            return np.int32(self.grid.threads_per_block)
        if name == "grid_dim":
            return np.int32(self.grid.blocks)
        if name == "global_id_x":
            return self.global_ids_x
        if name == "global_id_y":
            return self.global_ids_y
        if name == "thread_id_x":
            return self.thread_ids_x
        if name == "thread_id_y":
            return self.thread_ids_y
        if name == "block_id_x":
            return self.block_ids_x
        if name == "block_id_y":
            return self.block_ids_y
        if name == "block_dim_x":
            return np.int32(self.grid.threads_per_block)
        if name == "block_dim_y":
            return np.int32(self.grid.threads_per_block_y)
        if name == "grid_dim_x":
            return np.int32(self.grid.blocks)
        if name == "grid_dim_y":
            return np.int32(self.grid.blocks_y)
        args = [self._eval(a, frame) for a in expr.args]
        builtin = intrinsics.get(name)
        if builtin is not None:
            self.trace.count_op(builtin.latency_class, expr.dtype.name, frame.active)
            with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
                out = builtin.evaluate(*args)
            np_dtype = expr.dtype.to_numpy()
            if np.ndim(out) == 0:
                return np_dtype.type(out)
            return np.asarray(out).astype(np_dtype, copy=False)
        if name in self.module and self.module[name].kind == "device":
            if self.call_observer is not None:
                self.call_observer(name, args)
            return self._call_device(self.module[name], args, frame)
        raise ExecutionError(f"{self.fn.name}: call to unknown function {name!r}")

    def _call_device(self, fn: ir.Function, args, frame: _Frame):
        self.trace.count_op("call", "i32", frame.active)
        env = {}
        for param, value in zip(fn.params, args):
            env[param.name] = value
        callee = _Frame(env, frame.mask, frame.active)
        callee.ret_mask = None if frame.ret_mask is None else frame.ret_mask.copy()
        saved_fn = self.fn
        self.fn = fn
        try:
            self._exec_body(fn.body, callee)
        finally:
            self.fn = saved_fn
        if callee.ret_val is None:
            raise ExecutionError(f"device function {fn.name} did not return")
        return callee.ret_val


def _binop_class(op: str, dtype) -> str:
    if op == "div":
        return "fdiv" if dtype.is_float else "idiv"
    if op == "mod":
        return "fdiv" if dtype.is_float else "idiv"
    if op == "mul":
        return "fmul" if dtype.is_float else "imul"
    return "alu"


def _c_divide(a, b, dtype):
    """C-semantics division: truncation toward zero for integers."""
    if dtype.is_float:
        return np.divide(a, b)
    a64 = np.asarray(a, dtype=np.int64)
    b64 = np.asarray(b, dtype=np.int64)
    q = np.floor_divide(a64, b64)
    r = a64 - q * b64
    fix = (r != 0) & ((a64 < 0) != (b64 < 0))
    return q + fix


def _c_mod(a, b, dtype):
    """C-semantics remainder: sign follows the dividend for integers."""
    if dtype.is_float:
        return np.fmod(a, b)
    q = _c_divide(a, b, dtype)
    return np.asarray(a, dtype=np.int64) - q * np.asarray(b, dtype=np.int64)
