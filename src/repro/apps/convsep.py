"""Convolution Separable benchmark (Table 1: Image Processing, 2048x2048,
Stencil-Reduction, L2-norm).

A separable Gaussian blur: a 1x17 row pass followed by a 17x1 column
pass, each a constant-trip loop over taps (the paper: "two stencil loops
with 1x17 tiles").  Both the stencil optimization (replicating image
reads along the tap axis) and the reduction optimization (perforating the
tap loop with the x-N adjustment) apply; the paper picks stencil for the
GPU and reduction for the CPU.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..approx.base import ApproxKernel
from ..approx.reduction import ReductionTransform
from ..approx.stencil import StencilTransform
from ..engine import Grid, Trace, launch
from ..kernel import kernel
from ..kernel.dsl import *  # noqa: F401,F403
from ..patterns import Pattern, PatternDetector, StencilMatch
from ..runtime.quality import L2_NORM
from .base import AppInfo, Application
from .images import synthetic_image

PAPER_SIDE = 2048
RADIUS = 8  # 17-tap filter


@kernel
def conv_row_kernel(out: array_f32, img: array_f32, taps: array_f32, w: i32, h: i32):
    gid = global_id()
    y = gid / w
    x = gid % w
    if (x >= 8) and (x < w - 8) and (y < h):
        acc = 0.0
        for t in range(-8, 9):
            acc += taps[t + 8] * img[y * w + (x + t)]
        out[gid] = acc
    else:
        if (y >= 0) and (y < h) and (x >= 0):
            out[gid] = img[gid]


@kernel
def conv_col_kernel(out: array_f32, img: array_f32, taps: array_f32, w: i32, h: i32):
    gid = global_id()
    y = gid / w
    x = gid % w
    if (y >= 8) and (y < h - 8) and (x < w):
        acc = 0.0
        for t in range(-8, 9):
            acc += taps[t + 8] * img[(y + t) * w + x]
        out[gid] = acc
    else:
        if (y >= 0) and (y < h) and (x >= 0):
            out[gid] = img[gid]


def gaussian_taps(sigma: float = 3.0) -> np.ndarray:
    t = np.arange(-RADIUS, RADIUS + 1, dtype=np.float64)
    k = np.exp(-(t**2) / (2 * sigma**2))
    return (k / k.sum()).astype(np.float32)


def reference(img: np.ndarray, taps: np.ndarray) -> np.ndarray:
    p = img.astype(np.float64)
    t64 = taps.astype(np.float64)
    h, w = p.shape
    row = p.copy()
    acc = np.zeros((h, w - 2 * RADIUS))
    for i, tap in enumerate(t64):
        acc += tap * p[:, i : w - 2 * RADIUS + i]
    row[:, RADIUS:-RADIUS] = acc
    col = row.copy()
    acc = np.zeros((h - 2 * RADIUS, w))
    for i, tap in enumerate(t64):
        acc += tap * row[i : h - 2 * RADIUS + i, :]
    col[RADIUS:-RADIUS, :] = acc
    return col


@dataclass
class ConvSepVariant:
    """A matched pair of rewritten row/column kernels."""

    name: str
    pattern: Pattern
    row: ApproxKernel
    col: ApproxKernel
    knobs: Dict[str, object] = field(default_factory=dict)
    aggressiveness: float = 0.0


class ConvolutionSeparableApp(Application):
    """Two-pass separable 17-tap Gaussian convolution."""

    info = AppInfo(
        name="Convolution Separable",
        domain="Image Processing",
        input_size="2048x2048 image",
        patterns=("stencil", "reduction"),
        error_metric="L2-norm",
    )
    metric = L2_NORM

    def __init__(self, scale: float = 0.01, seed: int = 0) -> None:
        super().__init__(scale=scale, seed=seed)
        self.side = max(64, int(PAPER_SIDE * np.sqrt(scale)))
        self.taps = gaussian_taps()

    def generate_inputs(self, seed: Optional[int] = None) -> Dict[str, object]:
        s = self.seed if seed is None else seed
        return {"img": synthetic_image(self.side, self.side, seed=s)}

    def _run(self, row_kernel, row_module, col_kernel, col_module, inputs):
        img = inputs["img"]
        tmp = np.zeros_like(img)
        out = np.zeros_like(img)
        grid = Grid.for_elements(img.size)
        trace = Trace()
        base_row = [tmp, img, self.taps, self.side, self.side]
        base_col = [out, tmp, self.taps, self.side, self.side]
        launch(row_kernel, grid, base_row, module=row_module, trace=trace)
        launch(col_kernel, grid, base_col, module=col_module, trace=trace)
        return out, trace

    def run_exact(self, inputs):
        return self._run(conv_row_kernel, conv_row_kernel.module,
                         conv_col_kernel, conv_col_kernel.module, inputs)

    def run_variant(self, variant: ConvSepVariant, inputs):
        row = variant.row
        col = variant.col
        return self._run(
            row.module[row.kernel], row.module, col.module[col.kernel], col.module,
            inputs,
        )

    def build_variants(self, toq: float, config) -> List[ConvSepVariant]:
        """Stencil variants (image-tile replication in both passes) and
        reduction variants (tap-loop perforation in both passes), with the
        same knob value applied to row and column kernels."""
        detector = PatternDetector()
        variants: List[ConvSepVariant] = []

        def image_tile_match(kernel_fn):
            matches = detector.detect(kernel_fn).for_kernel(kernel_fn.fn.name)
            for m in matches:
                if isinstance(m, StencilMatch):
                    img_tiles = [t for t in m.tiles if t.array == "img"]
                    if img_tiles:
                        return StencilMatch(
                            pattern=m.pattern, kernel=m.kernel, tiles=img_tiles
                        )
            return None

        stencil = StencilTransform(
            schemes=("column", "row", "center"),
            reaching_distances=config.reaching_distances,
        )
        row_match = image_tile_match(conv_row_kernel)
        col_match = image_tile_match(conv_col_kernel)
        if row_match and col_match:
            rows = stencil.generate(conv_row_kernel.module, "conv_row_kernel", row_match)
            cols = stencil.generate(conv_col_kernel.module, "conv_col_kernel", col_match)
            for rv, cv in zip(rows, cols):
                variants.append(
                    ConvSepVariant(
                        name=f"convsep__{rv.knobs['scheme']}_rd{rv.knobs['reaching_distance']}",
                        pattern=Pattern.STENCIL,
                        row=rv,
                        col=cv,
                        knobs=dict(rv.knobs),
                        aggressiveness=rv.aggressiveness,
                    )
                )

        reduction = ReductionTransform(skipping_rates=config.skipping_rates)
        red_matches_row = [
            m
            for m in detector.detect(conv_row_kernel).for_kernel("conv_row_kernel")
            if m.pattern is Pattern.REDUCTION
        ]
        red_matches_col = [
            m
            for m in detector.detect(conv_col_kernel).for_kernel("conv_col_kernel")
            if m.pattern is Pattern.REDUCTION
        ]
        if red_matches_row and red_matches_col:
            rows = reduction.generate(
                conv_row_kernel.module, "conv_row_kernel", red_matches_row[0]
            )
            cols = reduction.generate(
                conv_col_kernel.module, "conv_col_kernel", red_matches_col[0]
            )
            for rv, cv in zip(rows, cols):
                variants.append(
                    ConvSepVariant(
                        name=f"convsep__red_skip{rv.knobs['skipping_rate']}",
                        pattern=Pattern.REDUCTION,
                        row=rv,
                        col=cv,
                        knobs=dict(rv.knobs),
                        aggressiveness=10.0 + rv.aggressiveness,
                    )
                )
        return variants
