"""The 13 benchmark applications of paper Table 1, plus case-study
functions, synthetic image generation and the three-phase scan substrate."""

from .base import AppInfo, Application, KernelApplication
from .registry import APP_CLASSES, all_apps, make_app

__all__ = [
    "AppInfo",
    "Application",
    "KernelApplication",
    "APP_CLASSES",
    "all_apps",
    "make_app",
]
