"""Registry of the 13 Table-1 benchmarks.

``make_app(name)`` instantiates a benchmark at its default quick scale;
``all_apps()`` builds the whole suite in Table-1 order.  Scales are small
enough that the entire Fig-11 sweep runs in minutes; pass ``scale=1.0``
to restore the paper's input sizes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Type

from .base import Application
from .blackscholes import BlackScholesApp
from .boxmuller import BoxMullerApp
from .convsep import ConvolutionSeparableApp
from .cumhist import CumulativeHistogramApp
from .denoise import ImageDenoisingApp
from .gamma import GammaCorrectionApp
from .gaussian import GaussianFilterApp, MeanFilterApp
from .hotspot import HotSpotApp
from .kde import KernelDensityApp
from .matmul import MatrixMultiplyApp
from .naivebayes import NaiveBayesApp
from .quasirandom import QuasirandomApp

#: Table-1 order.
APP_CLASSES: Dict[str, Type[Application]] = {
    "blackscholes": BlackScholesApp,
    "quasirandom": QuasirandomApp,
    "gamma": GammaCorrectionApp,
    "boxmuller": BoxMullerApp,
    "hotspot": HotSpotApp,
    "convsep": ConvolutionSeparableApp,
    "gaussian": GaussianFilterApp,
    "meanfilter": MeanFilterApp,
    "matmul": MatrixMultiplyApp,
    "denoise": ImageDenoisingApp,
    "naivebayes": NaiveBayesApp,
    "kde": KernelDensityApp,
    "cumhist": CumulativeHistogramApp,
}


def make_app(name: str, scale: Optional[float] = None, seed: int = 0) -> Application:
    """Instantiate one benchmark by registry key."""
    try:
        cls = APP_CLASSES[name]
    except KeyError:
        raise KeyError(f"unknown app {name!r}; known: {sorted(APP_CLASSES)}")
    if scale is None:
        return cls(seed=seed)
    return cls(scale=scale, seed=seed)


def all_apps(seed: int = 0) -> List[Application]:
    """All 13 benchmarks at their default quick scales, Table-1 order."""
    return [make_app(name, seed=seed) for name in APP_CLASSES]
