"""The three-phase data-parallel scan (paper Fig 9) and its kernels.

Phase I scans each subarray in shared memory (one block per subarray,
Hillis-Steele) and records each subarray's total; Phase II scans the array
of totals; Phase III adds each prefix total back to its subarray.  This is
the classic GPU implementation the paper's template matcher recognises,
and the substrate the scan approximation (§3.4) operates on.
"""

from __future__ import annotations

import math

import numpy as np

from ..engine import Grid, Program
from ..errors import ExecutionError
from ..kernel import kernel
from ..kernel.dsl import *  # noqa: F401,F403

#: Shared-memory capacity of the scan kernels (max threads per block).
MAX_BLOCK = 1024


@kernel
def scan_phase1(partial: array_f32, sums: array_f32, x: array_f32, log2b: i32):
    """In-block inclusive scan; one block per subarray."""
    sh = shared(1024, f32)
    t = thread_id()
    g = global_id()
    sh[t] = x[g]
    barrier()
    for d in range(0, log2b):
        off = 1 << d
        prev = sh[t - off] if t >= off else 0.0
        barrier()
        sh[t] = sh[t] + prev
        barrier()
    partial[g] = sh[t]
    if t == block_dim() - 1:
        sums[block_id()] = sh[t]


@kernel
def scan_phase2(sums_scan: array_f32, sums: array_f32, nb: i32, log2nb: i32):
    """Single-block inclusive scan of the per-subarray totals."""
    sh = shared(1024, f32)
    t = thread_id()
    v = sums[t] if t < nb else 0.0
    sh[t] = v
    barrier()
    for d in range(0, log2nb):
        off = 1 << d
        prev = sh[t - off] if t >= off else 0.0
        barrier()
        sh[t] = sh[t] + prev
        barrier()
    if t < nb:
        sums_scan[t] = sh[t]


@kernel
def scan_phase3(out: array_f32, partial: array_f32, sums_scan: array_f32):
    """Add each block's prefix total to its partial scan."""
    g = global_id()
    b = block_id()
    offset = sums_scan[b - 1] if b > 0 else 0.0
    out[g] = partial[g] + offset


@kernel
def scan_tail_predict(
    out: array_f32, partial: array_f32, sums_scan: array_f32, kept: i32
):
    """Predict the scan of the skipped tail subarrays (paper Fig 8).

    Block ``m`` of this launch reproduces kept subarray ``m``'s final scan
    values and shifts them up by the last Phase-II total, writing them as
    the output of skipped subarray ``kept + m``.
    """
    m = block_id()
    t = thread_id()
    s = block_dim()
    src = m * s + t
    offset = sums_scan[m - 1] if m > 0 else 0.0
    total = sums_scan[kept - 1]
    out[(kept + m) * s + t] = partial[src] + offset + total


def _log2_exact(n: int, what: str) -> int:
    bits = int(math.log2(n))
    if (1 << bits) != n:
        raise ExecutionError(f"{what} must be a power of two, got {n}")
    return bits


class ScanProgram(Program):
    """Host orchestration of the three-phase scan.

    Args:
        block: subarray size = threads per block (power of two,
            <= MAX_BLOCK).
    """

    def __init__(self, block: int = 256, phase1_kernel=None, phase1_module=None) -> None:
        super().__init__()
        if block > MAX_BLOCK:
            raise ExecutionError(f"block {block} exceeds MAX_BLOCK={MAX_BLOCK}")
        self.block = block
        self.log2b = _log2_exact(block, "block size")
        # Phase I is substitutable so experiments can study corrupted or
        # naively-perforated first phases (paper Fig 14 / Fig 18).
        self.phase1_kernel = phase1_kernel if phase1_kernel is not None else scan_phase1
        self.phase1_module = phase1_module

    def _check_input(self, x: np.ndarray) -> int:
        if x.dtype != np.float32:
            raise ExecutionError("scan input must be float32")
        if x.size % self.block:
            raise ExecutionError(
                f"input length {x.size} is not a multiple of the block size "
                f"{self.block}; pad the input"
            )
        blocks = x.size // self.block
        if blocks > MAX_BLOCK:
            raise ExecutionError(
                f"{blocks} subarrays exceed Phase II's single-block capacity"
            )
        return blocks

    def run(self, x: np.ndarray, exclusive: bool = False) -> np.ndarray:
        """Exact scan of ``x``; inclusive by default, exclusive on request.

        The paper's §2 defines both forms; an exclusive scan is the
        inclusive scan shifted right with identity (0) in front, which is
        exactly how the host assembles it here — the three kernels are
        shared.
        """
        inclusive = self._run_inclusive(x)
        if not exclusive:
            return inclusive
        out = np.empty_like(inclusive)
        out[0] = 0.0
        out[1:] = inclusive[:-1]
        return out

    def _run_inclusive(self, x: np.ndarray) -> np.ndarray:
        blocks = self._check_input(x)
        partial = np.zeros(x.size, dtype=np.float32)
        sums = np.zeros(blocks, dtype=np.float32)
        sums_scan = np.zeros(blocks, dtype=np.float32)
        out = np.zeros(x.size, dtype=np.float32)
        self.launch(
            self.phase1_kernel,
            Grid(blocks, self.block),
            [partial, sums, x, self.log2b],
            module=self.phase1_module,
        )
        p2_threads = 1 << math.ceil(math.log2(max(blocks, 2)))
        self.launch(
            scan_phase2,
            Grid(1, p2_threads),
            [sums_scan, sums, blocks, _log2_exact(p2_threads, "phase2 width")],
        )
        self.launch(scan_phase3, Grid(blocks, self.block), [out, partial, sums_scan])
        return out

    def run_approx(
        self, x: np.ndarray, skipped: int, exclusive: bool = False
    ) -> np.ndarray:
        """Approximate scan skipping the last ``skipped`` subarrays (§3.4.3).

        Phase I launches fewer blocks, Phase II scans fewer totals, and the
        tail kernel predicts the skipped subarrays from the first ones.
        ``skipped`` may not exceed the number of kept subarrays.
        """
        inclusive = self._run_approx_inclusive(x, skipped)
        if not exclusive:
            return inclusive
        out = np.empty_like(inclusive)
        out[0] = 0.0
        out[1:] = inclusive[:-1]
        return out

    def _run_approx_inclusive(self, x: np.ndarray, skipped: int) -> np.ndarray:
        blocks = self._check_input(x)
        if skipped <= 0:
            return self._run_inclusive(x)
        kept = blocks - skipped
        if kept <= 0 or skipped > kept:
            raise ExecutionError(
                f"cannot skip {skipped} of {blocks} subarrays: the tail is "
                "predicted from the kept prefix, so skipped <= kept"
            )
        partial = np.zeros(kept * self.block, dtype=np.float32)
        sums = np.zeros(kept, dtype=np.float32)
        sums_scan = np.zeros(kept, dtype=np.float32)
        out = np.zeros(x.size, dtype=np.float32)
        self.launch(
            self.phase1_kernel,
            Grid(kept, self.block),
            [partial, sums, x[: kept * self.block], self.log2b],
            module=self.phase1_module,
        )
        p2_threads = 1 << math.ceil(math.log2(max(kept, 2)))
        self.launch(
            scan_phase2,
            Grid(1, p2_threads),
            [sums_scan, sums, kept, _log2_exact(p2_threads, "phase2 width")],
        )
        self.launch(scan_phase3, Grid(kept, self.block), [out, partial, sums_scan])
        self.launch(
            scan_tail_predict,
            Grid(skipped, self.block),
            [out, partial, sums_scan, kept],
        )
        return out


def reference_scan(x: np.ndarray, exclusive: bool = False) -> np.ndarray:
    """NumPy scan used as ground truth in tests."""
    inclusive = np.cumsum(x.astype(np.float64)).astype(np.float32)
    if not exclusive:
        return inclusive
    out = np.empty_like(inclusive)
    out[0] = 0.0
    out[1:] = inclusive[:-1]
    return out
