"""Naive Bayes benchmark (Table 1: Machine Learning, 256K samples x 32
features, Reduction, mean relative error).

The training phase of a categorical naive Bayes classifier: counting
(class, feature, value) co-occurrences across the dataset with atomic
increments.  Each thread scans a chunk of samples; the per-chunk loop is
an atomic-based reduction loop, and perforating it samples the training
set — counts are scaled by the skipping rate to stay unbiased.  The paper
highlights this app's GPU speedup (>3.5x vs ~1.5x on CPU) because skipped
iterations remove expensive contended atomics.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..engine import Grid
from ..kernel import kernel
from ..kernel.dsl import *  # noqa: F401,F403
from ..runtime.quality import MEAN_RELATIVE
from .base import AppInfo, KernelApplication

PAPER_SAMPLES = 256_000
FEATURES = 32
VALUES = 8  # categorical levels per feature
CLASSES = 4
CHUNK = 64  # samples per thread


@kernel
def naive_bayes_kernel(
    counts: array_i32,
    class_counts: array_i32,
    data: array_i32,
    labels: array_i32,
    n: i32,
    nfeat: i32,
):
    i = global_id()
    for s in range(0, 64):
        idx = i * 64 + s
        if idx < n:
            cls = labels[idx]
            atomic_add(class_counts, cls, 1)
            for f in range(0, nfeat):
                v = data[idx * nfeat + f]
                atomic_add(counts, ((f * 8 + v) * 4) + cls, 1)


def reference(data: np.ndarray, labels: np.ndarray, nfeat: int):
    """Exact co-occurrence counts via NumPy."""
    n = labels.size
    counts = np.zeros(nfeat * VALUES * CLASSES, dtype=np.int64)
    flat = (
        (np.arange(nfeat)[None, :] * VALUES + data.reshape(n, nfeat)) * CLASSES
        + labels[:, None]
    ).ravel()
    np.add.at(counts, flat, 1)
    class_counts = np.bincount(labels, minlength=CLASSES)
    return counts, class_counts


class NaiveBayesApp(KernelApplication):
    """Categorical naive Bayes training (count aggregation)."""

    info = AppInfo(
        name="Naive Bayes",
        domain="Machine Learning",
        input_size="256K elements with 32 features",
        patterns=("reduction",),
        error_metric="Mean relative error",
    )
    metric = MEAN_RELATIVE

    kernel = naive_bayes_kernel

    def __init__(self, scale: float = 0.08, seed: int = 0, nfeat: int = 8) -> None:
        super().__init__(scale=scale, seed=seed)
        self.n = max(2048, int(PAPER_SAMPLES * scale))
        self.nfeat = nfeat

    def generate_inputs(self, seed: Optional[int] = None) -> Dict[str, object]:
        rng = np.random.default_rng(self.seed if seed is None else seed)
        # Class-conditional feature distributions so the counts carry signal.
        labels = rng.integers(0, CLASSES, self.n).astype(np.int32)
        bias = rng.random((CLASSES, self.nfeat, VALUES)) ** 2
        bias /= bias.sum(axis=2, keepdims=True)
        data = np.zeros((self.n, self.nfeat), dtype=np.int32)
        for c in range(CLASSES):
            mask = labels == c
            for f in range(self.nfeat):
                data[mask, f] = rng.choice(VALUES, mask.sum(), p=bias[c, f])
        return {"data": data.ravel(), "labels": labels}

    def make_output(self, inputs) -> np.ndarray:
        # feature-value-class counts followed by class counts
        return np.zeros(self.nfeat * VALUES * CLASSES + CLASSES, dtype=np.int32)

    def make_args(self, inputs, out):
        body = out[: self.nfeat * VALUES * CLASSES]
        tail = out[self.nfeat * VALUES * CLASSES :]
        return [body, tail, inputs["data"], inputs["labels"], self.n, self.nfeat]

    def grid(self, inputs) -> Grid:
        threads = (self.n + CHUNK - 1) // CHUNK
        return Grid.for_elements(threads, 64)
