"""Quasirandom Generator benchmark (Table 1: Statistics, 1M, Map, L1-norm).

Generates a low-discrepancy (Weyl/Kronecker) sequence and maps it through
the Beasley-Springer-Moro inverse cumulative normal — the standard GPU-SDK
structure for producing quasirandom *normal* variates.  The inverse CND is
the pure, compute-heavy map function Paraprox memoizes; the sequence
generation itself is thread-ID arithmetic and stays exact.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..engine import Grid
from ..kernel import device, kernel
from ..kernel.dsl import *  # noqa: F401,F403
from ..runtime.quality import L1_NORM
from .base import AppInfo, KernelApplication

PAPER_ELEMENTS = 1_000_000

#: golden-ratio increment of the Weyl sequence
PHI = 0.6180339887498949


@device
def moro_inv_cnd(u: f32) -> f32:
    """Beasley-Springer-Moro inverse cumulative normal distribution."""
    y = u - 0.5
    central = fabs(y) < 0.42
    # central region: rational polynomial in y^2
    r1 = y * y
    num = y * (
        2.50662823884
        + r1 * (-18.61500062529 + r1 * (41.39119773534 + r1 * -25.44106049637))
    )
    den = 1.0 + r1 * (
        -8.47351093090
        + r1 * (23.08336743743 + r1 * (-21.06224101826 + r1 * 3.13082909833))
    )
    # tail region: polynomial in log log space
    ut = u if y < 0.0 else 1.0 - u
    r2 = log(-log(ut))
    tail = (
        0.3374754822726147
        + r2
        * (
            0.9761690190917186
            + r2
            * (
                0.1607979714918209
                + r2
                * (
                    0.0276438810333863
                    + r2
                    * (
                        0.0038405729373609
                        + r2
                        * (
                            0.0003951896511919
                            + r2 * (0.0000321767881768 + r2 * 0.0000002888167364)
                        )
                    )
                )
            )
        )
    )
    signed_tail = -tail if y < 0.0 else tail
    return num / den if central else signed_tail


@kernel
def quasirandom_kernel(out: array_f32, offset: f32, n: i32):
    i = global_id()
    if i < n:
        # Weyl low-discrepancy point in (0, 1): frac(offset + i * phi).
        t = offset + f32(i) * 0.6180339887
        u = t - floor(t)
        u = fmin(fmax(u, 1.0e-7), 1.0 - 1.0e-7)
        out[i] = moro_inv_cnd(u)


def reference(offset: float, n: int) -> np.ndarray:
    from scipy.stats import norm

    i = np.arange(n, dtype=np.float64)
    t = np.float32(offset) + i.astype(np.float32) * np.float32(0.6180339887)
    u = (t - np.floor(t)).astype(np.float64)
    u = np.clip(u, 1e-7, 1 - 1e-7)
    return norm.ppf(u)


class QuasirandomApp(KernelApplication):
    """Quasirandom normal variate generation."""

    info = AppInfo(
        name="Quasirandom Generator",
        domain="Statistics",
        input_size="1M elements",
        patterns=("map",),
        error_metric="L1-norm",
    )
    metric = L1_NORM
    kernel = quasirandom_kernel

    def __init__(self, scale: float = 0.05, seed: int = 0) -> None:
        super().__init__(scale=scale, seed=seed)
        self.n = max(1024, int(PAPER_ELEMENTS * scale))

    def generate_inputs(self, seed: Optional[int] = None) -> Dict[str, object]:
        rng = np.random.default_rng(self.seed if seed is None else seed)
        return {"offset": float(rng.random())}

    def make_output(self, inputs) -> np.ndarray:
        return np.zeros(self.n, dtype=np.float32)

    def make_args(self, inputs, out):
        return [out, inputs["offset"], self.n]

    def grid(self, inputs) -> Grid:
        return Grid.for_elements(self.n)
