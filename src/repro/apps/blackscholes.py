"""BlackScholes benchmark (Table 1: Financial, 4M elements, Map, L1-norm).

Prices European call and put options with the Black-Scholes closed form.
The per-element body ``bs_body`` is the paper's ``BlackScholesBody``: a
pure function of five inputs, two of which (the risk-free rate R and the
volatility V) are constant across a run, which is exactly the situation
paper Fig 3/4 walks through — bit tuning assigns all address bits to the
three variable inputs.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..engine import Grid
from ..kernel import device, kernel
from ..kernel.dsl import *  # noqa: F401,F403
from ..runtime.quality import L1_NORM
from .base import AppInfo, KernelApplication

RISKFREE = 0.02
VOLATILITY = 0.30

#: Table 1 input size.
PAPER_ELEMENTS = 4_000_000


@device
def cnd(d: f32) -> f32:
    """Cumulative normal distribution (Abramowitz & Stegun polynomial)."""
    k = 1.0 / (1.0 + 0.2316419 * fabs(d))
    poly = k * (
        0.31938153
        + k * (-0.356563782 + k * (1.781477937 + k * (-1.821255978 + k * 1.330274429)))
    )
    ret = 1.0 - 0.3989422804 * exp(-0.5 * d * d) * poly
    return ret if d > 0.0 else 1.0 - ret


@device
def bs_body(s: f32, x: f32, t: f32, r: f32, v: f32) -> f32:
    """Black-Scholes call price (the memoization candidate)."""
    srt = v * sqrt(t)
    d1 = (log(s / x) + (r + 0.5 * v * v) * t) / srt
    d2 = d1 - srt
    return s * cnd(d1) - x * exp(-r * t) * cnd(d2)


@kernel
def black_scholes_kernel(
    call: array_f32,
    put: array_f32,
    price: array_f32,
    strike: array_f32,
    years: array_f32,
    r: f32,
    v: f32,
    n: i32,
):
    i = global_id()
    if i < n:
        c = bs_body(price[i], strike[i], years[i], r, v)
        call[i] = c
        # put via put-call parity: P = C - S + X * exp(-rT)
        put[i] = c - price[i] + strike[i] * exp(-r * years[i])


def reference(price, strike, years, r, v):
    """NumPy float64 ground truth (call prices)."""
    from scipy.stats import norm  # scipy is available offline

    s = price.astype(np.float64)
    x = strike.astype(np.float64)
    t = years.astype(np.float64)
    srt = v * np.sqrt(t)
    d1 = (np.log(s / x) + (r + 0.5 * v * v) * t) / srt
    d2 = d1 - srt
    return s * norm.cdf(d1) - x * np.exp(-r * t) * norm.cdf(d2)


class BlackScholesApp(KernelApplication):
    """Option pricing over random market parameters."""

    info = AppInfo(
        name="BlackScholes",
        domain="Financial",
        input_size="4M elements",
        patterns=("map",),
        error_metric="L1-norm",
    )
    metric = L1_NORM
    kernel = black_scholes_kernel

    def __init__(self, scale: float = 0.02, seed: int = 0) -> None:
        super().__init__(scale=scale, seed=seed)
        self.n = max(1024, int(PAPER_ELEMENTS * scale))

    def generate_inputs(self, seed: Optional[int] = None) -> Dict[str, object]:
        rng = np.random.default_rng(self.seed if seed is None else seed)
        return {
            "price": (rng.random(self.n) * 25.0 + 5.0).astype(np.float32),
            "strike": (rng.random(self.n) * 99.0 + 1.0).astype(np.float32),
            "years": (rng.random(self.n) * 9.75 + 0.25).astype(np.float32),
        }

    def make_output(self, inputs) -> np.ndarray:
        # call and put prices, concatenated so quality covers both.
        return np.zeros(2 * self.n, dtype=np.float32)

    def make_args(self, inputs, out):
        return [
            out[: self.n],
            out[self.n :],
            inputs["price"],
            inputs["strike"],
            inputs["years"],
            RISKFREE,
            VOLATILITY,
            self.n,
        ]

    def grid(self, inputs) -> Grid:
        return Grid.for_elements(self.n)
