"""Gaussian Filter benchmark (Table 1: Image Processing, 512x512, Stencil,
mean relative error).

A 3x3 Gaussian blur with the classic 1-2-1 binomial weights, manually
unrolled the way GPU image kernels are written.  Paraprox's stencil
optimization replaces neighbour reads with the row/column/center schemes
of Fig 6 — the paper reports >2x speedup at <4 % quality loss for this
benchmark using a mix of all three schemes.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..engine import Grid
from ..kernel import kernel
from ..kernel.dsl import *  # noqa: F401,F403
from ..runtime.quality import MEAN_RELATIVE
from .base import AppInfo, KernelApplication
from .images import synthetic_image

PAPER_SIDE = 512


@kernel
def gaussian_kernel(out: array_f32, img: array_f32, w: i32, h: i32):
    gid = global_id()
    y = gid / w
    x = gid % w
    if (y > 0) and (y < h - 1) and (x > 0) and (x < w - 1):
        acc = 0.0
        acc += 1.0 * img[(y - 1) * w + (x - 1)]
        acc += 2.0 * img[(y - 1) * w + x]
        acc += 1.0 * img[(y - 1) * w + (x + 1)]
        acc += 2.0 * img[y * w + (x - 1)]
        acc += 4.0 * img[y * w + x]
        acc += 2.0 * img[y * w + (x + 1)]
        acc += 1.0 * img[(y + 1) * w + (x - 1)]
        acc += 2.0 * img[(y + 1) * w + x]
        acc += 1.0 * img[(y + 1) * w + (x + 1)]
        out[gid] = acc / 16.0
    else:
        if (y >= 0) and (y < h) and (x >= 0):
            out[gid] = img[gid]


def reference(img: np.ndarray) -> np.ndarray:
    p = img.astype(np.float64)
    out = p.copy()
    acc = (
        p[:-2, :-2]
        + 2 * p[:-2, 1:-1]
        + p[:-2, 2:]
        + 2 * p[1:-1, :-2]
        + 4 * p[1:-1, 1:-1]
        + 2 * p[1:-1, 2:]
        + p[2:, :-2]
        + 2 * p[2:, 1:-1]
        + p[2:, 2:]
    )
    out[1:-1, 1:-1] = acc / 16.0
    return out


class GaussianFilterApp(KernelApplication):
    """3x3 Gaussian blur of a synthetic photograph."""

    info = AppInfo(
        name="Gaussian Filter",
        domain="Image Processing",
        input_size="512x512 image",
        patterns=("stencil",),
        error_metric="Mean relative error",
    )
    metric = MEAN_RELATIVE
    kernel = gaussian_kernel

    def __init__(self, scale: float = 0.1, seed: int = 0) -> None:
        super().__init__(scale=scale, seed=seed)
        self.side = max(64, int(PAPER_SIDE * np.sqrt(scale)))

    def generate_inputs(self, seed: Optional[int] = None) -> Dict[str, object]:
        s = self.seed if seed is None else seed
        return {"img": synthetic_image(self.side, self.side, seed=s)}

    def make_output(self, inputs) -> np.ndarray:
        return np.zeros((self.side, self.side), dtype=np.float32)

    def make_args(self, inputs, out):
        return [out, inputs["img"], self.side, self.side]

    def grid(self, inputs) -> Grid:
        return Grid.for_elements(self.side * self.side)


@kernel
def mean_kernel(out: array_f32, img: array_f32, w: i32, h: i32):
    gid = global_id()
    y = gid / w
    x = gid % w
    if (y > 0) and (y < h - 1) and (x > 0) and (x < w - 1):
        acc = 0.0
        acc += img[(y - 1) * w + (x - 1)]
        acc += img[(y - 1) * w + x]
        acc += img[(y - 1) * w + (x + 1)]
        acc += img[y * w + (x - 1)]
        acc += img[y * w + x]
        acc += img[y * w + (x + 1)]
        acc += img[(y + 1) * w + (x - 1)]
        acc += img[(y + 1) * w + x]
        acc += img[(y + 1) * w + (x + 1)]
        out[gid] = acc / 9.0
    else:
        if (y >= 0) and (y < h) and (x >= 0):
            out[gid] = img[gid]


def mean_reference(img: np.ndarray) -> np.ndarray:
    p = img.astype(np.float64)
    out = p.copy()
    acc = sum(
        p[1 + dy : p.shape[0] - 1 + dy, 1 + dx : p.shape[1] - 1 + dx]
        for dy in (-1, 0, 1)
        for dx in (-1, 0, 1)
    )
    out[1:-1, 1:-1] = acc / 9.0
    return out


class MeanFilterApp(GaussianFilterApp):
    """3x3 mean (box) filter — Table 1's Mean Filter row.

    The paper notes this kernel is manually unrolled with memory accesses
    outside any loop, so the reduction optimization does not apply and
    only the stencil optimization is used.
    """

    info = AppInfo(
        name="Mean Filter",
        domain="Image Processing",
        input_size="512x512 image",
        patterns=("stencil",),
        error_metric="Mean relative error",
    )
    metric = MEAN_RELATIVE
    kernel = mean_kernel
