"""Matrix Multiply benchmark (Table 1: Signal Processing, 2560x2560,
Reduction-Partition, mean relative error).

Each thread computes one output element as a dot product over the shared
dimension K.  The dot-product loop is the reduction Paraprox perforates
(with the x-N adjustment); because K is a compile-time constant the
per-thread row/column accesses also register as a partition tile, matching
Table 1's double label.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..engine import Grid
from ..kernel import kernel
from ..kernel.dsl import *  # noqa: F401,F403
from ..runtime.quality import MEAN_RELATIVE
from .base import AppInfo, KernelApplication

PAPER_SIDE = 2560


TILE = 16


def build_matmul_kernel(k_dim: int):
    """Kernel factory: the SDK-style shared-memory tiled GEMM, specialised
    for one shared dimension.

    Each 16x16 thread block stages one tile of A and one tile of B in
    shared memory per step of the tile loop — the *partition* usage of
    Table 1 — and the inner product accumulation is the reduction loop
    Paraprox perforates."""
    ntiles = k_dim // TILE

    @kernel
    def matmul_kernel(c: array_f32, a: array_f32, b: array_f32, m: i32, n: i32):
        sh_a = shared(256, f32)
        sh_b = shared(256, f32)
        t = thread_id()
        ty = t / 16
        tx = t % 16
        brow = block_id() / (n / 16)
        bcol = block_id() % (n / 16)
        row = brow * 16 + ty
        col = bcol * 16 + tx
        acc = 0.0
        for tk in range(0, ntiles):
            sh_a[ty * 16 + tx] = a[row * k_dim + (tk * 16 + tx)]
            sh_b[ty * 16 + tx] = b[(tk * 16 + ty) * n + col]
            barrier()
            for kk in range(0, 16):
                acc += sh_a[ty * 16 + kk] * sh_b[kk * 16 + tx]
            barrier()
        c[row * n + col] = acc

    return matmul_kernel


class MatrixMultiplyApp(KernelApplication):
    """Dense single-precision matrix multiplication C = A @ B."""

    info = AppInfo(
        name="Matrix Multiply",
        domain="Signal Processing",
        input_size="2560x2560 matrix",
        patterns=("reduction", "partition"),
        error_metric="Mean relative error",
    )
    metric = MEAN_RELATIVE

    def __init__(self, scale: float = 0.1, seed: int = 0) -> None:
        super().__init__(scale=scale, seed=seed)
        self.side = max(32, (int(PAPER_SIDE * scale) // TILE) * TILE)
        self.kernel = build_matmul_kernel(self.side)

    def generate_inputs(self, seed: Optional[int] = None) -> Dict[str, object]:
        rng = np.random.default_rng(self.seed if seed is None else seed)
        k = self.side
        # Positive entries keep mean-relative-error well conditioned.
        return {
            "a": rng.uniform(0.1, 1.0, (k, k)).astype(np.float32),
            "b": rng.uniform(0.1, 1.0, (k, k)).astype(np.float32),
        }

    def make_output(self, inputs) -> np.ndarray:
        return np.zeros((self.side, self.side), dtype=np.float32)

    def make_args(self, inputs, out):
        return [out, inputs["a"], inputs["b"], self.side, self.side]

    def grid(self, inputs) -> Grid:
        blocks = (self.side // TILE) * (self.side // TILE)
        return Grid(blocks, TILE * TILE)


def reference(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return a.astype(np.float64) @ b.astype(np.float64)
