"""Cumulative Frequency Histogram benchmark (Table 1: Signal Processing,
1M elements, Scan, mean relative error).

Bins one million samples into a fine histogram (atomics) and produces the
cumulative frequency curve with the three-phase parallel scan.  Only the
scan is approximated — the paper's §3.4 optimization skips trailing
subarrays of the bin-count array and predicts them from the head, which
keeps quality near 99 % even at a 50 % skip because cumulative histograms
grow steadily (§4.3, Fig 18 explains why corrupting *early* subarrays
instead would be catastrophic).
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..approx.scan import ScanTransform, ScanVariant
from ..engine import Grid, Trace, launch
from ..kernel import kernel
from ..kernel.dsl import *  # noqa: F401,F403
from ..patterns import Pattern, ScanMatch
from ..runtime.quality import MEAN_RELATIVE
from .base import AppInfo, Application
from .scanlib import ScanProgram

PAPER_ELEMENTS = 1_000_000

#: subarray (block) size of the three-phase scan
BLOCK = 256
#: Phase II runs in one block, so at most this many subarrays
MAX_SUBARRAYS = 1024


@kernel
def histogram_kernel(hist: array_f32, values: array_i32, n: i32, chunk: i32):
    i = global_id()
    for s in range(0, 256):
        idx = i * chunk + s
        if (s < chunk) and (idx < n):
            atomic_add(hist, values[idx], 1.0)


def reference(values: np.ndarray, nbins: int) -> np.ndarray:
    counts = np.bincount(values, minlength=nbins).astype(np.float64)
    return np.cumsum(counts).astype(np.float32)


class CumulativeHistogramApp(Application):
    """Histogram + three-phase scan = cumulative frequency curve."""

    info = AppInfo(
        name="Cumulative Histogram",
        domain="Signal Processing",
        input_size="1M elements",
        patterns=("scan",),
        error_metric="Mean relative error",
    )
    metric = MEAN_RELATIVE

    def __init__(self, scale: float = 0.05, seed: int = 0) -> None:
        super().__init__(scale=scale, seed=seed)
        # The histogram is as fine as the dataset (about one count per
        # bin), so the scan over the bins is the dominant phase — as in
        # the paper, where the scan itself is the benchmark.
        subarrays = min(MAX_SUBARRAYS, max(16, int(PAPER_ELEMENTS * scale) // BLOCK))
        self.nbins = subarrays * BLOCK
        self.n = self.nbins
        self.chunk = 64

    def generate_inputs(self, seed: Optional[int] = None) -> Dict[str, object]:
        rng = np.random.default_rng(self.seed if seed is None else seed)
        # A mildly non-uniform distribution: realistic, and still satisfies
        # the §3.4 assumption that inter-subarray increments are similar.
        raw = rng.beta(2.0, 2.2, self.n)
        values = np.minimum((raw * self.nbins).astype(np.int32), self.nbins - 1)
        # The benchmark is the *scan* (Table 1's pattern); the frequencies
        # are binned on the host, as an upstream producer would deliver
        # them.  build_histogram() exercises the in-kernel counting path.
        freqs = np.bincount(values, minlength=self.nbins).astype(np.float32)
        return {"values": values, "freqs": freqs}

    def build_histogram(self, inputs, trace: Optional[Trace] = None) -> np.ndarray:
        """In-kernel (atomic) histogram of the raw values; not part of the
        timed path but kept as the data producer for tests/examples."""
        trace = trace if trace is not None else Trace()
        hist = np.zeros(self.nbins, dtype=np.float32)
        threads = (self.n + self.chunk - 1) // self.chunk
        launch(
            histogram_kernel,
            Grid.for_elements(threads, 64),
            [hist, inputs["values"], self.n, self.chunk],
            trace=trace,
        )
        return hist

    def run_exact(self, inputs):
        program = ScanProgram(block=BLOCK)
        out = program.run(inputs["freqs"])
        return out, program.trace

    def run_variant(self, variant: ScanVariant, inputs):
        program = ScanProgram(block=BLOCK)
        out = variant.run(program, inputs["freqs"])
        return out, program.trace

    def build_variants(self, toq: float, config) -> List[ScanVariant]:
        match = ScanMatch(pattern=Pattern.SCAN, kernel="scan_phase1", source="template")
        return ScanTransform(skip_fractions=config.scan_skip_fractions).generate(
            "cumhist", match
        )
