"""Application framework for the 13 benchmarks of paper Table 1.

An :class:`Application` bundles everything an experiment needs: input
generation, the exact kernel(s), the app-specific quality metric, and how
to execute approximate variants.  :class:`KernelApplication` implements
the common single-kernel shape; the scan benchmark overrides the protocol
with its three-phase program.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..engine import Grid, Trace, launch
from ..kernel.frontend import KernelFn
from ..runtime.quality import QualityMetric


def _input_fingerprint(inputs: Dict[str, object]) -> Tuple:
    """A cheap content key for one input set (arrays hashed by bytes)."""
    import hashlib

    parts: List[Tuple[str, object]] = []
    for key in sorted(inputs):
        value = inputs[key]
        if isinstance(value, np.ndarray):
            digest = hashlib.blake2b(value.tobytes(), digest_size=16).hexdigest()
            parts.append((key, f"{value.dtype}{value.shape}{digest}"))
        else:
            parts.append((key, repr(value)))
    return tuple(parts)


@dataclass
class AppInfo:
    """Table-1 row: static facts about a benchmark."""

    name: str
    domain: str
    input_size: str
    patterns: Tuple[str, ...]
    error_metric: str


class Application(abc.ABC):
    """One benchmark program.

    Subclasses define class attributes ``info`` (an :class:`AppInfo`) and
    ``metric`` (a :class:`QualityMetric`), plus the abstract methods below.
    ``scale`` in [0, 1] shrinks the paper's input sizes for quick runs;
    scale=1 restores Table 1 sizes.
    """

    info: AppInfo
    metric: QualityMetric

    def __init__(self, scale: float = 0.1, seed: int = 0) -> None:
        self.scale = scale
        self.seed = seed

    # -- protocol -------------------------------------------------------------

    @abc.abstractmethod
    def generate_inputs(self, seed: Optional[int] = None) -> Dict[str, object]:
        """A fresh input set (the paper runs 110 input sets per app)."""

    @abc.abstractmethod
    def run_exact(self, inputs: Dict[str, object]) -> Tuple[np.ndarray, Trace]:
        """Execute the unmodified program; returns (output, trace)."""

    @abc.abstractmethod
    def run_variant(self, variant, inputs) -> Tuple[np.ndarray, Trace]:
        """Execute one approximate variant; returns (output, trace)."""

    def quality(self, approx_output, exact_output) -> float:
        return self.metric.quality(approx_output, exact_output)

    # -- golden-output evaluation (used by the serving monitor) ---------------

    #: how many exact outputs :meth:`golden_output` keeps (a monitor samples
    #: the same input set it just launched, so a tiny cache suffices).
    GOLDEN_CACHE_SIZE = 8

    def golden_output(self, inputs) -> np.ndarray:
        """The exact program's output for ``inputs``, cached by content.

        A quality monitor checks sampled launches against the exact output
        of the *same* inputs; caching by input fingerprint makes repeated
        checks on one input set cost a single exact execution.
        """
        cache = getattr(self, "_golden_cache", None)
        if cache is None:
            cache = self._golden_cache = {}
        key = _input_fingerprint(inputs)
        if key not in cache:
            if len(cache) >= self.GOLDEN_CACHE_SIZE:
                cache.pop(next(iter(cache)))
            out, _trace = self.run_exact(inputs)
            cache[key] = np.array(out, copy=True)
        return cache[key]

    def evaluate(self, output, inputs) -> float:
        """Quality of ``output`` against the golden output for ``inputs`` —
        the cheap evaluator the serving monitor calls on sampled launches."""
        return self.quality(output, self.golden_output(inputs))

    @property
    def name(self) -> str:
        return self.info.name

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} scale={self.scale}>"


class KernelApplication(Application):
    """An application whose program is one kernel launch.

    Subclasses provide:

    * ``kernel`` — the :class:`~repro.kernel.frontend.KernelFn`,
    * :meth:`make_args` — the launch argument list writing into ``out``,
    * :meth:`make_output` — allocate the output buffer,
    * :meth:`grid` — the launch geometry.
    """

    kernel: KernelFn

    @abc.abstractmethod
    def make_args(self, inputs, out) -> List[object]:
        ...

    @abc.abstractmethod
    def make_output(self, inputs) -> np.ndarray:
        ...

    @abc.abstractmethod
    def grid(self, inputs) -> Grid:
        ...

    def run_exact(self, inputs):
        out = self.make_output(inputs)
        trace = launch(self.kernel, self.grid(inputs), self.make_args(inputs, out))
        return out, trace

    def run_variant(self, variant, inputs):
        out = self.make_output(inputs)
        args = variant.launch_args(self.make_args(inputs, out))
        trace = launch(
            variant.module[variant.kernel],
            self.grid(inputs),
            args,
            module=variant.module,
        )
        return out, trace

    def training_launch(self, inputs):
        """(kernel, grid, args) for profiling runs; output is scratch."""
        out = self.make_output(inputs)
        return self.kernel, self.grid(inputs), self.make_args(inputs, out)
