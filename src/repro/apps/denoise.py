"""Image Denoising benchmark (Table 1: Image Processing, 2048x2048,
Reduction, mean relative error).

A KNN-style denoiser: every pixel is replaced by a similarity-weighted
average over a square search window, with weights ``exp(-(p - q)^2 / h^2)``.
The window loops have *runtime* bounds (the radius is a kernel argument),
so no tile registers — the pattern is pure reduction, matching Table 1 —
and crucially the loop accumulates BOTH the weighted sum and the weight
total, exercising the transform's multi-variable adjustment (scaling only
one of them would corrupt the ratio).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..engine import Grid
from ..kernel import kernel
from ..kernel.dsl import *  # noqa: F401,F403
from ..runtime.quality import MEAN_RELATIVE
from .base import AppInfo, KernelApplication
from .images import synthetic_image

PAPER_SIDE = 2048
RADIUS = 3
H2 = 0.02


@kernel
def denoise_kernel(
    out: array_f32, img: array_f32, w: i32, h: i32, radius: i32
):
    gid = global_id()
    y = gid / w
    x = gid % w
    if (y >= radius) and (y < h - radius) and (x >= radius) and (x < w - radius):
        center = img[gid]
        acc = 0.0
        wsum = 0.0
        for dy in range(0 - radius, radius + 1):
            for dx in range(0 - radius, radius + 1):
                q = img[(y + dy) * w + (x + dx)]
                d = q - center
                wgt = exp(-(d * d) / 0.02)
                acc += wgt * q
                wsum += wgt
        out[gid] = acc / wsum
    else:
        if (y >= 0) and (y < h) and (x >= 0):
            out[gid] = img[gid]


def reference(img: np.ndarray, radius: int = RADIUS, h2: float = H2) -> np.ndarray:
    p = img.astype(np.float64)
    hh, ww = p.shape
    out = p.copy()
    acc = np.zeros((hh - 2 * radius, ww - 2 * radius))
    wsum = np.zeros_like(acc)
    center = p[radius:-radius, radius:-radius]
    for dy in range(-radius, radius + 1):
        for dx in range(-radius, radius + 1):
            q = p[radius + dy : hh - radius + dy, radius + dx : ww - radius + dx]
            wgt = np.exp(-((q - center) ** 2) / h2)
            acc += wgt * q
            wsum += wgt
    out[radius:-radius, radius:-radius] = acc / wsum
    return out


class ImageDenoisingApp(KernelApplication):
    """KNN-style weighted-window denoising of a noisy synthetic image."""

    info = AppInfo(
        name="Image Denoising",
        domain="Image Processing",
        input_size="2048x2048 image",
        patterns=("reduction",),
        error_metric="Mean relative error",
    )
    metric = MEAN_RELATIVE
    kernel = denoise_kernel

    def __init__(self, scale: float = 0.004, seed: int = 0) -> None:
        super().__init__(scale=scale, seed=seed)
        self.side = max(48, int(PAPER_SIDE * np.sqrt(scale)))

    def generate_inputs(self, seed: Optional[int] = None) -> Dict[str, object]:
        s = self.seed if seed is None else seed
        rng = np.random.default_rng(s)
        clean = synthetic_image(self.side, self.side, seed=s)
        noisy = clean + rng.normal(0, 0.03, clean.shape).astype(np.float32)
        return {"img": np.clip(noisy, 0.01, 1.0).astype(np.float32)}

    def make_output(self, inputs) -> np.ndarray:
        return np.zeros((self.side, self.side), dtype=np.float32)

    def make_args(self, inputs, out):
        return [out, inputs["img"], self.side, self.side, RADIUS]

    def grid(self, inputs) -> Grid:
        return Grid.for_elements(self.side * self.side)
