"""Synthetic natural-image generation.

The paper's stencil optimization rests on an empirical fact (Fig 5): in
natural images, more than 70 % of pixels differ from their 8 neighbours by
less than 10 % on average.  We have no photo corpus offline, so this
module synthesises images with natural-image statistics — smooth shading
(low-frequency gradients), mid-frequency texture (spectrally shaped
noise), and a few hard edges — and exposes the adjacent-difference
statistic so Fig 5 can be regenerated and the locality assumption can be
deliberately violated in ablations (``smoothness=0`` yields white noise).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def synthetic_image(
    width: int = 512,
    height: int = 512,
    seed: int = 0,
    smoothness: float = 1.0,
    edges: int = 4,
) -> np.ndarray:
    """A float32 image in [0, 1] with natural-image locality.

    Args:
        smoothness: 1.0 gives photo-like locality (paper Fig 5's regime);
            0.0 gives white noise (the adversarial case for §3.2).
        edges: number of hard region boundaries to overlay.
    """
    rng = np.random.default_rng(seed)
    if smoothness <= 0.0:
        return rng.random((height, width)).astype(np.float32)

    y, x = np.mgrid[0:height, 0:width]
    img = np.zeros((height, width), dtype=np.float64)

    # Low-frequency shading: a handful of random smooth cosine gradients.
    for _ in range(4):
        fx, fy = rng.uniform(0.5, 2.0, size=2)
        phase = rng.uniform(0, 2 * np.pi, size=2)
        amp = rng.uniform(0.1, 0.3)
        img += amp * np.cos(2 * np.pi * fx * x / width + phase[0]) * np.cos(
            2 * np.pi * fy * y / height + phase[1]
        )

    # Mid-frequency texture: white noise blurred with a separable box
    # filter whose radius scales with the requested smoothness.
    noise = rng.standard_normal((height, width))
    # np.convolve(mode="same") returns max(len(m), len(kernel)) values, so
    # the blur kernel must not be wider than the image's shorter side.
    radius = max(1, min(int(3 * smoothness), (min(width, height) - 1) // 2))
    kernel = np.ones(2 * radius + 1) / (2 * radius + 1)
    for axis in (0, 1):
        noise = np.apply_along_axis(
            lambda m: np.convolve(m, kernel, mode="same"), axis, noise
        )
    img += 0.15 * noise / max(noise.std(), 1e-9)

    # Hard edges: step discontinuities along random half-planes.
    for _ in range(edges):
        nx, ny = rng.standard_normal(2)
        cx, cy = rng.uniform(0.2, 0.8) * width, rng.uniform(0.2, 0.8) * height
        half = (nx * (x - cx) + ny * (y - cy)) > 0
        img += rng.uniform(-0.2, 0.2) * half

    img -= img.min()
    peak = img.max()
    if peak > 0:
        img /= peak
    # Keep pixels strictly positive so relative-difference statistics and
    # mean-relative-error metrics are well defined.
    return (0.05 + 0.9 * img).astype(np.float32)


def adjacent_percent_differences(img: np.ndarray) -> np.ndarray:
    """Per-pixel mean percent difference against the 8-neighbour tile.

    This is the statistic of paper Fig 5: for each interior pixel, the
    average of ``|p - q| / p`` over its eight neighbours, in percent.
    """
    p = np.asarray(img, dtype=np.float64)
    center = p[1:-1, 1:-1]
    total = np.zeros_like(center)
    for dy in (-1, 0, 1):
        for dx in (-1, 0, 1):
            if dy == 0 and dx == 0:
                continue
            neighbour = p[1 + dy : p.shape[0] - 1 + dy, 1 + dx : p.shape[1] - 1 + dx]
            total += np.abs(center - neighbour) / np.maximum(np.abs(center), 1e-9)
    return (total / 8.0 * 100.0).ravel()


def difference_histogram(
    images, bin_edges=(0, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100)
) -> Tuple[np.ndarray, np.ndarray]:
    """Fig-5 histogram: percentage of pixels falling in each average-
    difference band, aggregated over ``images``."""
    diffs = np.concatenate([adjacent_percent_differences(img) for img in images])
    edges = np.asarray(bin_edges, dtype=np.float64)
    counts, _ = np.histogram(np.clip(diffs, 0, edges[-1] - 1e-9), bins=edges)
    return counts / diffs.size * 100.0, edges
