"""HotSpot benchmark (Table 1: Physics, 1024x1024, Stencil-Partition,
mean relative error).

One timestep of the Rodinia HotSpot thermal simulation: each cell's next
temperature combines its own temperature, its four axis neighbours
(5-point cross stencil), and the local power dissipation.  The 3x3 tile
footprint makes it a stencil/partition candidate (Table 1 labels it
Stencil-Partition).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..engine import Grid
from ..kernel import kernel
from ..kernel.dsl import *  # noqa: F401,F403
from ..runtime.quality import MEAN_RELATIVE
from .base import AppInfo, KernelApplication
from .images import synthetic_image

PAPER_SIDE = 1024

#: Rodinia-flavoured model constants (one simulation step).
CAP = 0.5
RX = 0.1
RY = 0.1
RZ = 0.0625
AMB = 80.0


@kernel
def hotspot_kernel(
    out: array_f32, temp: array_f32, power: array_f32, w: i32, h: i32
):
    gid = global_id()
    y = gid / w
    x = gid % w
    if (y > 0) and (y < h - 1) and (x > 0) and (x < w - 1):
        c = temp[y * w + x]
        n = temp[(y - 1) * w + x]
        s = temp[(y + 1) * w + x]
        e = temp[y * w + (x + 1)]
        wv = temp[y * w + (x - 1)]
        delta = CAP * (
            power[gid]
            + (n + s - 2.0 * c) * 0.1
            + (e + wv - 2.0 * c) * 0.1
            + (80.0 - c) * 0.0625
        )
        out[gid] = c + delta
    else:
        if (y >= 0) and (y < h) and (x >= 0):
            out[gid] = temp[gid]


def reference(temp: np.ndarray, power: np.ndarray) -> np.ndarray:
    t = temp.astype(np.float64)
    out = t.copy()
    c = t[1:-1, 1:-1]
    n = t[:-2, 1:-1]
    s = t[2:, 1:-1]
    e = t[1:-1, 2:]
    w = t[1:-1, :-2]
    delta = CAP * (
        power.astype(np.float64)[1:-1, 1:-1]
        + (n + s - 2 * c) * RX
        + (e + w - 2 * c) * RY
        + (AMB - c) * RZ
    )
    out[1:-1, 1:-1] = c + delta
    return out


class HotSpotApp(KernelApplication):
    """One HotSpot thermal-simulation step over a synthetic die."""

    info = AppInfo(
        name="HotSpot",
        domain="Physics",
        input_size="1024x1024 matrix",
        patterns=("stencil", "partition"),
        error_metric="Mean relative error",
    )
    metric = MEAN_RELATIVE
    kernel = hotspot_kernel

    def __init__(self, scale: float = 0.02, seed: int = 0) -> None:
        super().__init__(scale=scale, seed=seed)
        self.side = max(64, int(PAPER_SIDE * np.sqrt(scale)))

    def generate_inputs(self, seed: Optional[int] = None) -> Dict[str, object]:
        s = self.seed if seed is None else seed
        base = synthetic_image(self.side, self.side, seed=s)
        # temperatures around 320-340 K, power densities around 0-1
        temp = (320.0 + 20.0 * base).astype(np.float32)
        power = synthetic_image(self.side, self.side, seed=s + 1).astype(np.float32)
        return {"temp": temp, "power": power}

    def make_output(self, inputs) -> np.ndarray:
        return np.zeros((self.side, self.side), dtype=np.float32)

    def make_args(self, inputs, out):
        return [out, inputs["temp"], inputs["power"], self.side, self.side]

    def grid(self, inputs) -> Grid:
        return Grid.for_elements(self.side * self.side)
