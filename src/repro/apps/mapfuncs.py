"""The four case-study map functions of paper §4.4.2 (Figs 15-17).

* credit-card payoff equation (Eq. 2),
* shifted Gompertz distribution (Eq. 3),
* log-gamma (Eq. 4, CUDA ``lgammaf``),
* Bass diffusion model (Eq. 5).

Each is a pure single-variable function (all other parameters constant)
wrapped in a trivial map kernel, exactly the setup the paper uses to study
nearest- vs linear-lookup memoization, lookup-table placement, and the
coalescing-driven decay of speedup with table size.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..engine import Grid
from ..kernel import device, kernel
from ..kernel.dsl import *  # noqa: F401,F403
from ..runtime.quality import MEAN_RELATIVE
from .base import AppInfo, KernelApplication

# Constant model parameters (paper: "all parameters other than the input
# variable are constant").
CREDIT_B0_OVER_P = 25.0  # balance / monthly payment
GOMPERTZ_B = 0.4
GOMPERTZ_ETA = 0.6
BASS_P = 0.03
BASS_Q = 0.38
BASS_M = 1000.0


@device
def credit_months(i: f32) -> f32:
    """Months to pay off credit-card debt at daily rate ``i`` (Eq. 2)."""
    growth = pow(1.0 + i, 30.0)
    inner = 1.0 + 25.0 * (1.0 - growth)
    return (-1.0 / 30.0) * log(inner) / log(1.0 + i)


@device
def shifted_gompertz(x: f32) -> f32:
    """Shifted Gompertz distribution function (Eq. 3)."""
    e = exp(-0.4 * x)
    return (1.0 - e) * exp(-0.6 * e)


@device
def log_gamma(z: f32) -> f32:
    """Log-gamma (Eq. 4; the paper uses CUDA's lgammaf)."""
    return lgamma(z)


@device
def bass_diffusion(t: f32) -> f32:
    """Bass new-product adoption rate (Eq. 5)."""
    pq = 0.03 + 0.38
    e = exp(-pq * t)
    denom = 1.0 + (0.38 / 0.03) * e
    return 1000.0 * (pq * pq / 0.03) * e / (denom * denom)


#: grid-stride factor: each thread maps this many elements, like the SDK's
#: persistent map kernels; it also amortises any per-block table staging.
ELEMS_PER_THREAD = 16


@kernel
def credit_kernel(out: array_f32, x: array_f32, n: i32):
    i = global_id()
    stride = block_dim() * grid_dim()
    for e in range(0, ELEMS_PER_THREAD):
        idx = i + e * stride
        if idx < n:
            out[idx] = credit_months(x[idx])


@kernel
def gompertz_kernel(out: array_f32, x: array_f32, n: i32):
    i = global_id()
    stride = block_dim() * grid_dim()
    for e in range(0, ELEMS_PER_THREAD):
        idx = i + e * stride
        if idx < n:
            out[idx] = shifted_gompertz(x[idx])


@kernel
def lgamma_kernel(out: array_f32, x: array_f32, n: i32):
    i = global_id()
    stride = block_dim() * grid_dim()
    for e in range(0, ELEMS_PER_THREAD):
        idx = i + e * stride
        if idx < n:
            out[idx] = log_gamma(x[idx])


@kernel
def bass_kernel(out: array_f32, x: array_f32, n: i32):
    i = global_id()
    stride = block_dim() * grid_dim()
    for e in range(0, ELEMS_PER_THREAD):
        idx = i + e * stride
        if idx < n:
            out[idx] = bass_diffusion(x[idx])


class _MapFunctionApp(KernelApplication):
    """Shared harness: map one function over random inputs in its domain."""

    metric = MEAN_RELATIVE
    input_range = (0.0, 1.0)

    def __init__(self, scale: float = 1.0, seed: int = 0, n: int = 65536) -> None:
        super().__init__(scale=scale, seed=seed)
        self.n = int(n * scale) if scale != 1.0 else n

    def generate_inputs(self, seed: Optional[int] = None) -> Dict[str, object]:
        rng = np.random.default_rng(self.seed if seed is None else seed)
        lo, hi = self.input_range
        return {"x": rng.uniform(lo, hi, self.n).astype(np.float32)}

    def make_output(self, inputs) -> np.ndarray:
        return np.zeros(self.n, dtype=np.float32)

    def make_args(self, inputs, out):
        return [out, inputs["x"], self.n]

    def grid(self, inputs) -> Grid:
        return Grid.for_elements((self.n + ELEMS_PER_THREAD - 1) // ELEMS_PER_THREAD)


class CreditApp(_MapFunctionApp):
    info = AppInfo(
        name="Credit",
        domain="Finance (case study)",
        input_size="64K elements",
        patterns=("map",),
        error_metric="Mean relative error",
    )
    kernel = credit_kernel
    input_range = (5e-5, 6e-4)  # daily interest rates (~2%-22% APR)


class GompertzApp(_MapFunctionApp):
    info = AppInfo(
        name="Gompertz",
        domain="Statistics (case study)",
        input_size="64K elements",
        patterns=("map",),
        error_metric="Mean relative error",
    )
    kernel = gompertz_kernel
    input_range = (0.0, 10.0)


class LgammaApp(_MapFunctionApp):
    info = AppInfo(
        name="lgamma",
        domain="Math (case study)",
        input_size="64K elements",
        patterns=("map",),
        error_metric="Mean relative error",
    )
    kernel = lgamma_kernel
    input_range = (0.5, 10.0)


class BassApp(_MapFunctionApp):
    info = AppInfo(
        name="Bass",
        domain="Economics (case study)",
        input_size="64K elements",
        patterns=("map",),
        error_metric="Mean relative error",
    )
    kernel = bass_kernel
    input_range = (0.0, 20.0)
