"""Kernel Density Estimation benchmark (Table 1: Machine Learning, 256K
elements with 32 features, Reduction, mean relative error).

Estimates the density at each query point as the mean of Gaussian kernels
centred on the reference points.  The loop over reference points is the
reduction Paraprox perforates; its body is dominated by an ``exp``, which
is nearly free on the GPU's special function unit but a libm call on the
CPU — the asymmetry behind the paper's observation that KDE gains more
from approximation on the CPU (§4.3).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..engine import Grid
from ..kernel import kernel
from ..kernel.dsl import *  # noqa: F401,F403
from ..runtime.quality import MEAN_RELATIVE
from .base import AppInfo, KernelApplication

PAPER_SAMPLES = 256_000
BANDWIDTH2 = 0.5


@kernel
def kde_kernel(
    density: array_f32,
    queries: array_f32,
    refs: array_f32,
    nq: i32,
    nr: i32,
    nfeat: i32,
):
    q = global_id()
    if q < nq:
        acc = 0.0
        for r in range(0, nr):
            dsq = 0.0
            for f in range(0, nfeat):
                d = queries[q * nfeat + f] - refs[r * nfeat + f]
                dsq += d * d
            acc += exp(-dsq / 0.5)
        density[q] = acc / f32(nr)


def reference(queries: np.ndarray, refs: np.ndarray, h2: float = BANDWIDTH2):
    qq = queries.astype(np.float64)
    rr = refs.astype(np.float64)
    d2 = ((qq[:, None, :] - rr[None, :, :]) ** 2).sum(axis=2)
    return np.exp(-d2 / h2).mean(axis=1)


class KernelDensityApp(KernelApplication):
    """Gaussian kernel density estimation over clustered data."""

    info = AppInfo(
        name="Kernel Density Estimation",
        domain="Machine Learning",
        input_size="256K elements with 32 features",
        patterns=("reduction",),
        error_metric="Mean relative error",
    )
    metric = MEAN_RELATIVE
    kernel = kde_kernel

    def __init__(
        self, scale: float = 0.002, seed: int = 0, nfeat: int = 4, queries: int = 256
    ) -> None:
        super().__init__(scale=scale, seed=seed)
        self.nr = max(512, int(PAPER_SAMPLES * scale))
        self.nq = queries
        self.nfeat = nfeat

    def generate_inputs(self, seed: Optional[int] = None) -> Dict[str, object]:
        rng = np.random.default_rng(self.seed if seed is None else seed)
        centers = rng.normal(0, 1, (4, self.nfeat))
        refs = (
            centers[rng.integers(0, 4, self.nr)]
            + rng.normal(0, 0.3, (self.nr, self.nfeat))
        ).astype(np.float32)
        queries = (
            centers[rng.integers(0, 4, self.nq)]
            + rng.normal(0, 0.3, (self.nq, self.nfeat))
        ).astype(np.float32)
        return {"queries": queries.ravel(), "refs": refs.ravel()}

    def make_output(self, inputs) -> np.ndarray:
        return np.zeros(self.nq, dtype=np.float32)

    def make_args(self, inputs, out):
        return [out, inputs["queries"], inputs["refs"], self.nq, self.nr, self.nfeat]

    def grid(self, inputs) -> Grid:
        return Grid.for_elements(self.nq)
