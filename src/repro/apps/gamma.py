"""Gamma Correction benchmark (Table 1: Image Processing, 2048x2048, Map,
mean relative error).

Applies sRGB-aware gamma correction per pixel: delinearize, adjust gamma,
relinearize.  The three ``pow`` calls make the per-pixel function far more
expensive than a table lookup, and with the gamma constant during a run
only the pixel value needs quantization bits — the paper notes this app is
extremely quality-resilient (99 % quality at >3x speedup) until the table
gets too small, at which point quality collapses.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..engine import Grid
from ..kernel import device, kernel
from ..kernel.dsl import *  # noqa: F401,F403
from ..runtime.quality import MEAN_RELATIVE
from .base import AppInfo, KernelApplication
from .images import synthetic_image

PAPER_SIDE = 2048


@device
def gamma_correct(p: f32, g: f32) -> f32:
    """sRGB decode -> gamma adjust -> sRGB encode."""
    clamped = fmin(fmax(p, 0.0), 1.0)
    linear = (
        pow((clamped + 0.055) / 1.055, 2.4) if clamped > 0.04045 else clamped / 12.92
    )
    adjusted = pow(linear, g)
    encoded = (
        1.055 * pow(adjusted, 0.41666666) - 0.055
        if adjusted > 0.0031308
        else 12.92 * adjusted
    )
    return fmin(fmax(encoded, 0.0), 1.0)


@kernel
def gamma_kernel(out: array_f32, img: array_f32, g: f32, n: i32):
    i = global_id()
    if i < n:
        out[i] = gamma_correct(img[i], g)


def reference(img: np.ndarray, g: float) -> np.ndarray:
    p = np.clip(img.astype(np.float64), 0.0, 1.0)
    linear = np.where(p > 0.04045, ((p + 0.055) / 1.055) ** 2.4, p / 12.92)
    adjusted = linear**g
    encoded = np.where(
        adjusted > 0.0031308, 1.055 * adjusted**0.41666666 - 0.055, 12.92 * adjusted
    )
    return np.clip(encoded, 0.0, 1.0)


class GammaCorrectionApp(KernelApplication):
    """Per-pixel gamma correction of a synthetic photograph."""

    info = AppInfo(
        name="Gamma Correction",
        domain="Image Processing",
        input_size="2048x2048 image",
        patterns=("map",),
        error_metric="Mean relative error",
    )
    metric = MEAN_RELATIVE
    kernel = gamma_kernel

    def __init__(self, scale: float = 0.02, seed: int = 0, gamma: float = 0.8) -> None:
        super().__init__(scale=scale, seed=seed)
        side = max(64, int(PAPER_SIDE * np.sqrt(scale)))
        self.width = self.height = side
        self.gamma = gamma

    def generate_inputs(self, seed: Optional[int] = None) -> Dict[str, object]:
        s = self.seed if seed is None else seed
        return {"img": synthetic_image(self.width, self.height, seed=s)}

    def make_output(self, inputs) -> np.ndarray:
        return np.zeros((self.height, self.width), dtype=np.float32)

    def make_args(self, inputs, out):
        return [out, inputs["img"], self.gamma, self.width * self.height]

    def grid(self, inputs) -> Grid:
        return Grid.for_elements(self.width * self.height)
