"""BoxMuller benchmark (Table 1: Statistics, 24M, Scatter/Gather, L1-norm).

Transforms pairs of uniform variates into normal variates with the
Box-Muller formula and immediately consumes them as a Monte-Carlo
exchange-option (Margrabe) payoff over two correlated lognormal assets —
the standard downstream use of Box-Muller in the SDK's Monte-Carlo
samples, and what makes the per-pair function heavy enough for the Eq.-1
memoization test (the bare polar transform alone is mostly SFU work).

The kernel *gathers*: each thread reads its uniform pair through a
permutation index array, which is what classifies the pattern as
scatter/gather rather than plain map (paper: "BoxMuller has a
scatter/gather function with two inputs").
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..engine import Grid
from ..kernel import device, kernel
from ..kernel.dsl import *  # noqa: F401,F403
from ..runtime.quality import L1_NORM
from .base import AppInfo, KernelApplication

PAPER_ELEMENTS = 24_000_000

TWO_PI = 6.283185307179586


#: lognormal model parameters of the two assets
MU = 0.02
SIGMA = 0.25


@device
def box_muller_payoff(u1: f32, u2: f32) -> f32:
    """Exchange-option payoff from one Box-Muller pair.

    The pair of uniforms becomes a pair of independent normals (cosine and
    sine branches), each drives a lognormal asset, and the payoff is
    ``max(S1 - S2, 0)``.
    """
    r = sqrt(-2.0 * log(u1))
    z0 = r * cos(6.2831853 * u2)
    z1 = r * sin(6.2831853 * u2)
    s1 = exp(0.02 + 0.25 * z0)
    s2 = exp(0.02 + 0.25 * z1)
    return fmax(s1 - s2, 0.0)


@kernel
def boxmuller_kernel(
    z: array_f32, u: array_f32, perm: array_i32, n: i32
):
    i = global_id()
    if i < n:
        j = perm[i]
        u1 = u[j]
        u2 = u[j + 1]
        z[i] = box_muller_payoff(u1, u2)


def reference(u: np.ndarray, perm: np.ndarray) -> np.ndarray:
    j = perm.astype(np.int64)
    u1 = u[j].astype(np.float64)
    u2 = u[j + 1].astype(np.float64)
    r = np.sqrt(-2.0 * np.log(u1))
    z0 = r * np.cos(2 * np.pi * u2)
    z1 = r * np.sin(2 * np.pi * u2)
    return np.maximum(np.exp(MU + SIGMA * z0) - np.exp(MU + SIGMA * z1), 0.0)


class BoxMullerApp(KernelApplication):
    """Gathered Box-Muller normal variate generation."""

    info = AppInfo(
        name="BoxMuller",
        domain="Statistics",
        input_size="24M elements",
        patterns=("scatter_gather",),
        error_metric="L1-norm",
    )
    metric = L1_NORM
    kernel = boxmuller_kernel

    def __init__(self, scale: float = 0.004, seed: int = 0) -> None:
        super().__init__(scale=scale, seed=seed)
        self.n = max(1024, int(PAPER_ELEMENTS * scale))

    def generate_inputs(self, seed: Optional[int] = None) -> Dict[str, object]:
        rng = np.random.default_rng(self.seed if seed is None else seed)
        u = rng.uniform(1e-6, 1.0 - 1e-6, self.n + 1).astype(np.float32)
        # Data-dependent but block-granular shuffle: threads of a warp stay
        # coalesced (as in the SDK's paired quasirandom streams) while every
        # access still goes through the index array.
        block = 128
        nblocks = self.n // block
        order = rng.permutation(nblocks)
        perm = (
            order[:, None] * block + np.arange(block)[None, :]
        ).ravel().astype(np.int32)
        perm = np.concatenate([perm, np.arange(perm.size, self.n, dtype=np.int32)])
        return {"u": u, "perm": perm}

    def make_output(self, inputs) -> np.ndarray:
        return np.zeros(self.n, dtype=np.float32)

    def make_args(self, inputs, out):
        return [out, inputs["u"], inputs["perm"], self.n]

    def grid(self, inputs) -> Grid:
        return Grid.for_elements(self.n)
