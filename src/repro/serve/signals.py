"""Graceful drain on termination signals.

A serving process killed mid-flight loses every queued request: the
dispatcher dies with the process and callers' Futures never resolve.
:func:`install_signal_handlers` turns SIGTERM (the orchestrator's
stop-please signal) into a drain: every live
:class:`~repro.serve.ServeFrontend` is closed — which stops admission and
lets already-admitted requests run to completion — and the shared process
pool shuts down, before the default signal disposition terminates the
process with the conventional exit status.

Front-ends register themselves here at construction through a weak set,
so tracking never keeps a discarded front-end alive and nothing changes
for processes that never install the handlers.
"""

from __future__ import annotations

import signal
import threading
import weakref
from typing import Dict, Iterable, List

#: Every live front-end, weakly held; closed front-ends are harmless to
#: re-close so no unregistration is needed.
_FRONTENDS: "weakref.WeakSet" = weakref.WeakSet()

#: signum -> the handler that was installed before ours.
_PREVIOUS: Dict[int, object] = {}

_LOCK = threading.Lock()

#: Set once a drain begins; the HTTP ``/readyz`` endpoint reads it so
#: load balancers stop routing before the process disappears.
_DRAINING = threading.Event()


def track_frontend(frontend) -> None:
    """Called by :class:`~repro.serve.ServeFrontend` at construction."""
    _FRONTENDS.add(frontend)


def live_frontends() -> List[object]:
    return list(_FRONTENDS)


def is_draining() -> bool:
    """True once :func:`drain` started (readiness, not liveness)."""
    return _DRAINING.is_set()


def reset_draining() -> None:
    """Clear the draining flag (tests re-arming a drained process)."""
    _DRAINING.clear()


def drain(timeout: float = 10.0) -> None:
    """Close every live front-end (draining their queues through
    dispatch) and shut the shared process pool down."""
    from ..parallel import shutdown_process_pool

    _DRAINING.set()
    for frontend in live_frontends():
        try:
            frontend.close(timeout=timeout)
        except Exception:  # noqa: BLE001 - draining is best-effort
            pass
    shutdown_process_pool()


def install_signal_handlers(
    signals: Iterable[int] = (signal.SIGTERM,), timeout: float = 10.0
) -> None:
    """Install drain-then-die handlers (idempotent, main thread only —
    a CPython restriction on ``signal.signal``).

    On delivery the handler drains (:func:`drain`), restores the
    previous disposition, and re-raises the signal so the process still
    terminates with the status its supervisor expects.
    """

    def handler(signum, _frame) -> None:
        drain(timeout=timeout)
        with _LOCK:
            previous = _PREVIOUS.pop(signum, None)
        signal.signal(
            signum, previous if previous is not None else signal.SIG_DFL
        )
        signal.raise_signal(signum)

    with _LOCK:
        for signum in signals:
            if signum not in _PREVIOUS:
                _PREVIOUS[signum] = signal.signal(signum, handler)


def uninstall_signal_handlers() -> None:
    """Restore every disposition :func:`install_signal_handlers` replaced."""
    with _LOCK:
        for signum, previous in _PREVIOUS.items():
            signal.signal(
                signum, previous if previous is not None else signal.SIG_DFL
            )
        _PREVIOUS.clear()
