"""Windowed quality estimation for the serving loop (paper §3.5 / Fig 2).

The runtime cannot check quality on every invocation — that would erase
the speedup — so it samples on a cadence and keeps a sliding window of the
measured qualities.  Two conditions trigger recalibration:

* **TOQ violation** — the windowed quality estimate (or a single sampled
  launch) falls below the target output quality, and
* **drift** — the estimate is still above the TOQ but has fallen far
  enough below the quality measured during training that the input
  distribution has plainly shifted; stepping down *before* the TOQ is
  violated is the margin a production deployment wants.

After several consecutive clean samples with quality comfortably above
the TOQ, the monitor signals headroom and the recalibrator may step back
up to a more aggressive variant (Green's behaviour).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional

from ..errors import ServeError

#: Monitor verdicts, in decreasing severity.
VIOLATION = "toq_violation"
DRIFT = "drift"
HEADROOM = "headroom"
OK = ""


@dataclass(frozen=True)
class MonitorConfig:
    """Knobs of the quality monitor.

    Attributes:
        sample_every: check one launch in ``sample_every`` (the paper's
            runtime checks every 40-50 invocations; tests use small values).
        window: sliding-window length of the quality estimator.
        min_samples: samples required before drift can be declared (a
            single noisy check should not retune a healthy session).
        drift_drop: how far the windowed estimate may fall below the
            training baseline before drift is declared.
        advance_after: consecutive clean samples before signalling
            headroom; 0 disables stepping back up.
        margin: quality slack over the TOQ required to signal headroom.
    """

    sample_every: int = 10
    window: int = 8
    min_samples: int = 3
    drift_drop: float = 0.05
    advance_after: int = 3
    margin: float = 0.02

    def __post_init__(self) -> None:
        if self.sample_every < 1:
            raise ServeError("MonitorConfig.sample_every must be >= 1")
        if self.window < 1:
            raise ServeError("MonitorConfig.window must be >= 1")
        if not 0.0 <= self.drift_drop <= 1.0:
            raise ServeError("MonitorConfig.drift_drop must be in [0, 1]")


class QualityMonitor:
    """Sliding-window quality estimator with a sampling cadence."""

    def __init__(self, toq: float, config: Optional[MonitorConfig] = None):
        if not 0.0 < toq <= 1.0:
            raise ServeError(f"monitor TOQ must be in (0, 1], got {toq}")
        self.toq = toq
        self.config = config or MonitorConfig()
        self.baseline: Optional[float] = None
        self.samples: Deque[float] = deque(maxlen=self.config.window)
        self._clean_streak = 0

    def set_baseline(self, quality: float) -> None:
        """Record the training-time quality of the serving variant; drift is
        measured as decay relative to this value."""
        self.baseline = quality

    def should_sample(self, launch_index: int) -> bool:
        """Whether launch ``launch_index`` (0-based) pays a quality check."""
        cadence = self.config.sample_every
        return launch_index % cadence == cadence - 1

    @property
    def estimate(self) -> Optional[float]:
        """The windowed quality estimate (None before any sample)."""
        if not self.samples:
            return None
        return sum(self.samples) / len(self.samples)

    def observe(self, quality: float) -> str:
        """Fold one sampled quality in and return the verdict: ``VIOLATION``,
        ``DRIFT``, ``HEADROOM`` or ``OK`` (empty string)."""
        self.samples.append(quality)
        estimate = self.estimate
        if quality < self.toq or estimate < self.toq:
            self._clean_streak = 0
            return VIOLATION
        if (
            self.baseline is not None
            and len(self.samples) >= self.config.min_samples
            and estimate < self.baseline - self.config.drift_drop
        ):
            self._clean_streak = 0
            return DRIFT
        self._clean_streak += 1
        if (
            self.config.advance_after
            and self._clean_streak >= self.config.advance_after
            and quality >= self.toq + self.config.margin
        ):
            self._clean_streak = 0
            return HEADROOM
        return OK

    def reset(self) -> None:
        """Forget the window (called after the session changes variant, so
        stale samples of the old variant don't re-trigger)."""
        self.samples.clear()
        self._clean_streak = 0
