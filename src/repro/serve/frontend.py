"""Multi-tenant serving front-end: one queue, batched fused dispatch.

:class:`ServeFrontend` sits in front of the launch machinery (and of
:class:`~repro.serve.ApproxSession` instances) and turns many concurrent
callers into one disciplined execution stream:

* **Admission** — every request names a *tenant*.  Tenants are
  registered with a queue-depth budget (how many of their requests may
  be outstanding at once) and an optional *TOQ floor* (sessions serving
  below that target quality are refused — a tenant paying for 0.95
  quality must not be routed through a 0.80 session).  Violations raise
  :class:`~repro.errors.BackpressureError` /
  :class:`~repro.errors.AdmissionError` at ``submit`` time, in the
  caller's thread, so backpressure propagates to the producer instead
  of growing an unbounded queue.
* **Batching** — a dispatcher thread drains the queue and fuses
  *compatible* requests into one batch: kernel launches sharing a
  ``(kernel fingerprint, grid class, bounds_check)`` key — which is
  exactly the compiled-kernel cache key, so one compilation serves the
  whole batch — and session launches sharing the session.  A batch is
  collected within a bounded window (``batch_window_s``) up to
  ``max_batch`` requests and executed under one ``serve.batch`` span.
* **Execution** — requests run in arrival order inside the batch (the
  selection is deterministic: FIFO by global sequence number, never
  reordered within a tenant), under the front-end's default
  :class:`~repro.LaunchOptions` — typically ``executor="process"`` so
  shards land on the :mod:`repro.parallel.procpool` workers and the
  front-end thread stays responsive.  Results land in
  :class:`concurrent.futures.Future` objects returned by ``submit``.

Run ``python -m repro.serve.frontend`` for the differential harness: it
pushes every benchmark app's kernel workload through a process-executor
front-end and byte-compares against serial execution.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional

from .._options import LaunchOptions, options as options_scope
from ..errors import AdmissionError, BackpressureError, ServeError
from ..obs import trace as obs_trace
from ..obs.registry import get_registry
from .overload import (
    OverloadConfig,
    OverloadController,
    PressureSample,
    degraded_variant,
)

#: Default per-tenant outstanding-request budget.
DEFAULT_TENANT_DEPTH = 64

#: Default global queue bound.
DEFAULT_QUEUE_DEPTH = 256

#: How long the dispatcher holds a batch open for compatible requests.
DEFAULT_BATCH_WINDOW_S = 0.002

#: Requests fused into one batch at most.
DEFAULT_MAX_BATCH = 8


def _flush_fusion() -> None:
    """Run any launch the cross-launch fusion window deferred on this
    thread (``sys.modules`` gate: free unless ``fuse`` was enabled)."""
    import sys

    fusion = sys.modules.get("repro.engine.fusion")
    if fusion is not None:
        fusion.flush()


@dataclass(frozen=True)
class Tenant:
    """One registered traffic source and its admission budgets.

    Attributes:
        name: tenant id, stamped on spans and metrics labels.
        max_queue_depth: outstanding requests this tenant may hold.
        toq_floor: minimum session target quality this tenant accepts;
            0.0 admits everything (plain kernel launches are exact and
            always admitted).  Under brownout it is also the quality
            floor degradation must respect for this tenant.
        priority: shed ordering under overload — when the front-end's
            overload controller reaches SHED, only tenants at the lowest
            registered priority are rejected.
        degradable: whether brownout may serve this tenant's session
            launches from a lower (faster) rung of the approximation
            ladder; False pins the tenant to each session's own choice.
    """

    name: str
    max_queue_depth: int = DEFAULT_TENANT_DEPTH
    toq_floor: float = 0.0
    priority: int = 0
    degradable: bool = True

    def __post_init__(self) -> None:
        if self.max_queue_depth < 1:
            raise ServeError(
                f"tenant {self.name!r}: max_queue_depth must be >= 1, "
                f"got {self.max_queue_depth}"
            )
        if not 0.0 <= self.toq_floor <= 1.0:
            raise ServeError(
                f"tenant {self.name!r}: toq_floor must be in [0, 1], "
                f"got {self.toq_floor}"
            )


@dataclass
class _Request:
    """One queued launch and everything needed to run and resolve it."""

    seq: int
    tenant: str
    key: tuple
    run: object  # callable producing the result; session runs accept
    # a ``variant=`` override from the brownout controller
    future: Future = field(default_factory=Future)
    enqueued: float = 0.0
    session: object = None  # the ApproxSession for submit_app requests
    deadline_s: Optional[float] = None  # queue-wait budget (miss signal)


class _FrontendMetrics:
    """Registry-backed counters for one front-end instance.

    Families are shared across instances (the registry deduplicates by
    name); per-tenant series are labelled.
    """

    def __init__(self) -> None:
        registry = get_registry()
        self._requests = registry.counter(
            "repro_frontend_requests_total",
            "requests admitted to the front-end queue",
            labelnames=("tenant",),
        )
        self._rejects = registry.counter(
            "repro_frontend_rejects_total",
            "requests refused at admission",
            labelnames=("reason",),
        )
        self.batches = registry.counter(
            "repro_frontend_batches_total", "fused batches dispatched"
        )
        self.batched = registry.counter(
            "repro_frontend_batched_requests_total",
            "requests executed through fused batches",
        )
        self.queue_depth = registry.gauge(
            "repro_frontend_queue_depth", "requests waiting in the queue"
        )
        self.wait_seconds = registry.histogram(
            "repro_frontend_wait_seconds",
            "queue wait from admission to execution start",
        )
        self.batch_size = registry.histogram(
            "repro_frontend_batch_size",
            "requests per fused batch",
            buckets=(1, 2, 4, 8, 16, 32),
        )
        self._deadline_misses = registry.counter(
            "repro_frontend_deadline_misses_total",
            "requests whose queue wait exceeded their deadline",
            labelnames=("frontend",),
        )
        # Per-tenant families the SLO engine reads; observed only while
        # an engine is attached (see ServeFrontend._observe_tenant) so
        # front-ends without SLOs pay nothing extra per request.
        self.tenant_wait_seconds = registry.histogram(
            "repro_frontend_tenant_wait_seconds",
            "queue wait from admission to execution start, per tenant",
            labelnames=("tenant",),
        )
        self._tenant_deadline_misses = registry.counter(
            "repro_frontend_tenant_deadline_misses_total",
            "requests whose queue wait exceeded their deadline, per tenant",
            labelnames=("tenant",),
        )

    def admitted(self, tenant: str) -> None:
        self._requests.labels(tenant=tenant).inc()

    def rejected(self, reason: str) -> None:
        self._rejects.labels(reason=reason).inc()

    def deadline_missed(self, frontend: str) -> None:
        self._deadline_misses.labels(frontend=frontend).inc()

    def tenant_deadline_missed(self, tenant: str) -> None:
        self._tenant_deadline_misses.labels(tenant=tenant).inc()


class ServeFrontend:
    """The multi-tenant batched front-end over the launch machinery.

    Args:
        options: default :class:`~repro.LaunchOptions` every request
            executes under (its own per-request options merge on top).
            The typical serving configuration is
            ``LaunchOptions(backend="codegen", parallel=W,
            executor="process")``.
        batch_window_s: how long the dispatcher keeps a batch open for
            compatible requests after the first one arrives.
        max_batch: requests fused into one batch at most.
        max_queue_depth: global bound on queued requests.
        registry: cross-session variant registry shared by every session
            served through this front-end (a
            :class:`~repro.registry.VariantRegistry`, a path, ``"auto"``
            or None).  Sessions submitted without their own registry
            adopt it at :meth:`submit_app` time, before first tune.
        overload: brownout overload control — an
            :class:`~repro.serve.overload.OverloadConfig` (a controller
            is built from it), a ready
            :class:`~repro.serve.overload.OverloadController`, or None
            (the default: overload stays a binary admit/reject and the
            dispatch fast path is untouched).
        slo: per-tenant SLO evaluation — an
            :class:`~repro.obs.slo.SLOEngine`, an iterable of
            :class:`~repro.obs.slo.SLOObjective` (an engine is built
            from them), or None (the default).  With an engine attached
            the dispatcher evaluates objectives between batches, records
            per-tenant wait/deadline series, and folds the engine's
            pressure hint into the overload controller's sample.
        serve_http: the embedded ops endpoint — ``True`` (ephemeral
            loopback port), a port number, ``"host:port"``, or None (the
            default: also honours ``REPRO_OBS_HTTP`` from the
            environment).  The started
            :class:`~repro.obs.http.ObsHTTPServer` is available as
            ``self.http`` and serves this front-end's readiness and SLO
            state; it stops with :meth:`close`.
    """

    _ids = itertools.count()

    def __init__(
        self,
        options: Optional[LaunchOptions] = None,
        batch_window_s: float = DEFAULT_BATCH_WINDOW_S,
        max_batch: int = DEFAULT_MAX_BATCH,
        max_queue_depth: int = DEFAULT_QUEUE_DEPTH,
        registry: Optional[object] = None,
        overload: Optional[object] = None,
        slo: Optional[object] = None,
        serve_http: Optional[object] = None,
    ) -> None:
        from ..registry import resolve_registry
        from .signals import track_frontend
        if max_batch < 1:
            raise ServeError(f"max_batch must be >= 1, got {max_batch}")
        if max_queue_depth < 1:
            raise ServeError(
                f"max_queue_depth must be >= 1, got {max_queue_depth}"
            )
        self.options = options if options is not None else LaunchOptions()
        self.registry = resolve_registry(registry)
        self.batch_window_s = batch_window_s
        self.max_batch = max_batch
        self.max_queue_depth = max_queue_depth
        self.metrics = _FrontendMetrics()
        self.label = f"f{next(self._ids)}"
        if overload is None:
            self.overload: Optional[OverloadController] = None
        elif isinstance(overload, OverloadController):
            self.overload = overload
        else:
            self.overload = OverloadController(
                OverloadConfig() if overload is True else overload,
                label=self.label,
            )
        self._miss_window: Deque[float] = deque(
            maxlen=self.overload.config.window if self.overload else 1
        )
        self._deadline_miss_count = 0
        if slo is None:
            self.slo = None
        else:
            from ..obs.slo import SLOEngine

            if isinstance(slo, SLOEngine):
                self.slo = slo
            else:
                self.slo = SLOEngine(objectives=tuple(slo))
        self.http = self._start_http(serve_http)
        self._tenants: Dict[str, Tenant] = {}
        self._outstanding: Dict[str, int] = {}
        self._queue: Deque[_Request] = deque()
        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        self._seq = itertools.count()
        self._closed = False
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="repro-frontend", daemon=True
        )
        self._dispatcher.start()
        self.register_tenant("default")
        track_frontend(self)

    def _start_http(self, serve_http):
        """Start the embedded ops endpoint when asked to (argument or
        ``REPRO_OBS_HTTP``); None otherwise."""
        import os

        from ..obs.http import ObsHTTPServer, parse_http_spec

        spec = parse_http_spec(
            serve_http
            if serve_http is not None
            else os.environ.get("REPRO_OBS_HTTP")
        )
        if spec is None:
            return None
        host, port = spec
        return ObsHTTPServer(
            port=port, host=host, slo=self.slo, frontend=self
        ).start()

    # -- tenants ---------------------------------------------------------------

    def register_tenant(
        self,
        name: str,
        max_queue_depth: int = DEFAULT_TENANT_DEPTH,
        toq_floor: float = 0.0,
        priority: int = 0,
        degradable: bool = True,
    ) -> Tenant:
        """Register (or re-register with new budgets) a tenant."""
        tenant = Tenant(name, max_queue_depth, toq_floor, priority, degradable)
        with self._lock:
            self._tenants[name] = tenant
            self._outstanding.setdefault(name, 0)
        return tenant

    def tenants(self) -> List[Tenant]:
        with self._lock:
            return list(self._tenants.values())

    # -- admission -------------------------------------------------------------

    def _admit(self, tenant_name: str, toq: Optional[float]) -> Tenant:
        """Check every admission rule; returns the tenant record.

        Called under ``self._lock``.
        """
        tenant = self._tenants.get(tenant_name)
        if tenant is None:
            self.metrics.rejected("unknown_tenant")
            raise AdmissionError(
                f"unknown tenant {tenant_name!r}; register_tenant() first"
            )
        if toq is not None and toq < tenant.toq_floor:
            self.metrics.rejected("toq_floor")
            raise AdmissionError(
                f"tenant {tenant_name!r} requires target quality >= "
                f"{tenant.toq_floor}, session serves {toq}"
            )
        controller = self.overload
        if controller is not None and controller.is_shedding:
            # SHED is the ladder's last rung: degradation is exhausted,
            # so reject — but only the lowest-priority tenants, and only
            # while the controller stays in SHED.
            lowest = min(t.priority for t in self._tenants.values())
            if tenant.priority <= lowest:
                self.metrics.rejected("shed")
                controller.record_shed(tenant_name)
                raise BackpressureError(
                    f"tenant {tenant_name!r} shed: front-end is in "
                    f"{controller.state_name()} (priority {tenant.priority})"
                )
        if len(self._queue) >= self.max_queue_depth:
            self.metrics.rejected("queue_full")
            raise BackpressureError(
                f"front-end queue is full ({self.max_queue_depth} requests)"
            )
        if self._outstanding[tenant_name] >= tenant.max_queue_depth:
            self.metrics.rejected("tenant_full")
            raise BackpressureError(
                f"tenant {tenant_name!r} has {self._outstanding[tenant_name]} "
                f"requests outstanding (budget {tenant.max_queue_depth})"
            )
        return tenant

    def _enqueue(
        self, tenant: str, key: tuple, run, toq=None, session=None,
        deadline_s=None,
    ) -> Future:
        with self._lock:
            if self._closed:
                raise ServeError("front-end is closed")
            self._admit(tenant, toq)
            request = _Request(
                seq=next(self._seq),
                tenant=tenant,
                key=key,
                run=run,
                enqueued=time.perf_counter(),
                session=session,
                deadline_s=deadline_s,
            )
            self._queue.append(request)
            self._outstanding[tenant] += 1
            self.metrics.admitted(tenant)
            self.metrics.queue_depth.set(len(self._queue))
            self._wake.notify()
        return request.future

    # -- submission ------------------------------------------------------------

    def submit(
        self,
        kernel,
        grid,
        args,
        tenant: str = "default",
        options: Optional[LaunchOptions] = None,
        bounds_check: bool = True,
        deadline_s: Optional[float] = None,
    ) -> Future:
        """Queue one kernel launch; returns a Future resolving to its Trace.

        Launches sharing a compiled-kernel cache key — same kernel IR
        fingerprint, same grid class (1-D/2-D), same bounds mode — are
        fused into one batch.  Array arguments are written in place,
        exactly as by :func:`repro.launch`; the Future resolves after
        those writes are visible.
        """
        from ..codegen.fingerprint import fingerprint_kernel
        from ..engine.interpreter import launch as _launch
        from ..engine.launch import resolve_kernel, resolve_module

        fn = resolve_kernel(kernel)
        module = resolve_module(kernel)
        key = (
            fingerprint_kernel(fn, module),
            "2d" if grid.is_2d else "1d",
            bool(bounds_check),
        )
        opts = (
            options.merged_over(self.options)
            if options is not None
            else self.options
        )

        def run():
            return _launch(
                kernel, grid, args, bounds_check=bounds_check, options=opts
            )

        return self._enqueue(tenant, key, run, deadline_s=deadline_s)

    def submit_app(
        self,
        session,
        inputs,
        tenant: str = "default",
        deadline_s: Optional[float] = None,
    ) -> Future:
        """Queue one :meth:`ApproxSession.launch`; Future resolves to its
        output.

        Requests for the same session fuse into one batch and run in
        arrival order on the dispatcher thread (sessions are not
        thread-safe; the front-end is their serialization point).  The
        tenant's TOQ floor is checked against the session's target.

        Sessions without a registry of their own adopt the front-end's,
        so a whole fleet of tenants shares one store of tuning knowledge.

        Under an overload controller in brownout, a degradable tenant's
        launch may be served from a lower rung of the session's tuned
        ladder — never one calibrated below the tenant's ``toq_floor``.
        ``deadline_s`` is this request's queue-wait budget for the
        controller's deadline-miss signal (not an execution timeout).
        """
        if self.registry is not None and hasattr(session, "attach_registry"):
            session.attach_registry(self.registry)
        key = ("app", session.key)

        def run(variant=None):
            with options_scope(self.options):
                if variant is None:
                    return session.launch(inputs)
                return session.launch(inputs, variant=variant)

        return self._enqueue(
            tenant, key, run, toq=session.toq, session=session,
            deadline_s=deadline_s,
        )

    def launch(self, kernel, grid, args, **kwargs):
        """Synchronous :meth:`submit`: block until the launch ran."""
        return self.submit(kernel, grid, args, **kwargs).result()

    # -- dispatch --------------------------------------------------------------

    def _take_batch(self) -> List[_Request]:
        """Collect the next batch (called on the dispatcher thread).

        Deterministic selection: the head of the queue anchors the
        batch; every queued request with the same key joins, in global
        sequence order, up to ``max_batch``.  The batch window only
        *waits* for stragglers — arrival order within the batch is
        never changed by timing.
        """
        with self._wake:
            while not self._queue and not self._closed:
                self._wake.wait(timeout=0.1)
                if self.overload is not None or self.slo is not None:
                    # Surface each idle tick to the dispatch loop so the
                    # controller and the SLO engine keep observing (and
                    # recovering) while no traffic arrives.
                    break
            if not self._queue:
                return []
            anchor = self._queue[0]
            deadline = time.monotonic() + self.batch_window_s
            while len(self._queue) < self.max_batch:
                matching = sum(1 for r in self._queue if r.key == anchor.key)
                if matching >= self.max_batch:
                    break
                remaining = deadline - time.monotonic()
                if remaining <= 0 or self._closed:
                    break
                self._wake.wait(timeout=remaining)
            batch: List[_Request] = []
            rest: Deque[_Request] = deque()
            for request in self._queue:
                if request.key == anchor.key and len(batch) < self.max_batch:
                    batch.append(request)
                else:
                    rest.append(request)
            self._queue = rest
            self.metrics.queue_depth.set(len(self._queue))
            return batch

    def _dispatch_loop(self) -> None:
        while True:
            batch = self._take_batch()
            if self.slo is not None:
                self.slo.maybe_evaluate()  # rate-limited inside the engine
            if not batch:
                if self._closed and not self._queue:
                    return
                if self.overload is not None:
                    self._observe_pressure([], time.perf_counter())
                continue
            self._run_batch(batch)

    def _observe_pressure(self, batch: List[_Request], now: float) -> int:
        """Feed one batch window's pressure sample to the controller.

        The queue-delay component is the worst wait in the batch plus any
        synthetic delay the ``serve.overload`` fault seam injects (the
        chaos drill's load ramp — a signal, never a real sleep).
        """
        from ..resilience.faults import SITE_OVERLOAD, active_plan

        controller = self.overload
        delay = max((now - r.enqueued) for r in batch) if batch else 0.0
        plan = active_plan()
        if plan is not None:
            spec = plan.poll(SITE_OVERLOAD, self.label)
            if spec is not None:
                delay += spec.hang_seconds
        for request in batch:
            deadline = (
                request.deadline_s
                if request.deadline_s is not None
                else controller.config.deadline_s
            )
            missed = (now - request.enqueued) > deadline
            self._miss_window.append(1.0 if missed else 0.0)
            if missed:
                self._deadline_miss_count += 1
                self.metrics.deadline_missed(self.label)
        miss_rate = (
            sum(self._miss_window) / len(self._miss_window)
            if self._miss_window
            else 0.0
        )
        with self._lock:
            depth = len(self._queue)
        return controller.observe(
            PressureSample(
                queue_delay_s=delay,
                miss_rate=miss_rate,
                saturation=depth / float(self.max_queue_depth),
                slo_burn=(
                    self.slo.pressure_hint() if self.slo is not None else 0.0
                ),
            )
        )

    def _degradation_for(self, request: _Request, level: int) -> Optional[str]:
        """The brownout variant override for one session request."""
        with self._lock:
            tenant = self._tenants.get(request.tenant)
        if tenant is None or not tenant.degradable:
            return None
        return degraded_variant(
            request.session, level, self.overload.config.levels,
            tenant.toq_floor,
        )

    def _run_batch(self, batch: List[_Request]) -> None:
        started = time.perf_counter()
        self.metrics.batches.inc()
        self.metrics.batched.inc(len(batch))
        self.metrics.batch_size.observe(len(batch))
        level = (
            self._observe_pressure(batch, started)
            if self.overload is not None
            else 0
        )
        key = batch[0].key
        with obs_trace.span(
            "serve.batch",
            key="/".join(str(part) for part in key[:2]),
            size=len(batch),
            tenants=",".join(sorted({r.tenant for r in batch})),
        ):
            for request in batch:
                self.metrics.wait_seconds.observe(started - request.enqueued)
                if self.slo is not None:
                    self._observe_tenant(request, started)
                if not request.future.set_running_or_notify_cancel():
                    self._done(request)
                    continue
                override = (
                    self._degradation_for(request, level)
                    if level > 0 and request.session is not None
                    else None
                )
                try:
                    result = (
                        request.run(variant=override)
                        if override is not None
                        else request.run()
                    )
                    # A resolved Future promises every array write has
                    # landed, so a fuse-enabled request may not leave a
                    # deferred producer behind on the dispatcher thread.
                    _flush_fusion()
                except BaseException as exc:  # noqa: BLE001 - future carries it
                    request.future.set_exception(exc)
                else:
                    request.future.set_result(result)
                self._done(request)

    def _observe_tenant(self, request: _Request, started: float) -> None:
        """Record the per-tenant series the SLO engine evaluates (only
        while an engine is attached — overhead discipline)."""
        wait = started - request.enqueued
        self.metrics.tenant_wait_seconds.labels(tenant=request.tenant).observe(
            wait
        )
        deadline = request.deadline_s
        if deadline is None and self.overload is not None:
            deadline = self.overload.config.deadline_s
        if deadline is not None and wait > deadline:
            self.metrics.tenant_deadline_missed(request.tenant)

    def _done(self, request: _Request) -> None:
        with self._lock:
            self._outstanding[request.tenant] -= 1

    # -- introspection / teardown ----------------------------------------------

    def queue_depth(self) -> int:
        with self._lock:
            return len(self._queue)

    def outstanding(self, tenant: str = "default") -> int:
        with self._lock:
            return self._outstanding.get(tenant, 0)

    def deadline_misses(self) -> int:
        """Requests whose queue wait exceeded their deadline (0 without
        an overload controller — the signal is only sampled then)."""
        return self._deadline_miss_count

    def close(self, timeout: float = 10.0) -> None:
        """Stop admitting, drain the queue *through dispatch*, stop the
        dispatcher.

        Every already-admitted request gets the chance to execute: the
        dispatcher keeps taking batches until the queue is empty, and
        ``close`` waits up to ``timeout`` for that drain.  Only requests
        still undispatched after the timeout (or after a dispatcher
        death) are failed with :class:`~repro.errors.ServeError` — never
        a request the dispatcher already picked up, whose Future the
        dispatcher itself resolves.  Safe to call from a Future callback
        on the dispatcher thread: admission stops immediately and the
        dispatch loop itself finishes draining the queue before exiting.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._wake.notify_all()
        if threading.current_thread() is self._dispatcher:
            return
        self._dispatcher.join(timeout=timeout)
        with self._lock:
            while self._queue:  # drain timed out; fail leftovers loudly
                request = self._queue.popleft()
                if not request.future.done():
                    request.future.set_exception(
                        ServeError("front-end closed before dispatch")
                    )
                self._outstanding[request.tenant] -= 1
            self.metrics.queue_depth.set(0)
        if self.http is not None:
            # Readiness already flipped to 503 when _closed was set;
            # the listener stays up through the drain (load balancers
            # keep getting a definitive answer) and goes away last.
            self.http.stop()

    def __enter__(self) -> "ServeFrontend":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


# ---------------------------------------------------------------- harness


def _differential_harness(argv: Optional[List[str]] = None) -> int:
    """``python -m repro.serve.frontend``: process-vs-serial bit-exactness.

    For every benchmark app, runs the exact program serially, then
    replays the same inputs through a front-end configured with the
    process executor, and byte-compares the outputs.  Exits non-zero on
    the first mismatch.
    """
    import argparse
    import copy

    import numpy as np

    from ..apps.registry import APP_CLASSES, make_app
    from ..codegen.check import _compare_arrays
    from ..parallel.procpool import stats_snapshot

    parser = argparse.ArgumentParser(
        prog="python -m repro.serve.frontend",
        description="Differential harness: batched process-executor "
        "front-end vs serial execution, byte-exact, all benchmark apps.",
    )
    parser.add_argument("apps", nargs="*", help="app names (default: all)")
    parser.add_argument(
        "--workers", type=int, default=2, help="process workers (default 2)"
    )
    args = parser.parse_args(argv)

    def arrays(out) -> List:
        parts = out if isinstance(out, (tuple, list)) else [out]
        return [np.asarray(p) for p in parts if isinstance(p, np.ndarray)]

    failures = []
    frontend = ServeFrontend(
        options=LaunchOptions(
            backend="codegen",
            parallel=args.workers,
            executor="process",
            min_shard_threads=1,
        )
    )
    with frontend:
        for name in args.apps or sorted(APP_CLASSES):
            app = make_app(name, seed=0)
            inputs = app.generate_inputs()
            with options_scope(backend="codegen"):
                serial = app.run_exact(copy.deepcopy(inputs))

            def run(app=app, inputs=inputs):
                with options_scope(frontend.options):
                    return app.run_exact(copy.deepcopy(inputs))

            batched = frontend._enqueue("default", ("app", name), run).result()
            mismatches = []
            for i, (a, b) in enumerate(zip(arrays(serial), arrays(batched))):
                note = _compare_arrays(f"output[{i}]", a, b)
                if note is not None:
                    mismatches.append(note)
            status = "ok " if not mismatches else "FAIL"
            print(f"[{status}] {name}" + ("" if not mismatches else f": {mismatches}"))
            if mismatches:
                failures.append(name)
    stats = stats_snapshot()
    print(
        f"{len(args.apps or APP_CLASSES) - len(failures)}/"
        f"{len(args.apps or APP_CLASSES)} apps bit-exact (process front-end "
        f"vs serial); procpool ran {stats['shards_run']} shards in "
        f"{stats['launches']} launches"
    )
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover - exercised by CI job
    raise SystemExit(_differential_harness())
