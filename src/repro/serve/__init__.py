"""Online approximation serving (paper §3.5 as a persistent runtime).

The package turns the one-shot compile/tune pipeline into a long-lived
service: :class:`ApproxSession` caches compiled variant sets in-process
and on disk, resumes tuning results across restarts, monitors sampled
output quality through a windowed estimator, and greedily recalibrates
the variant ladder when quality drifts — with every decision visible in a
structured metrics snapshot and optional JSONL event log.
"""

from .cache import CacheEntry, VariantCache, app_fingerprint, cache_key
from .metrics import EventLog, LaunchRecord, SessionMetrics, Transition
from .monitor import DRIFT, HEADROOM, OK, VIOLATION, MonitorConfig, QualityMonitor
from .overload import (
    LevelTransition,
    OverloadConfig,
    OverloadController,
    PressureSample,
    degraded_variant,
)
from .recalibrate import Recalibrator
from .frontend import ServeFrontend, Tenant
from .session import ApproxSession, LaunchInfo
from .signals import (
    drain,
    install_signal_handlers,
    uninstall_signal_handlers,
)

__all__ = [
    "ApproxSession",
    "ServeFrontend",
    "Tenant",
    "OverloadConfig",
    "OverloadController",
    "PressureSample",
    "LevelTransition",
    "degraded_variant",
    "drain",
    "install_signal_handlers",
    "uninstall_signal_handlers",
    "LaunchInfo",
    "VariantCache",
    "CacheEntry",
    "cache_key",
    "app_fingerprint",
    "MonitorConfig",
    "QualityMonitor",
    "Recalibrator",
    "SessionMetrics",
    "LaunchRecord",
    "Transition",
    "EventLog",
    "VIOLATION",
    "DRIFT",
    "HEADROOM",
    "OK",
]
