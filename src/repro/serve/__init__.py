"""Online approximation serving (paper §3.5 as a persistent runtime).

The package turns the one-shot compile/tune pipeline into a long-lived
service: :class:`ApproxSession` caches compiled variant sets in-process
and on disk, resumes tuning results across restarts, monitors sampled
output quality through a windowed estimator, and greedily recalibrates
the variant ladder when quality drifts — with every decision visible in a
structured metrics snapshot and optional JSONL event log.
"""

from .cache import CacheEntry, VariantCache, app_fingerprint, cache_key
from .metrics import EventLog, LaunchRecord, SessionMetrics, Transition
from .monitor import DRIFT, HEADROOM, OK, VIOLATION, MonitorConfig, QualityMonitor
from .recalibrate import Recalibrator
from .frontend import ServeFrontend, Tenant
from .session import ApproxSession, LaunchInfo

__all__ = [
    "ApproxSession",
    "ServeFrontend",
    "Tenant",
    "LaunchInfo",
    "VariantCache",
    "CacheEntry",
    "cache_key",
    "app_fingerprint",
    "MonitorConfig",
    "QualityMonitor",
    "Recalibrator",
    "SessionMetrics",
    "LaunchRecord",
    "Transition",
    "EventLog",
    "VIOLATION",
    "DRIFT",
    "HEADROOM",
    "OK",
]
