"""Long-lived approximation sessions: compile once, serve monitored launches.

``ApproxSession`` is the persistent-runtime counterpart of the one-shot
``Paraprox.optimize`` pipeline (paper Fig 2).  The lifecycle is

1. **compile** — generate the variant set, served from the two-level
   cache when the kernel IR, config, device and TOQ are unchanged;
2. **serve** — tune (resuming a persisted tuning result when the cache
   holds one) and start launching;
3. **monitor** — sample output quality on a cadence through a windowed
   estimator;
4. **recalibrate** — greedily step the variant ladder down on TOQ
   violations or drift and back up on sustained headroom (paper §3.5).

Every launch is recorded; :meth:`ApproxSession.metrics_snapshot` returns
the structured counters and the transition history.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass
from typing import Dict, Optional

from .._options import (
    LaunchOptions,
    current_options,
    deprecated,
    options as options_scope,
)
from ..approx.base import VariantSet
from ..approx.compiler import Paraprox, ParaproxConfig
from ..device import DeviceKind, spec_for
from ..engine import launch_hook, validate_backend
from ..errors import ServeError
from ..obs import trace as obs_trace
from ..obs.timeline import timeline as obs_timeline
from ..parallel import ProfileCache, resolve_workers
from ..resilience.breaker import BreakerConfig, VariantBreaker
from ..resilience.faults import SITE_QUALITY, maybe_inject
from ..resilience.guard import GuardPolicy, run_ladder
from ..runtime.tuner import GreedyTuner, TuningResult
from .cache import CacheEntry, VariantCache, cache_key
from .metrics import LaunchRecord, SessionMetrics, Transition
from .monitor import DRIFT, HEADROOM, VIOLATION, MonitorConfig, QualityMonitor
from .recalibrate import Recalibrator


@dataclass(frozen=True)
class LaunchInfo:
    """Correlation record of the most recent :meth:`ApproxSession.launch`.

    ``launch_id`` increases monotonically per session and is stamped on
    the launch's root span, its quality-timeline entries, and the
    :class:`~repro.serve.metrics.LaunchRecord`, so one served request can
    be followed across every observability surface.  ``trace_id`` is None
    while tracing is disabled.
    """

    launch_id: int
    trace_id: Optional[str]
    index: int
    variant: str
    served: str
    fallback_depth: int
    sampled: bool
    quality: Optional[float]


class ApproxSession:
    """One application served continuously on one device under one TOQ.

    Args:
        app: the application (any :class:`~repro.apps.base.Application`).
        target_quality: the TOQ in (0, 1].
        device: modelled device to serve on.
        config: knob ranges for variant generation.
        cache_dir: directory for the on-disk variant cache; None keeps the
            cache purely in-process.
        monitor: quality-monitor knobs (sampling cadence, window, drift).
        event_log: deprecated — forwards to the unified trace stream
            (:func:`repro.obs.trace.enable`) with a DeprecationWarning.
        tuner_repeats: training input sets the tuner averages over.
        options: session-default :class:`~repro.LaunchOptions` — the
            third layer of the precedence chain.  At launch time an
            active :func:`repro.options` scope overrides these, and
            these override the config knobs (``backend``,
            ``parallel_workers``, ``executor``).  Tuning always
            interprets — its cost model needs instruction traces.
        backend / parallel: per-field spellings of the same defaults,
            kept for convenience; where both are given, these explicit
            fields override the corresponding ``options`` fields.
        guard: guarded-launch policy (retries, deadline, output
            validation); defaults to ``GuardPolicy()``.  Pass
            ``GuardPolicy(enabled=False)`` for the raw unguarded path.
        breaker: circuit-breaker knobs for variant quarantine; defaults
            to ``BreakerConfig()``.
        registry: cross-session variant registry — a
            :class:`~repro.registry.VariantRegistry`, a directory path,
            ``"auto"`` (open ``REPRO_REGISTRY_DIR`` when set), or None
            (disabled).  With a registry, cold-start tuning seeds from
            the stored Pareto front's TOQ-feasible knee and every
            measurement is written back; :meth:`warm_restart` re-tunes
            the same way after drift.
    """

    def __init__(
        self,
        app,
        target_quality: float = 0.90,
        device: DeviceKind = DeviceKind.GPU,
        config: Optional[ParaproxConfig] = None,
        cache_dir: Optional[object] = None,
        monitor: Optional[MonitorConfig] = None,
        event_log: Optional[object] = None,
        tuner_repeats: int = 1,
        backend: Optional[str] = None,
        parallel: Optional[object] = None,
        guard: Optional[GuardPolicy] = None,
        breaker: Optional[BreakerConfig] = None,
        options: Optional[LaunchOptions] = None,
        registry: Optional[object] = None,
    ) -> None:
        from ..parallel.pool import policy_from_options
        from ..registry import resolve_registry

        self.app = app
        self.paraprox = Paraprox(
            target_quality=target_quality, device=device, config=config
        )
        # Session defaults: config knobs < options= < explicit fields.
        config_defaults = LaunchOptions(
            backend=self.paraprox.config.backend,
            parallel=self.paraprox.config.parallel_workers,
            executor=self.paraprox.config.executor,
        )
        merged = (
            options.merged_over(config_defaults)
            if options is not None
            else config_defaults
        )
        explicit = LaunchOptions(backend=backend, parallel=parallel)
        self.options = explicit.merged_over(merged)
        self.backend = validate_backend(self.options.backend)
        self.parallel_workers = resolve_workers(
            policy_from_options(self.options).workers
        )
        self.guard = guard if guard is not None else GuardPolicy()
        self.breaker = VariantBreaker(breaker)
        self.profile_cache = ProfileCache(
            max_entries=self.paraprox.config.profile_cache_entries
        )
        self.device = device
        self.spec = spec_for(device)
        self.cache = VariantCache(cache_dir)
        self.monitor = QualityMonitor(self.toq, monitor)
        if event_log is not None:
            # Shim: the session-private JSONL log is superseded by the
            # unified trace stream, which carries the same launch/quality
            # story (plus spans) in one file for the whole process.
            deprecated(
                "ApproxSession(event_log=...)",
                "repro.obs.trace.enable(trace_path=...)",
            )
            if obs_trace.trace_path() is None:
                obs_trace.enable(trace_path=event_log)
        self.metrics = SessionMetrics(event_log=None)
        self.metrics.bind_session_sources(
            breaker=self.breaker,
            guard_policy=self.guard,
            profile_cache=self.profile_cache,
            workers=self.parallel_workers,
        )
        self.registry = resolve_registry(registry)
        self._registry_key: Optional[str] = None
        self._tuner_seed_mode = "off"
        self.tuner_repeats = tuner_repeats
        self._launch_ids = itertools.count()
        self._last_launch: Optional[LaunchInfo] = None
        self._entry: Optional[CacheEntry] = None
        self._variants: Optional[VariantSet] = None
        self._tuning: Optional[TuningResult] = None
        self._recalibrator: Optional[Recalibrator] = None
        self._key: Optional[str] = None
        self._closed = False

    # -- identity --------------------------------------------------------------

    @property
    def toq(self) -> float:
        return self.paraprox.toq

    @property
    def key(self) -> str:
        """The stable cache key of this session's compiled artifact.

        Computed once: a session serves one program on one device under
        one TOQ, so the fingerprint cannot change over its lifetime.
        """
        if self._key is None:
            self._key = cache_key(
                self.app, self.paraprox.config, self.spec, self.toq
            )
        return self._key

    # -- lifecycle: compile ----------------------------------------------------

    def compile(self, force: bool = False) -> VariantSet:
        """The variant set for this session, from cache when possible.

        Repeat calls on an unchanged kernel are an in-process hash lookup;
        a fresh process with the same ``cache_dir`` starts from the disk
        level.  ``force=True`` recompiles and overwrites both levels.
        """
        self._check_open()
        key = self.key
        started = time.perf_counter()
        with obs_trace.span(
            "serve.compile", app=self.app.name, session=self.metrics.label
        ) as compile_span:
            tier = "miss" if force else self.cache.tier(key)
            entry = None if force else self.cache.get(key)
            if entry is None:
                tier = "miss"
                variants = self.paraprox.compile(self.app, self.device)
                entry = CacheEntry(
                    key=key,
                    variants=variants,
                    meta={
                        "app": self.app.name,
                        "device": self.spec.kind.value,
                        "toq": self.toq,
                    },
                )
                self.cache.put(entry)
            elif (
                isinstance(entry.variants, VariantSet)
                and entry.variants.exact is None
            ):
                # The disk level drops the exact KernelFn; reattach the app's.
                entry.variants.exact = getattr(self.app, "kernel", None)
            compile_span.set(cache=tier)
        self.metrics.record_compile(tier, time.perf_counter() - started)
        self._entry = entry
        self._variants = entry.variants
        return self._variants

    # -- lifecycle: tune / serve ----------------------------------------------

    def tune(self, force: bool = False) -> TuningResult:
        """Profile the variants (or resume the persisted tuning result) and
        arm the monitor and recalibrator."""
        self._check_open()
        if self._tuning is not None and not force:
            return self._tuning
        variants = self._variants if self._variants is not None else self.compile()
        tuner = GreedyTuner(
            self.spec,
            toq=self.toq,
            workers=self.parallel_workers,
            profile_cache=self.profile_cache,
            registry=self.registry,
        )
        started = time.perf_counter()
        saved = self._entry.tuning if self._entry is not None else None
        quarantined = self.breaker.quarantined()
        with obs_trace.span(
            "serve.tune", app=self.app.name, session=self.metrics.label
        ) as tune_span:
            if saved is not None and not force:
                result = tuner.resume(
                    self.app, variants, saved, exclude=quarantined
                )
            else:
                result = tuner.profile(
                    self.app,
                    variants,
                    self.app.generate_inputs(seed=self.app.seed),
                    repeats=self.tuner_repeats,
                    exclude=quarantined,
                )
            cache_state = "resume" if getattr(result, "resumed", False) else "miss"
            tune_span.set(
                cache=cache_state,
                chosen=result.chosen.name,
                seed_mode=tuner.last_seed_mode,
                measured=tuner.last_measured,
            )
        self._tuner_seed_mode = tuner.last_seed_mode
        if tuner.last_registry_key is not None:
            self._registry_key = tuner.last_registry_key
        self.metrics.record_tune(cache_state, time.perf_counter() - started)
        self._tuning = result
        if self._entry is not None:
            self._entry.tuning = result.to_dict()
            self.cache.put(self._entry)
        self._recalibrator = Recalibrator(result, self.toq)
        self.monitor.reset()
        self.monitor.set_baseline(result.chosen.quality)
        return result

    def warm_restart(self) -> TuningResult:
        """Re-tune from registry knowledge instead of a full cold sweep.

        The drift-recovery counterpart of :meth:`tune`: the persisted
        tuning result and the in-memory ladder are discarded (they
        describe the drifted-away world), and tuning runs again seeded
        from the registry front — a lookup plus short local refinement
        when the registry knows this key, a cold sweep otherwise.
        """
        self._check_open()
        with obs_trace.span(
            "serve.warm_restart", app=self.app.name, session=self.metrics.label
        ):
            self._tuning = None
            if self._entry is not None:
                self._entry.tuning = None
            return self.tune(force=True)

    def attach_registry(self, registry) -> None:
        """Late-bind a registry (e.g. by a frontend adopting the session).

        Only takes effect before first tune unless :meth:`warm_restart`
        is called; a session that already has a registry keeps it.
        """
        from ..registry import resolve_registry

        if self.registry is None:
            self.registry = resolve_registry(registry)

    # -- lifecycle: monitored launches ----------------------------------------

    def launch(self, inputs, variant: Optional[str] = None) -> object:
        """Serve one invocation through the monitored execution loop.

        Runs the current variant through the guarded fallback ladder
        (*variant → exact codegen → exact interpreter*): any contained
        failure — a crash, a hang past the guard deadline, a NaN/Inf
        output — steps down a rung instead of propagating, so the caller
        always gets an answer.  Faults charge the variant's circuit
        breaker; a breaker that opens quarantines the variant (the
        recalibrator steps off it and the tuner won't re-choose it) until
        its probation window passes.  Quality is sampled on the monitor's
        cadence and recalibrates exactly as before.

        ``variant`` requests one launch at a specific ladder rung — a
        variant name from the tuned ladder, or ``"exact"`` — *without*
        disturbing the tuner's chosen configuration: the brownout
        controller serves degraded launches this way.  An overridden
        launch skips the monitor (its quality is intentionally below the
        session's own target; feeding it to the drift detector would
        trigger spurious recalibration) but still charges the breaker,
        and its sampled quality lands on the timeline with verdict
        ``"brownout"``.  An unresolvable name falls back to the normal
        monitored path.
        """
        self._check_open()
        if self._recalibrator is None:
            self.tune()
        recal = self._recalibrator
        override = self._resolve_override(variant) if variant is not None else None
        index = self.metrics.launches
        launch_id = next(self._launch_ids)
        kernel_launches = [0]
        backend_counts: Dict[str, int] = {}

        def count(event) -> None:
            kernel_launches[0] += 1
            backend_counts[event.backend] = backend_counts.get(event.backend, 0) + 1

        # Precedence: an active repro.options scope overrides the session
        # defaults, which already fold in the config knobs.  The ladder
        # sets backend/parallel per rung, so only the remaining fields
        # (executor, shard threshold) ride in as an ambient scope.
        from ..parallel.pool import policy_from_options

        effective = current_options().merged_over(self.options)
        backend = validate_backend(effective.backend)
        workers = policy_from_options(effective).workers
        ambient = LaunchOptions(
            executor=effective.executor,
            min_shard_threads=effective.min_shard_threads,
            fuse=effective.fuse,
        )

        started = time.perf_counter()
        with obs_trace.span(
            "serve.launch",
            app=self.app.name,
            session=self.metrics.label,
            launch_id=launch_id,
        ) as root:
            self.metrics.begin_launch(launch_id, root.trace_id)
            if override is not None:
                serving_variant, serving_name, serving_speedup = override
                root.set(brownout=True)
            else:
                self._step_off_quarantined(index)
                serving_variant = recal.current
                serving_name = recal.current_name
                serving_speedup = recal.speedup_estimate
            root.set(variant=serving_name)
            with launch_hook(count), options_scope(ambient):
                try:
                    out, report = run_ladder(
                        self.app,
                        inputs,
                        serving_variant,
                        backend=backend,
                        workers=workers,
                        policy=self.guard,
                    )
                except BaseException:
                    # The ladder exhausted every rung: the caller sees
                    # this error, so it counts against availability.
                    self.metrics.record_launch_error()
                    raise
                # The ladder flushes per rung, but a fuse-enabled app
                # that ends on a deferred producer must run it before
                # this launch's output is treated as final.
                import sys as _sys

                _fusion = _sys.modules.get("repro.engine.fusion")
                if _fusion is not None:
                    _fusion.flush()

            record = LaunchRecord(
                index=index,
                variant=serving_name,
                knobs=dict(getattr(serving_variant, "knobs", {}) or {}),
                speedup_estimate=serving_speedup,
                kernel_launches=kernel_launches[0],
                backends=backend_counts,
                served=report.served,
                fallback_depth=report.depth,
                faults=[f"{a.rung}:{a.site}" for a in report.faults],
                launch_id=launch_id,
                trace_id=root.trace_id,
            )
            if serving_variant is not None:
                if report.primary_ok:
                    self.breaker.record_success(serving_name, index)
                else:
                    reason = report.faults[0].site if report.faults else "fault"
                    if self.breaker.record_fault(serving_name, index, reason):
                        # An overridden launch is off-ladder: the breaker
                        # opened (so degradation skips this variant from
                        # now on) but the recalibrator's rung — the
                        # tuner's choice — must not move.
                        if override is None:
                            self._quarantine(record)
                        else:
                            record.action = "quarantine"
                            record.reason = "quarantine"
            served_primary = report.primary_ok
            if self.monitor.should_sample(index) and served_primary:
                record.sampled = True
                quality = self._evaluate_quality(
                    out, inputs, serving_variant, record
                )
                if quality is not None:
                    record.quality = quality
                    # Overridden (browned-out) launches are *expected*
                    # to serve below the session TOQ; their samples stay
                    # out of the drift window so the monitor keeps
                    # describing the tuner's own configuration.
                    verdict = (
                        "brownout"
                        if override is not None
                        else self.monitor.observe(quality)
                    )
                    obs_timeline().quality_sample(
                        session=self.metrics.label,
                        launch_id=launch_id,
                        trace_id=root.trace_id,
                        variant=serving_name,
                        quality=quality,
                        estimate=self.monitor.estimate,
                        toq=self.toq,
                        speedup=serving_speedup,
                        verdict=verdict,
                        registry_key=self._registry_key,
                    )
                    if verdict in (VIOLATION, DRIFT):
                        obs_timeline().verdict(
                            verdict,
                            session=self.metrics.label,
                            launch_id=launch_id,
                            trace_id=root.trace_id,
                            variant=serving_name,
                            quality=quality,
                        )
                    if override is None:
                        self._react(verdict, record)
            for event in self.breaker.drain_events():
                self.metrics.record_breaker_event(event)
            record.duration = time.perf_counter() - started
            self.metrics.record_launch(record)
            root.set(
                served=report.served or "primary",
                fallback_depth=report.depth,
                sampled=record.sampled,
                quality=record.quality,
            )
        self._last_launch = LaunchInfo(
            launch_id=launch_id,
            trace_id=root.trace_id,
            index=index,
            variant=record.variant,
            served=record.served,
            fallback_depth=record.fallback_depth,
            sampled=record.sampled,
            quality=record.quality,
        )
        return out

    def _resolve_override(self, name: str) -> Optional[tuple]:
        """Resolve a requested ladder rung to ``(variant, name, speedup)``.

        ``"exact"`` is always resolvable; other names resolve through the
        tuning profiles (carrying the calibrated speedup estimate) or,
        failing that, the compiled variant set.  None means the request
        cannot be honored and the launch proceeds on the normal path.
        """
        if name == "exact":
            return (None, "exact", 1.0)
        if self._tuning is not None:
            for profile in self._tuning.profiles:
                if profile.variant is not None and profile.name == name:
                    return (profile.variant, name, profile.speedup)
        if self._variants is not None:
            try:
                return (self._variants.by_name(name), name, 1.0)
            except KeyError:
                pass
        return None

    def _evaluate_quality(self, out, inputs, variant, record) -> Optional[float]:
        """Sampled-quality evaluation with fault containment.

        A crash inside the evaluator (it runs the exact program and the
        app's metric — real code that can really fail) must not take the
        serving path down; the sample is skipped and counted as a fault.
        """
        with obs_trace.span(
            "serve.quality_check", app=self.app.name, variant=record.variant
        ) as check_span:
            try:
                maybe_inject(SITE_QUALITY, self.app.name)
                quality = (
                    1.0 if variant is None else self.app.evaluate(out, inputs)
                )
                check_span.set(quality=quality)
                return quality
            except Exception as exc:
                record.faults.append(f"quality:{type(exc).__name__}")
                check_span.set(fault=type(exc).__name__)
                return None

    def _step_off_quarantined(self, index: int) -> None:
        """Move the recalibrator below any quarantined rung before serving."""
        recal = self._recalibrator
        if recal.current is None or not self.breaker.blocked(
            recal.current_name, index
        ):
            return
        previous = recal.current_name
        while recal.current is not None and self.breaker.blocked(
            recal.current_name, index
        ):
            if not recal.step_down():
                break
        self.monitor.reset()
        self.metrics.record_transition(
            Transition(
                launch=index,
                from_variant=previous,
                to_variant=recal.current_name,
                reason="quarantine",
            )
        )

    def _quarantine(self, record: LaunchRecord) -> None:
        """A breaker just opened on the serving variant: step off it now."""
        recal = self._recalibrator
        previous = recal.current_name
        record.action = "quarantine"
        record.reason = "quarantine"
        while recal.current is not None and self.breaker.blocked(
            recal.current_name, record.index
        ):
            if not recal.step_down():
                break
        self.monitor.reset()
        self.metrics.record_transition(
            Transition(
                launch=record.index,
                from_variant=previous,
                to_variant=recal.current_name,
                reason="quarantine",
                quality=record.quality,
            )
        )

    def _react(self, verdict: str, record: LaunchRecord) -> None:
        """Apply the monitor's verdict: one greedy ladder step (§3.5)."""
        recal = self._recalibrator
        if verdict in (VIOLATION, DRIFT):
            record.reason = verdict
            # Served quality diverged from what tuning measured: that is
            # exactly the evidence the registry should hold, so fold the
            # observation into the variant's stored point before stepping.
            if (
                self.registry is not None
                and self._registry_key is not None
                and record.quality is not None
                and recal.current is not None
            ):
                self.registry.record_observation(
                    self._registry_key, recal.current_name, record.quality
                )
            previous = recal.current_name
            if recal.step_down():
                record.action = "recalibrate_down"
                self.monitor.reset()
                self.metrics.record_transition(
                    Transition(
                        launch=record.index,
                        from_variant=previous,
                        to_variant=recal.current_name,
                        reason=verdict,
                        quality=record.quality,
                    )
                )
        elif verdict == HEADROOM and not recal.at_top:
            record.reason = "headroom"
            previous = recal.current_name
            previous_rung = recal.rung
            # Step up past quarantined rungs; if everything above is
            # quarantined, stay put rather than promote a known-bad variant.
            moved = False
            while recal.step_up():
                if not self.breaker.blocked(recal.current_name, record.index):
                    moved = True
                    break
            if moved:
                record.action = "recalibrate_up"
                self.monitor.reset()
                self.metrics.record_transition(
                    Transition(
                        launch=record.index,
                        from_variant=previous,
                        to_variant=recal.current_name,
                        reason="headroom",
                        quality=record.quality,
                    )
                )
            else:
                recal.rung = previous_rung

    # -- observability ---------------------------------------------------------

    @property
    def current_variant(self) -> str:
        """Name of the variant the next launch will run."""
        if self._recalibrator is None:
            return "untuned"
        return self._recalibrator.current_name

    @property
    def tuning(self) -> Optional[TuningResult]:
        """The armed tuning result (None before first tune) — the
        calibrated ladder brownout degradation selects from."""
        return self._tuning

    @property
    def registry_key(self) -> Optional[str]:
        """The variant-registry key tuning resolved for this session
        (None without a registry or before first tune)."""
        return self._registry_key

    @property
    def last_launch(self) -> Optional[LaunchInfo]:
        """Correlation ids and outcome of the most recent launch
        (None before the first one)."""
        return self._last_launch

    def metrics_snapshot(self) -> dict:
        """Counters, cache statistics, transition history and current state.

        The parallel and resilience sections (including breaker states and
        the guard policy) are assembled by :meth:`SessionMetrics.snapshot`
        from the sources bound at construction; this method only adds the
        session-identity block.
        """
        snapshot = self.metrics.snapshot()
        if self._variants is not None:
            # Per-variant lowering outcome: codegen-v2 / codegen-v1 /
            # interpreter, with the reason (specialization summary or
            # fallback cause) — the serving-side answer to "which code
            # actually runs for each variant?".
            snapshot["codegen"]["variants"] = self._variants.lowering_outcomes()
        snapshot["session"] = {
            "app": self.app.name,
            "device": self.spec.kind.value,
            "toq": self.toq,
            "backend": self.backend,
            "cache_key": self.key,
            "current_variant": self.current_variant,
            "quality_estimate": self.monitor.estimate,
            "ladder": [p.name for p in self._recalibrator.ladder]
            if self._recalibrator is not None
            else [],
        }
        snapshot["registry"] = (
            {
                **self.registry.stats(),
                "key": self._registry_key,
                "seed_mode": self._tuner_seed_mode,
            }
            if self.registry is not None
            else {"enabled": False}
        )
        return snapshot

    # -- teardown --------------------------------------------------------------

    def close(self) -> None:
        if self.metrics.event_log is not None:
            self.metrics.event_log.close()
        obs_trace.flush()
        self._closed = True

    def _check_open(self) -> None:
        if self._closed:
            raise ServeError("session is closed")

    def __enter__(self) -> "ApproxSession":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
