"""Greedy knob recalibration (paper §3.5, "Runtime System").

Training (the tuner) orders a kernel's deployable variants on a ladder of
increasing aggressiveness; serving starts at the tuned choice.  When the
monitor reports a TOQ violation or drift, the recalibrator greedily steps
*down* one rung — toward less aggressive knob values, bottoming out at the
exact program — and when the monitor reports sustained headroom it steps
back *up*, reclaiming speedup after a transient shift passes.  This is
exactly the paper's knob-stepping loop, expressed over the variant ladder
rather than raw knob tuples so it works uniformly across all four
approximation families.
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import ServeError
from ..runtime.tuner import TuningResult, VariantProfile


class Recalibrator:
    """Walks the tuned variant ladder one rung at a time.

    Args:
        tuning: the (possibly resumed) tuning result; its profiles supply
            the ladder and the per-variant speedup estimates.
        toq: target output quality; only variants whose *training* quality
            met the TOQ are deployable rungs (the others are known-bad).
    """

    def __init__(self, tuning: TuningResult, toq: float) -> None:
        rungs = [
            p
            for p in tuning.profiles
            if p.variant is not None and p.quality >= toq
        ]
        named = [p for p in tuning.profiles if not p.is_exact]
        if named and all(p.variant is None for p in named):
            raise ServeError(
                "tuning result has only unbound (name-only) variant "
                "profiles; call TuningResult.rebind(variants) before serving"
            )
        #: least -> most aggressive; exact is the implicit rung below 0.
        self.ladder: List[VariantProfile] = sorted(
            rungs, key=lambda p: (self._aggressiveness(p), p.speedup)
        )
        self.exact_profile = next(
            (p for p in tuning.profiles if p.is_exact), None
        )
        if tuning.chosen.variant is None:
            self.rung = -1
        else:
            self.rung = next(
                (
                    i
                    for i, p in enumerate(self.ladder)
                    if p.name == tuning.chosen.name
                ),
                len(self.ladder) - 1,
            )

    @staticmethod
    def _aggressiveness(profile: VariantProfile) -> float:
        value = getattr(profile.variant, "aggressiveness", 0.0)
        # Variants that don't rank themselves fall back to modelled speedup:
        # faster approximations are, by construction, more aggressive.
        return value if value else profile.speedup

    # -- state ----------------------------------------------------------------

    @property
    def current(self) -> Optional[object]:
        """The serving variant (None means the exact program)."""
        return self.ladder[self.rung].variant if self.rung >= 0 else None

    @property
    def current_profile(self) -> Optional[VariantProfile]:
        return self.ladder[self.rung] if self.rung >= 0 else self.exact_profile

    @property
    def current_name(self) -> str:
        return self.ladder[self.rung].name if self.rung >= 0 else "exact"

    @property
    def speedup_estimate(self) -> float:
        profile = self.current_profile
        return profile.speedup if profile is not None else 1.0

    @property
    def at_exact(self) -> bool:
        return self.rung < 0

    @property
    def at_top(self) -> bool:
        return self.rung >= len(self.ladder) - 1

    # -- stepping --------------------------------------------------------------

    def step_down(self) -> bool:
        """Move one rung toward the exact program; False when already there."""
        if self.at_exact:
            return False
        self.rung -= 1
        return True

    def step_up(self) -> bool:
        """Move one rung toward the most aggressive variant; False at top."""
        if self.at_top:
            return False
        self.rung += 1
        return True
