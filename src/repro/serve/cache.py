"""Compiled-variant caching for approximation sessions.

``Paraprox.compile`` re-detects patterns and regenerates every variant on
each call; a serving runtime cannot afford that on restart or per request.
The cache keys a compiled :class:`~repro.approx.base.VariantSet` (plus the
serialized tuning result, once available) by a **stable fingerprint** of
everything that determines the artifact:

* the kernel IR, rendered to canonical text (same printer the golden
  tests use) — any source change invalidates,
* the :class:`~repro.approx.compiler.ParaproxConfig` knob ranges,
* the device spec, and
* the TOQ.

Entries live in-process (a dict — repeat ``compile()`` calls are a hash
lookup) and optionally on disk as pickles, so a fresh process starts warm.
"""

from __future__ import annotations

import hashlib
import json
import pickle
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional

from ..approx.base import VariantSet
from ..device import DeviceSpec
from ..kernel.printer import print_module
from ..resilience.faults import SITE_CACHE_LOAD, maybe_inject

#: Bump when the pickle layout changes; mismatched entries are misses.
CACHE_FORMAT = 2  # 2: VariantSet gained the `backend` field


def app_fingerprint(app) -> str:
    """A stable text fingerprint of the program an app serves.

    Single-kernel apps hash their kernel module's printed IR — the
    canonical form, insensitive to object identity but sensitive to any
    code change.  Multi-kernel apps (custom ``build_variants`` pipelines)
    fall back to their class name and constructor-visible attributes.
    """
    kernel = getattr(app, "kernel", None)
    module = getattr(kernel, "module", None)
    if module is not None:
        return f"ir:{print_module(module)}"
    shape = {
        k: repr(v)
        for k, v in sorted(vars(app).items())
        if isinstance(v, (int, float, str, bool, tuple)) or v is None
    }
    return f"app:{type(app).__name__}:{json.dumps(shape, sort_keys=True)}"


def cache_key(app, config, spec: DeviceSpec, toq: float) -> str:
    """SHA-256 over everything that determines the compiled artifact."""
    payload = json.dumps(
        {
            "format": CACHE_FORMAT,
            "app": app_fingerprint(app),
            "config": config.to_dict(),
            "device": {"kind": spec.kind.value, "name": spec.name},
            "toq": round(float(toq), 12),
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass
class CacheEntry:
    """One cached compilation (and, once tuned, its tuning result)."""

    key: str
    variants: VariantSet
    tuning: Optional[dict] = None  # TuningResult.to_dict() form
    meta: Dict[str, object] = field(default_factory=dict)


class VariantCache:
    """Two-level (memory, disk) cache of compiled variant sets.

    Args:
        cache_dir: directory for the disk level; ``None`` disables it and
            the cache is purely in-process.
    """

    def __init__(self, cache_dir: Optional[object] = None) -> None:
        self._memory: Dict[str, CacheEntry] = {}
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        if self.cache_dir is not None:
            self.cache_dir.mkdir(parents=True, exist_ok=True)

    def _path(self, key: str) -> Optional[Path]:
        if self.cache_dir is None:
            return None
        return self.cache_dir / f"{key}.pkl"

    # -- lookup ----------------------------------------------------------------

    def get(self, key: str) -> Optional[CacheEntry]:
        """The entry for ``key``, or None.  Disk hits are promoted to the
        memory level; corrupt or format-mismatched files count as misses."""
        entry = self._memory.get(key)
        if entry is not None:
            return entry
        path = self._path(key)
        if path is None or not path.exists():
            return None
        try:
            # Fault-injection seam: an injected load failure exercises the
            # same containment as a truly corrupt file — a miss, recompile.
            maybe_inject(SITE_CACHE_LOAD, key)
            with path.open("rb") as fh:
                payload = pickle.load(fh)
            if payload.get("format") != CACHE_FORMAT or payload.get("key") != key:
                return None
            entry = CacheEntry(
                key=key,
                variants=payload["variants"],
                tuning=payload.get("tuning"),
                meta=payload.get("meta", {}),
            )
        except Exception:
            # A bad cache file must never break serving; recompile instead.
            return None
        self._memory[key] = entry
        return entry

    def tier(self, key: str) -> str:
        """Which level would serve ``key``: "memory", "disk" or "miss"."""
        if key in self._memory:
            return "memory"
        path = self._path(key)
        if path is not None and path.exists():
            return "disk"
        return "miss"

    # -- store -----------------------------------------------------------------

    def put(self, entry: CacheEntry) -> None:
        """Store at both levels (atomic rename on disk).

        The disk copy drops ``VariantSet.exact``: the exact program is a
        live ``KernelFn`` closure over the app's decorated function (not
        picklable, and not needed — the session reattaches ``app.kernel``
        after a disk hit).
        """
        self._memory[entry.key] = entry
        path = self._path(entry.key)
        if path is None:
            return
        variants = entry.variants
        if isinstance(variants, VariantSet) and variants.exact is not None:
            import dataclasses

            variants = dataclasses.replace(variants, exact=None)
        payload = {
            "format": CACHE_FORMAT,
            "key": entry.key,
            "variants": variants,
            "tuning": entry.tuning,
            "meta": entry.meta,
        }
        tmp = path.with_suffix(".tmp")
        try:
            with tmp.open("wb") as fh:
                pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
            tmp.replace(path)
        except Exception:
            # Disk persistence is best-effort; the memory level still holds
            # the entry and serving proceeds.
            tmp.unlink(missing_ok=True)

    def invalidate(self, key: str) -> None:
        self._memory.pop(key, None)
        path = self._path(key)
        if path is not None:
            path.unlink(missing_ok=True)

    def clear(self) -> None:
        self._memory.clear()
        if self.cache_dir is not None:
            for path in self.cache_dir.glob("*.pkl"):
                path.unlink(missing_ok=True)

    def __len__(self) -> int:
        return len(self._memory)
