"""Brownout overload control: degrade quality before dropping traffic.

The serving front-end treats overload as a binary — admit, or hard-reject
with :class:`~repro.errors.BackpressureError`.  But quality is this
system's tradable resource (the paper's whole premise): under pressure
the robust move is to walk *every* degradable tenant down the
approximation ladder, within its declared ``toq_floor``, and only start
rejecting traffic — lowest-priority tenants first — once the ladder is
exhausted.  That policy lives here:

* :class:`OverloadController` — a hysteresis state machine
  ``NORMAL -> BROWNOUT-1..K -> SHED`` driven by a normalized pressure
  signal (queue delay vs target, deadline-miss rate, queue saturation).
  Escalation is immediate at the high-water mark; recovery re-promotes
  one level at a time, each step only after pressure has stayed below
  the low-water mark for a full cooldown.  Every transition is a
  ``serve.brownout`` span, a timeline entry and a
  ``repro_brownout_*`` metric update.
* :func:`degraded_variant` — maps a brownout level onto one session's
  tuned ladder: the fastest calibrated variant whose training quality
  still clears the interpolated quality bar (TOQ at level 0 sliding to
  the tenant's floor at level K), skipping breaker-quarantined variants,
  seeded from the variant registry's knee point when one is known.
* the saturation drill — ``python -m repro.serve.overload --drill``
  ramps synthetic queue delay (via the ``serve.overload`` fault seam)
  through a three-tenant front-end for every benchmark app and asserts
  the brownout contract: no deadline-miss cascade, every served response
  at or above its tenant's floor, shed confined to the lowest-priority
  tenant, monotone level transitions, and full recovery to NORMAL.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, List, Optional

from ..errors import ServeError
from ..obs import trace as obs_trace
from ..obs.registry import get_registry
from ..obs.timeline import timeline as obs_timeline

#: Pressure cap: queue delay far past target saturates the signal rather
#: than growing without bound (one observation still moves one level).
_PRESSURE_CAP = 4.0


@dataclass(frozen=True)
class OverloadConfig:
    """Knobs of one front-end's brownout state machine.

    Attributes:
        levels: brownout depth K; the state ladder is NORMAL (0),
            BROWNOUT-1..K, SHED (K+1).
        high_water: pressure at or above this escalates one level.
        low_water: pressure at or below this, *sustained*, recovers one
            level.  ``low_water < high_water`` is the hysteresis band —
            pressure between the marks holds the current level.
        cooldown_s: how long pressure must stay below the low-water mark
            before each single recovery step (the timer restarts per
            rung, so full recovery from SHED takes ``(K+1) * cooldown``
            of sustained calm).
        queue_delay_target_s: queue delay that normalizes to pressure
            1.0; the delay component is ``delay / target`` (capped).
        deadline_s: default per-request queue-delay deadline used for
            the miss-rate signal when ``submit`` gave none.
        window: rolling request window for the deadline-miss rate.
    """

    levels: int = 3
    high_water: float = 0.75
    low_water: float = 0.25
    cooldown_s: float = 0.25
    queue_delay_target_s: float = 0.05
    deadline_s: float = 0.5
    window: int = 32

    def __post_init__(self) -> None:
        if self.levels < 1:
            raise ServeError(f"levels must be >= 1, got {self.levels}")
        if not 0.0 < self.high_water:
            raise ServeError(
                f"high_water must be > 0, got {self.high_water}"
            )
        if not 0.0 <= self.low_water < self.high_water:
            raise ServeError(
                f"low_water must be in [0, high_water), got "
                f"{self.low_water} (high_water {self.high_water})"
            )
        if self.cooldown_s < 0:
            raise ServeError(f"cooldown_s must be >= 0, got {self.cooldown_s}")
        if self.queue_delay_target_s <= 0:
            raise ServeError(
                f"queue_delay_target_s must be > 0, got "
                f"{self.queue_delay_target_s}"
            )
        if self.deadline_s <= 0:
            raise ServeError(f"deadline_s must be > 0, got {self.deadline_s}")
        if self.window < 1:
            raise ServeError(f"window must be >= 1, got {self.window}")


@dataclass(frozen=True)
class PressureSample:
    """One batch window's raw pressure signals (all dimensionless after
    normalization except ``queue_delay_s``).

    ``slo_burn`` is the optional hint from an attached
    :class:`~repro.obs.slo.SLOEngine`
    (:meth:`~repro.obs.slo.SLOEngine.pressure_hint`): 0.5 while a WARN
    fires, 1.0 for a PAGE — a burning SLO is pressure even when the
    queue itself looks healthy."""

    queue_delay_s: float = 0.0
    miss_rate: float = 0.0
    saturation: float = 0.0
    slo_burn: float = 0.0


@dataclass(frozen=True)
class LevelTransition:
    """One recorded level change, for the drill's monotonicity checks."""

    at: float
    from_level: int
    to_level: int
    reason: str
    pressure: float


class _BrownoutMetrics:
    """Registry-backed ``repro_brownout_*`` families, labelled per
    front-end (families are shared; the registry deduplicates)."""

    def __init__(self) -> None:
        registry = get_registry()
        self.level = registry.gauge(
            "repro_brownout_level",
            "current overload level (0 = NORMAL, levels+1 = SHED)",
            labelnames=("frontend",),
        )
        self.pressure = registry.gauge(
            "repro_brownout_pressure",
            "last normalized pressure observation",
            labelnames=("frontend",),
        )
        self.transitions = registry.counter(
            "repro_brownout_transitions_total",
            "overload level transitions",
            labelnames=("frontend", "direction"),
        )
        self.shed = registry.counter(
            "repro_brownout_shed_total",
            "requests shed at admission while in SHED",
            labelnames=("frontend", "tenant"),
        )


class OverloadController:
    """The per-frontend hysteresis state machine over pressure samples.

    Levels are integers ``0..levels+1``: 0 is NORMAL, ``1..levels`` are
    the brownout rungs, ``levels+1`` is SHED.  :meth:`observe` moves the
    level at most one step per call, so transitions are monotone by
    construction — escalation on the first high-water reading, recovery
    only after a full cooldown of sustained low pressure per rung.

    Thread-safety: ``observe`` and the read properties may race between
    the dispatcher thread (observing) and submitter threads (checking
    ``is_shedding`` at admission); all state moves under one lock.

    Args:
        config: the state-machine knobs.
        label: front-end label stamped on metrics, spans and timeline
            entries.
        clock: monotonic time source (injectable for tests).
    """

    def __init__(
        self,
        config: Optional[OverloadConfig] = None,
        label: str = "frontend",
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.config = config if config is not None else OverloadConfig()
        self.label = label
        self._clock = clock
        self._lock = threading.Lock()
        self._level = 0
        self._below_since: Optional[float] = None
        self._transitions: Deque[LevelTransition] = deque(maxlen=4096)
        self._metrics = _BrownoutMetrics()
        self._metrics.level.labels(frontend=label).set(0)

    # -- state -----------------------------------------------------------------

    @property
    def level(self) -> int:
        return self._level

    @property
    def shed_level(self) -> int:
        return self.config.levels + 1

    @property
    def is_shedding(self) -> bool:
        return self._level >= self.shed_level

    @property
    def transitions(self) -> List[LevelTransition]:
        with self._lock:
            return list(self._transitions)

    def state_name(self, level: Optional[int] = None) -> str:
        level = self._level if level is None else level
        if level <= 0:
            return "NORMAL"
        if level >= self.shed_level:
            return "SHED"
        return f"BROWNOUT-{level}"

    # -- the control loop ------------------------------------------------------

    def pressure_of(self, sample: PressureSample) -> float:
        """Normalize one sample to a single scalar: the worst of queue
        delay (relative to target, capped), miss rate, saturation, and
        the SLO burn hint."""
        delay = min(
            sample.queue_delay_s / self.config.queue_delay_target_s,
            _PRESSURE_CAP,
        )
        return max(
            delay, sample.miss_rate, sample.saturation, sample.slo_burn
        )

    def observe(self, sample: PressureSample) -> int:
        """Feed one batch window's sample; returns the (possibly moved)
        level the next batch should serve at."""
        config = self.config
        pressure = self.pressure_of(sample)
        with self._lock:
            now = self._clock()
            level = self._level
            if pressure >= config.high_water:
                # Escalation is immediate: sustained pressure walks one
                # level per batch window.  Any high reading also voids
                # recovery credit already accrued.
                self._below_since = None
                if level < self.shed_level:
                    self._transition(level, level + 1, "pressure", pressure, now)
            elif pressure <= config.low_water and level > 0:
                if self._below_since is None:
                    self._below_since = now
                elif now - self._below_since >= config.cooldown_s:
                    self._transition(level, level - 1, "recovery", pressure, now)
                    # Each rung earns its own full cooldown: restart the
                    # timer so recovery is one step per cooldown period.
                    self._below_since = now
            else:
                # Inside the hysteresis band: hold the level, and require
                # a fresh full cooldown before the next recovery step.
                self._below_since = None
            self._metrics.pressure.labels(frontend=self.label).set(pressure)
            return self._level

    def _transition(
        self, from_level: int, to_level: int, reason: str, pressure: float,
        now: float,
    ) -> None:
        """Apply one level change (caller holds the lock)."""
        self._level = to_level
        self._transitions.append(
            LevelTransition(
                at=now,
                from_level=from_level,
                to_level=to_level,
                reason=reason,
                pressure=pressure,
            )
        )
        direction = "up" if to_level > from_level else "down"
        self._metrics.level.labels(frontend=self.label).set(to_level)
        self._metrics.transitions.labels(
            frontend=self.label, direction=direction
        ).inc()
        with obs_trace.span(
            "serve.brownout",
            frontend=self.label,
            from_state=self.state_name(from_level),
            to_state=self.state_name(to_level),
            reason=reason,
            pressure=round(pressure, 4),
        ):
            pass
        obs_timeline().brownout(
            frontend=self.label,
            from_level=from_level,
            to_level=to_level,
            state=self.state_name(to_level),
            reason=reason,
            pressure=pressure,
        )

    def record_shed(self, tenant: str) -> None:
        self._metrics.shed.labels(frontend=self.label, tenant=tenant).inc()


# ------------------------------------------------------- degradation ladder


def degraded_variant(
    session, level: int, levels: int, floor: float
) -> Optional[str]:
    """The variant-name override for serving ``session`` at a brownout
    level, or None to keep the session's own (monitored) choice.

    The quality bar interpolates from the session TOQ at level 0 down to
    the tenant's ``floor`` at level ``levels`` (deeper levels stay at the
    floor), and the override is the *fastest* calibrated, non-predicted
    variant whose training quality clears the bar — never a
    breaker-quarantined one.  When the session tunes under a variant
    registry whose knee point for the bar names a usable variant, that
    knee seeds the choice (fleet knowledge beats one session's ladder).

    Degradation never serves below the tenant floor: candidates are
    calibrated at or above the bar, and the bar never drops below the
    floor.  When nothing faster clears the bar the session keeps the
    tuner's choice, whose calibrated quality already clears the TOQ (and
    hence the floor — admission rejects tenants whose floor exceeds it).
    """
    if level <= 0:
        return None
    tuning = getattr(session, "tuning", None)
    if tuning is None:
        return None
    toq = session.toq
    floor = min(max(floor, 0.0), toq)
    step = min(level, levels)
    bar = toq - (toq - floor) * (step / float(levels))
    index = session.metrics.launches
    breaker = session.breaker

    candidates = [
        profile
        for profile in tuning.profiles
        if profile.variant is not None
        and not profile.predicted
        and profile.quality >= bar
        and not breaker.blocked(profile.name, index)
    ]
    if not candidates:
        return None
    pick = max(candidates, key=lambda profile: profile.speedup)
    registry = getattr(session, "registry", None)
    registry_key = getattr(session, "registry_key", None)
    if registry is not None and registry_key is not None:
        point = registry.knee_for(registry_key, bar)
        if point is not None:
            seeded = next(
                (p for p in candidates if p.name == point.variant), None
            )
            if seeded is not None:
                pick = seeded
    if pick.name == session.current_variant:
        return None
    return pick.name


# ---------------------------------------------------------------- drill


def _drill_app(name: str, seed: int) -> List[str]:
    """Saturation-drill one app; returns the list of contract violations
    (empty = pass)."""
    import copy

    from ..apps.registry import make_app
    from ..errors import BackpressureError
    from ..resilience.faults import (
        SITE_OVERLOAD,
        FaultPlan,
        FaultSpec,
        use_faults,
    )
    from .frontend import ServeFrontend
    from .session import ApproxSession

    problems: List[str] = []
    app = make_app(name, seed=seed)
    config = OverloadConfig(
        levels=3,
        high_water=0.75,
        low_water=0.25,
        cooldown_s=0.05,
        # The batching straggler window itself is queue delay; a target
        # well above it keeps fault-free pressure under the low-water
        # mark so recovery can actually complete.
        queue_delay_target_s=0.2,
        deadline_s=10.0,  # generous: the drill asserts *zero* misses
        window=8,
    )
    floors = {"gold": 0.88, "silver": 0.5, "bronze": 0.0}
    served: List[tuple] = []
    sheds: List[str] = []

    with ApproxSession(app, target_quality=0.9) as session, ServeFrontend(
        batch_window_s=0.02, max_batch=8, overload=config
    ) as frontend:
        controller = frontend.overload
        frontend.register_tenant(
            "gold", toq_floor=floors["gold"], priority=2, degradable=False
        )
        frontend.register_tenant("silver", toq_floor=floors["silver"], priority=1)
        frontend.register_tenant("bronze", toq_floor=floors["bronze"], priority=0)
        session.tune()
        inputs = app.generate_inputs(seed=app.seed)

        def round_once() -> None:
            pending = []
            for tenant in ("gold", "silver", "bronze"):
                try:
                    pending.append(
                        (
                            tenant,
                            frontend.submit_app(
                                session, copy.deepcopy(inputs), tenant=tenant
                            ),
                        )
                    )
                except BackpressureError:
                    sheds.append(tenant)
            for tenant, future in pending:
                out = future.result(timeout=120)
                served.append((tenant, app.evaluate(out, inputs)))

        # Ramp synthetic queue delay up through the seam: each pressure
        # observation consumes one spec firing, ascending toward 4x the
        # delay target, then the budget runs out and load subsides.
        target = config.queue_delay_target_s
        ramp = [
            FaultSpec(
                SITE_OVERLOAD, mode="hang", hang_seconds=target * scale,
                max_fires=fires,
            )
            for scale, fires in ((0.9, 2), (1.5, 2), (2.4, 2), (4.0, 12))
        ]
        with use_faults(FaultPlan(ramp, seed=seed)):
            rounds = 0
            while not controller.is_shedding and rounds < 40:
                round_once()
                rounds += 1
            shed_rounds = 0
            while controller.is_shedding and shed_rounds < 4:
                round_once()
                shed_rounds += 1
        recovery_rounds = 0
        while controller.level > 0 and recovery_rounds < 400:
            future = frontend.submit_app(
                session, copy.deepcopy(inputs), tenant="gold"
            )
            served.append(("gold", app.evaluate(future.result(timeout=120), inputs)))
            time.sleep(0.01)
            recovery_rounds += 1

        # -- the brownout contract
        for tenant, quality in served:
            if quality + 1e-9 < floors[tenant]:
                problems.append(
                    f"served {tenant} below its floor: "
                    f"{quality:.4f} < {floors[tenant]}"
                )
        for tenant in sheds:
            if tenant != "bronze":
                problems.append(f"shed non-lowest-priority tenant {tenant!r}")
        if not sheds:
            problems.append("SHED never rejected a bronze request")
        transitions = controller.transitions
        if not any(t.to_level >= controller.shed_level for t in transitions):
            problems.append("controller never reached SHED during the ramp")
        for t in transitions:
            if abs(t.to_level - t.from_level) != 1:
                problems.append(
                    f"non-monotone transition {t.from_level} -> {t.to_level}"
                )
        if controller.level != 0:
            problems.append(
                f"no recovery to NORMAL (stuck at {controller.state_name()})"
            )
        gauge = get_registry().gauge(
            "repro_brownout_level",
            "current overload level (0 = NORMAL, levels+1 = SHED)",
            labelnames=("frontend",),
        )
        if gauge.labels(frontend=controller.label).value != 0:
            problems.append("repro_brownout_level gauge did not return to 0")
        misses = frontend.deadline_misses()
        if misses:
            problems.append(f"deadline-miss cascade: {misses} miss(es)")
    return problems


def _drill(argv: Optional[List[str]] = None) -> int:
    """``python -m repro.serve.overload --drill``: the saturation drill."""
    import argparse

    from ..apps.registry import APP_CLASSES

    parser = argparse.ArgumentParser(
        prog="python -m repro.serve.overload",
        description="Saturation drill: ramp synthetic overload through a "
        "three-tenant brownout front-end for every benchmark app and "
        "assert the degrade-before-drop contract.",
    )
    parser.add_argument(
        "--drill", action="store_true", help="run the saturation drill"
    )
    parser.add_argument("apps", nargs="*", help="app names (default: all)")
    parser.add_argument("--seed", type=int, default=0, help="fault-plan seed")
    args = parser.parse_args(argv)
    if not args.drill:
        parser.error("nothing to do; pass --drill")

    names = args.apps or sorted(APP_CLASSES)
    failures = []
    for name in names:
        problems = _drill_app(name, args.seed)
        status = "ok " if not problems else "FAIL"
        print(f"[{status}] {name}" + ("" if not problems else f": {problems}"))
        if problems:
            failures.append(name)
    print(
        f"{len(names) - len(failures)}/{len(names)} apps pass the brownout "
        f"drill (seed {args.seed})"
    )
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover - exercised by CI job
    raise SystemExit(_drill())
