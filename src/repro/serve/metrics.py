"""Structured observability for approximation sessions.

A session records one :class:`LaunchRecord` per launch and rolls the
aggregate counters a deployment would scrape — launches served, sampled
quality checks, TOQ violations, recalibrations, cache traffic — into a
JSON-friendly snapshot.  Since the unified observability layer
(:mod:`repro.obs`) landed, the counters live in the process-wide metrics
registry under a per-session ``session=<label>`` label:
:meth:`SessionMetrics.snapshot` is a *view* over the registry, the same
store the Prometheus exposition reads, so the snapshot and the scrape
endpoint can never diverge.  The resilience section (guard counters,
fault counts, fallback depths, breaker states, guard policy) is
assembled in exactly one place — here — from sources the session binds
at construction.

An optional JSONL event log persists every event for offline analysis.
It predates the observability layer and is **superseded** by the
``REPRO_OBS=1`` / ``REPRO_OBS_TRACE`` trace stream (which adds spans and
trace correlation ids); it is kept for backward compatibility.  See
``docs/OBSERVABILITY.md`` for the migration notes.
"""

from __future__ import annotations

import itertools
import json
from collections import deque
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Deque, Dict, List, Optional

from ..obs.registry import get_registry
from ..obs.timeline import timeline as obs_timeline

_SESSION_IDS = itertools.count()


@dataclass
class LaunchRecord:
    """What one monitored launch did."""

    index: int
    variant: str
    knobs: Dict[str, object] = field(default_factory=dict)
    sampled: bool = False
    quality: Optional[float] = None
    speedup_estimate: float = 1.0
    kernel_launches: int = 0
    backends: Dict[str, int] = field(default_factory=dict)  # backend -> launches
    action: str = ""  # "", "recalibrate_down", "recalibrate_up", "quarantine"
    reason: str = ""  # "", "toq_violation", "drift", "headroom", "quarantine"
    served: str = ""  # ladder rung that produced the output ("" = primary)
    fallback_depth: int = 0  # 0 = primary attempt succeeded
    faults: List[str] = field(default_factory=list)  # "rung:site" per containment
    launch_id: int = -1  # session-monotonic correlation id
    trace_id: Optional[str] = None  # obs trace id (None while tracing is off)
    duration: float = 0.0  # wall seconds of the served launch


@dataclass
class Transition:
    """A variant change the recalibrator performed mid-stream."""

    launch: int
    from_variant: str
    to_variant: str
    reason: str
    quality: Optional[float] = None


class EventLog:
    """Append-only JSONL sink; one JSON object per line.

    Superseded by the :mod:`repro.obs` trace stream (``REPRO_OBS=1`` +
    ``REPRO_OBS_TRACE``), which carries the same launch events plus spans
    and correlation ids; kept for existing consumers.
    """

    def __init__(self, path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = self.path.open("a", encoding="utf-8")

    def emit(self, event: Dict[str, object]) -> None:
        self._fh.write(json.dumps(event, sort_keys=True) + "\n")
        self._fh.flush()

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()


class SessionMetrics:
    """Counters and recent history for one :class:`ApproxSession`.

    Scalar counters are registry series labelled with this session's
    ``label``; dict-shaped views (per-backend launches, fault counts,
    fallback depths) are registry families with an extra label dimension.
    History (recent launch records, transitions) stays in-process — it is
    bounded narrative, not a metric.
    """

    def __init__(
        self,
        history: int = 256,
        event_log: Optional[EventLog] = None,
        label: Optional[str] = None,
    ):
        self.label = label if label is not None else f"s{next(_SESSION_IDS)}"
        registry = get_registry()

        def counter(name: str, help: str):
            return registry.counter(
                f"repro_session_{name}", help, labelnames=("session",)
            ).labels(session=self.label)

        self._launches = counter("launches_total", "launches served")
        self._sampled = counter("sampled_checks_total", "sampled quality checks")
        self._toq_violations = counter("toq_violations_total", "TOQ violations")
        self._drift_events = counter("drift_events_total", "drift declarations")
        self._recal_down = counter(
            "recalibrations_down_total", "ladder steps toward exact"
        )
        self._recal_up = counter(
            "recalibrations_up_total", "ladder steps toward aggressive"
        )
        self._compile_hits = counter(
            "compile_cache_hits_total", "variant-cache hits"
        )
        self._compile_misses = counter(
            "compile_cache_misses_total", "variant-cache misses"
        )
        self._tune_hits = counter("tune_cache_hits_total", "tuning resumes")
        self._tune_misses = counter("tune_cache_misses_total", "tuning re-profiles")
        self._kernel_launches = counter(
            "kernel_launches_total", "kernel launches observed"
        )
        self._compile_seconds = counter(
            "compile_seconds", "wall time in session compiles"
        )
        self._tune_seconds = counter("tune_seconds", "wall time in session tunes")
        self._fallback_launches = counter(
            "fallback_launches_total", "launches served below the primary rung"
        )
        self._launch_errors = counter(
            "launch_errors_total",
            "launches that raised out of the fallback ladder",
        )
        self._quarantines = counter(
            "quarantines_total", "breaker transitions to open"
        )
        self._readmissions = counter(
            "readmissions_total", "breaker transitions back to closed"
        )
        self._backend_family = registry.counter(
            "repro_session_backend_launches_total",
            "kernel launches per backend",
            labelnames=("session", "backend"),
        )
        self._fault_family = registry.counter(
            "repro_session_faults_total",
            "contained faults per site",
            labelnames=("session", "fault"),
        )
        self._depth_family = registry.counter(
            "repro_session_fallback_depth_total",
            "launches per fallback depth",
            labelnames=("session", "depth"),
        )
        self._launch_seconds = registry.histogram(
            "repro_session_launch_seconds",
            "wall time of served launches",
            labelnames=("session",),
        ).labels(session=self.label)

        # Baselines of the process-wide codegen, shard and guard counters
        # at session start, so the snapshot attributes compiles/hits/
        # shards/containments to *this* session.
        from ..codegen import stats_snapshot as _codegen_stats
        from ..engine.fusion import stats_snapshot as _fusion_stats
        from ..parallel.shard import stats_snapshot as _shard_stats
        from ..resilience.guard import stats_snapshot as _guard_stats

        self._codegen_stats = _codegen_stats
        self._codegen_baseline = _codegen_stats()
        self._fusion_stats = _fusion_stats
        self._fusion_baseline = _fusion_stats()
        self._shard_stats = _shard_stats
        self._shard_baseline = _shard_stats()
        self._guard_stats = _guard_stats
        self._guard_baseline = _guard_stats()
        self.records: Deque[LaunchRecord] = deque(maxlen=history)
        self.transitions: List[Transition] = []
        self.event_log = event_log
        # Bound by the session so the parallel/resilience sections are
        # assembled in exactly one place (see bind_session_sources).
        self._breaker = None
        self._guard_policy = None
        self._profile_cache = None
        self._workers: Optional[int] = None
        # Correlation ids of the launch currently in flight.
        self._current_launch_id = -1
        self._current_trace_id: Optional[str] = None

    # -- wiring ---------------------------------------------------------------

    def bind_session_sources(
        self, breaker=None, guard_policy=None, profile_cache=None, workers=None
    ) -> None:
        """Attach the session-owned objects the snapshot reports on.

        Keeping the assembly here (rather than splitting it between this
        module and ``session.py``) means breaker states, guard policy and
        fault counters come from one code path and cannot diverge.
        """
        self._breaker = breaker
        self._guard_policy = guard_policy
        self._profile_cache = profile_cache
        self._workers = workers

    def begin_launch(self, launch_id: int, trace_id: Optional[str]) -> None:
        """Record the correlation ids of the launch now being served."""
        self._current_launch_id = launch_id
        self._current_trace_id = trace_id

    # -- recording -----------------------------------------------------------

    def record_launch(self, record: LaunchRecord) -> None:
        self._launches.inc()
        self._kernel_launches.inc(record.kernel_launches)
        for backend, count in record.backends.items():
            self._backend_family.labels(
                session=self.label, backend=backend
            ).inc(count)
        if record.sampled:
            self._sampled.inc()
        if record.reason == "toq_violation":
            self._toq_violations.inc()
        if record.reason == "drift":
            self._drift_events.inc()
        if record.action == "recalibrate_down":
            self._recal_down.inc()
        elif record.action == "recalibrate_up":
            self._recal_up.inc()
        for fault in record.faults:
            self._fault_family.labels(session=self.label, fault=fault).inc()
        self._depth_family.labels(
            session=self.label, depth=record.fallback_depth
        ).inc()
        if record.fallback_depth > 0:
            self._fallback_launches.inc()
        if record.duration:
            self._launch_seconds.observe(record.duration)
        self.records.append(record)
        self._emit({"event": "launch", **asdict(record)})

    def record_breaker_event(self, event: Dict[str, object]) -> None:
        """Roll up one circuit-breaker transition (drained from the
        session's :class:`~repro.resilience.breaker.VariantBreaker`)."""
        if event.get("state") == "open":
            self._quarantines.inc()
        elif event.get("state") == "closed":
            self._readmissions.inc()
        obs_timeline().breaker(
            session=self.label,
            launch_id=self._current_launch_id,
            trace_id=self._current_trace_id,
            variant=str(event.get("variant", "")),
            state=str(event.get("state", "")),
            reason=str(event.get("reason", "")),
        )
        self._emit(dict(event))

    def record_transition(self, transition: Transition) -> None:
        self.transitions.append(transition)
        obs_timeline().knob_change(
            session=self.label,
            launch_id=self._current_launch_id,
            trace_id=self._current_trace_id,
            from_variant=transition.from_variant,
            to_variant=transition.to_variant,
            reason=transition.reason,
            quality=transition.quality,
        )
        self._emit({"event": "transition", **asdict(transition)})

    def record_launch_error(self) -> None:
        """One launch that raised past every ladder rung — the error the
        caller actually saw, the numerator of an availability SLO."""
        self._launch_errors.inc()
        self._emit({"event": "launch_error"})

    def record_compile(self, cache: str, seconds: float) -> None:
        """``cache`` is "memory", "disk" or "miss"."""
        if cache == "miss":
            self._compile_misses.inc()
        else:
            self._compile_hits.inc()
        self._compile_seconds.inc(seconds)
        self._emit({"event": "compile", "cache": cache, "seconds": seconds})

    def record_tune(self, cache: str, seconds: float) -> None:
        if cache == "miss":
            self._tune_misses.inc()
        else:
            self._tune_hits.inc()
        self._tune_seconds.inc(seconds)
        self._emit({"event": "tune", "cache": cache, "seconds": seconds})

    def _emit(self, event: Dict[str, object]) -> None:
        if self.event_log is not None:
            self.event_log.emit(event)

    # -- registry views (legacy attribute API) --------------------------------

    @property
    def launches(self) -> int:
        return int(self._launches.value)

    @property
    def sampled_checks(self) -> int:
        return int(self._sampled.value)

    @property
    def toq_violations(self) -> int:
        return int(self._toq_violations.value)

    @property
    def drift_events(self) -> int:
        return int(self._drift_events.value)

    @property
    def recalibrations_down(self) -> int:
        return int(self._recal_down.value)

    @property
    def recalibrations_up(self) -> int:
        return int(self._recal_up.value)

    @property
    def compile_cache_hits(self) -> int:
        return int(self._compile_hits.value)

    @property
    def compile_cache_misses(self) -> int:
        return int(self._compile_misses.value)

    @property
    def tune_cache_hits(self) -> int:
        return int(self._tune_hits.value)

    @property
    def tune_cache_misses(self) -> int:
        return int(self._tune_misses.value)

    @property
    def kernel_launches(self) -> int:
        return int(self._kernel_launches.value)

    @property
    def compile_seconds(self) -> float:
        return self._compile_seconds.value

    @property
    def tune_seconds(self) -> float:
        return self._tune_seconds.value

    @property
    def fallback_launches(self) -> int:
        return int(self._fallback_launches.value)

    @property
    def launch_errors(self) -> int:
        return int(self._launch_errors.value)

    @property
    def quarantines(self) -> int:
        return int(self._quarantines.value)

    @property
    def readmissions(self) -> int:
        return int(self._readmissions.value)

    def _labelled_view(self, family, key: str) -> Dict[str, int]:
        return {
            labels[key]: int(child.value)
            for labels, child in family.series()
            if labels.get("session") == self.label and child.value
        }

    @property
    def backend_launches(self) -> Dict[str, int]:
        return self._labelled_view(self._backend_family, "backend")

    @property
    def fault_counts(self) -> Dict[str, int]:
        return self._labelled_view(self._fault_family, "fault")

    @property
    def fallback_depths(self) -> Dict[int, int]:
        return {
            int(depth): count
            for depth, count in self._labelled_view(
                self._depth_family, "depth"
            ).items()
        }

    # -- reporting -----------------------------------------------------------

    @property
    def sampling_overhead(self) -> float:
        """Fraction of launches that also paid an exact execution."""
        launches = self.launches
        return self.sampled_checks / launches if launches else 0.0

    def snapshot(self) -> dict:
        """The JSON-serialisable state a metrics endpoint would return.

        Every count is read from the metrics registry; the breaker and
        guard-policy sections come from the session-bound sources, so
        this method is the *single* assembly point for the whole view.
        """
        recent = list(self.records)[-16:]
        current = self._codegen_stats()
        codegen = {
            key: round(current[key] - self._codegen_baseline[key], 6)
            if isinstance(current[key], float)
            else current[key] - self._codegen_baseline[key]
            for key in current
        }
        fusion_now = self._fusion_stats()
        codegen["fusion"] = {
            key: fusion_now[key] - self._fusion_baseline[key] for key in fusion_now
        }
        shard_now = self._shard_stats()
        from ..parallel.pool import pools_snapshot as _pools

        parallel = {
            "shards": {
                key: shard_now[key] - self._shard_baseline[key]
                for key in shard_now
            },
            "pools": _pools(),
        }
        if self._workers is not None:
            parallel["workers"] = self._workers
        if self._profile_cache is not None:
            parallel["profile_cache"] = self._profile_cache.snapshot()
        guard_now = self._guard_stats()
        resilience = {
            "guard": {
                key: guard_now[key] - self._guard_baseline[key]
                for key in guard_now
            },
            "faults": dict(self.fault_counts),
            "fallback_depths": {
                str(depth): count
                for depth, count in sorted(self.fallback_depths.items())
            },
            "fallback_launches": self.fallback_launches,
            "quarantines": self.quarantines,
            "readmissions": self.readmissions,
        }
        if self._breaker is not None:
            resilience["breakers"] = self._breaker.snapshot()
        if self._guard_policy is not None:
            resilience["guard_policy"] = {
                "enabled": self._guard_policy.enabled,
                "retries": self._guard_policy.retries,
                "deadline_seconds": self._guard_policy.deadline_seconds,
            }
        return {
            "launches": self.launches,
            "launch_errors": self.launch_errors,
            "kernel_launches": self.kernel_launches,
            "backend_launches": dict(self.backend_launches),
            "codegen": codegen,
            "parallel": parallel,
            "resilience": resilience,
            "sampled_checks": self.sampled_checks,
            "sampling_overhead": self.sampling_overhead,
            "toq_violations": self.toq_violations,
            "drift_events": self.drift_events,
            "recalibrations": {
                "down": self.recalibrations_down,
                "up": self.recalibrations_up,
            },
            "cache": {
                "compile_hits": self.compile_cache_hits,
                "compile_misses": self.compile_cache_misses,
                "tune_hits": self.tune_cache_hits,
                "tune_misses": self.tune_cache_misses,
            },
            "timings": {
                "compile_seconds": self.compile_seconds,
                "tune_seconds": self.tune_seconds,
            },
            "transitions": [asdict(t) for t in self.transitions],
            "recent_launches": [asdict(r) for r in recent],
        }
