"""Structured observability for approximation sessions.

A session records one :class:`LaunchRecord` per launch and rolls the
aggregate counters a deployment would scrape — launches served, sampled
quality checks, TOQ violations, recalibrations, cache traffic — into a
JSON-friendly snapshot.  An optional JSONL event log persists every event
for offline analysis.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Deque, Dict, List, Optional


@dataclass
class LaunchRecord:
    """What one monitored launch did."""

    index: int
    variant: str
    knobs: Dict[str, object] = field(default_factory=dict)
    sampled: bool = False
    quality: Optional[float] = None
    speedup_estimate: float = 1.0
    kernel_launches: int = 0
    backends: Dict[str, int] = field(default_factory=dict)  # backend -> launches
    action: str = ""  # "", "recalibrate_down", "recalibrate_up", "quarantine"
    reason: str = ""  # "", "toq_violation", "drift", "headroom", "quarantine"
    served: str = ""  # ladder rung that produced the output ("" = primary)
    fallback_depth: int = 0  # 0 = primary attempt succeeded
    faults: List[str] = field(default_factory=list)  # "rung:site" per containment


@dataclass
class Transition:
    """A variant change the recalibrator performed mid-stream."""

    launch: int
    from_variant: str
    to_variant: str
    reason: str
    quality: Optional[float] = None


class EventLog:
    """Append-only JSONL sink; one JSON object per line."""

    def __init__(self, path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = self.path.open("a", encoding="utf-8")

    def emit(self, event: Dict[str, object]) -> None:
        self._fh.write(json.dumps(event, sort_keys=True) + "\n")
        self._fh.flush()

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()


class SessionMetrics:
    """Counters and recent history for one :class:`ApproxSession`."""

    def __init__(self, history: int = 256, event_log: Optional[EventLog] = None):
        self.launches = 0
        self.sampled_checks = 0
        self.toq_violations = 0
        self.drift_events = 0
        self.recalibrations_down = 0
        self.recalibrations_up = 0
        self.compile_cache_hits = 0
        self.compile_cache_misses = 0
        self.tune_cache_hits = 0
        self.tune_cache_misses = 0
        self.kernel_launches = 0
        self.backend_launches: Dict[str, int] = {}
        self.compile_seconds = 0.0
        self.tune_seconds = 0.0
        self.fault_counts: Dict[str, int] = {}
        self.fallback_depths: Dict[int, int] = {}
        self.fallback_launches = 0
        self.quarantines = 0
        self.readmissions = 0
        # Baselines of the process-wide codegen, shard and guard counters
        # at session start, so the snapshot attributes compiles/hits/
        # shards/containments to *this* session.
        from ..codegen import stats_snapshot as _codegen_stats
        from ..parallel.shard import stats_snapshot as _shard_stats
        from ..resilience.guard import stats_snapshot as _guard_stats

        self._codegen_stats = _codegen_stats
        self._codegen_baseline = _codegen_stats()
        self._shard_stats = _shard_stats
        self._shard_baseline = _shard_stats()
        self._guard_stats = _guard_stats
        self._guard_baseline = _guard_stats()
        self.records: Deque[LaunchRecord] = deque(maxlen=history)
        self.transitions: List[Transition] = []
        self.event_log = event_log

    # -- recording -----------------------------------------------------------

    def record_launch(self, record: LaunchRecord) -> None:
        self.launches += 1
        self.kernel_launches += record.kernel_launches
        for backend, count in record.backends.items():
            self.backend_launches[backend] = (
                self.backend_launches.get(backend, 0) + count
            )
        if record.sampled:
            self.sampled_checks += 1
        if record.reason == "toq_violation":
            self.toq_violations += 1
        if record.reason == "drift":
            self.drift_events += 1
        if record.action == "recalibrate_down":
            self.recalibrations_down += 1
        elif record.action == "recalibrate_up":
            self.recalibrations_up += 1
        for fault in record.faults:
            self.fault_counts[fault] = self.fault_counts.get(fault, 0) + 1
        self.fallback_depths[record.fallback_depth] = (
            self.fallback_depths.get(record.fallback_depth, 0) + 1
        )
        if record.fallback_depth > 0:
            self.fallback_launches += 1
        self.records.append(record)
        self._emit({"event": "launch", **asdict(record)})

    def record_breaker_event(self, event: Dict[str, object]) -> None:
        """Roll up one circuit-breaker transition (drained from the
        session's :class:`~repro.resilience.breaker.VariantBreaker`)."""
        if event.get("state") == "open":
            self.quarantines += 1
        elif event.get("state") == "closed":
            self.readmissions += 1
        self._emit(dict(event))

    def record_transition(self, transition: Transition) -> None:
        self.transitions.append(transition)
        self._emit({"event": "transition", **asdict(transition)})

    def record_compile(self, cache: str, seconds: float) -> None:
        """``cache`` is "memory", "disk" or "miss"."""
        if cache == "miss":
            self.compile_cache_misses += 1
        else:
            self.compile_cache_hits += 1
        self.compile_seconds += seconds
        self._emit({"event": "compile", "cache": cache, "seconds": seconds})

    def record_tune(self, cache: str, seconds: float) -> None:
        if cache == "miss":
            self.tune_cache_misses += 1
        else:
            self.tune_cache_hits += 1
        self.tune_seconds += seconds
        self._emit({"event": "tune", "cache": cache, "seconds": seconds})

    def _emit(self, event: Dict[str, object]) -> None:
        if self.event_log is not None:
            self.event_log.emit(event)

    # -- reporting -----------------------------------------------------------

    @property
    def sampling_overhead(self) -> float:
        """Fraction of launches that also paid an exact execution."""
        return self.sampled_checks / self.launches if self.launches else 0.0

    def snapshot(self) -> dict:
        """The JSON-serialisable state a metrics endpoint would return."""
        recent = list(self.records)[-16:]
        current = self._codegen_stats()
        codegen = {
            key: round(current[key] - self._codegen_baseline[key], 6)
            if isinstance(current[key], float)
            else current[key] - self._codegen_baseline[key]
            for key in current
        }
        shard_now = self._shard_stats()
        from ..parallel.pool import pools_snapshot as _pools

        parallel = {
            "shards": {
                key: shard_now[key] - self._shard_baseline[key]
                for key in shard_now
            },
            "pools": _pools(),
        }
        guard_now = self._guard_stats()
        resilience = {
            "guard": {
                key: guard_now[key] - self._guard_baseline[key]
                for key in guard_now
            },
            "faults": dict(self.fault_counts),
            "fallback_depths": {
                str(depth): count
                for depth, count in sorted(self.fallback_depths.items())
            },
            "fallback_launches": self.fallback_launches,
            "quarantines": self.quarantines,
            "readmissions": self.readmissions,
        }
        return {
            "launches": self.launches,
            "kernel_launches": self.kernel_launches,
            "backend_launches": dict(self.backend_launches),
            "codegen": codegen,
            "parallel": parallel,
            "resilience": resilience,
            "sampled_checks": self.sampled_checks,
            "sampling_overhead": self.sampling_overhead,
            "toq_violations": self.toq_violations,
            "drift_events": self.drift_events,
            "recalibrations": {
                "down": self.recalibrations_down,
                "up": self.recalibrations_up,
            },
            "cache": {
                "compile_hits": self.compile_cache_hits,
                "compile_misses": self.compile_cache_misses,
                "tune_hits": self.tune_cache_hits,
                "tune_misses": self.tune_cache_misses,
            },
            "timings": {
                "compile_seconds": self.compile_seconds,
                "tune_seconds": self.tune_seconds,
            },
            "transitions": [asdict(t) for t in self.transitions],
            "recent_launches": [asdict(r) for r in recent],
        }
