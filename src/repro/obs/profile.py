"""Sampling wall-clock profiler with span-context attribution.

Tracing (:mod:`repro.obs.trace`) answers *what ran and for how long*;
this module answers *where the time actually went inside it*.  A single
daemon timer thread wakes every ``interval_s``, snapshots every thread's
Python frames (``sys._current_frames()``) and the per-thread span stacks
the trace layer maintains, and attributes the sample twice over:

* **collapsed stacks** — ``span.a;span.b;mod.func;mod.func2 <count>``,
  the flamegraph.pl / speedscope collapsed format, with the active span
  chain as synthetic root frames so flames group by seam
  (``engine.launch``, ``codegen.compile``, ``shard.run``,
  ``tune.profile``, ``serve.batch`` …) before code;
* **seam aggregation** — per ``(seam, kernel, variant)`` self-time,
  read back with :meth:`SamplingProfiler.top` and the
  ``python -m repro.obs top`` subcommand: the profile the ROADMAP's
  tuning loop actually wants (which variant of which kernel burns the
  wall-clock).

The cost model is the sampler's, not the program's: threads pay nothing
between samples, and each sample is one frame walk per live thread.  At
the default 10ms interval the measured overhead stays within the
``benchmarks/test_obs_overhead.py`` 3% floor.

Enable programmatically (:func:`start`, :func:`stop`) or with
``REPRO_OBS_PROFILE=1`` in the environment (optionally
``REPRO_OBS_PROFILE_INTERVAL=<seconds>`` and
``REPRO_OBS_PROFILE_OUT=<path>`` to write the collapsed profile at
exit).  ``/debug/profile`` on the embedded HTTP endpoint serves the
live collapsed stacks of the active profiler.
"""

from __future__ import annotations

import os
import sys
import threading
from collections import defaultdict
from typing import Dict, List, Optional, Tuple

from .registry import get_registry
from . import trace as obs_trace

_TRUTHY = ("1", "true", "yes", "on")

DEFAULT_INTERVAL_S = 0.01

#: Span names treated as attribution seams, innermost match wins.  The
#: tuple mirrors the instrumented production seams (docs/OBSERVABILITY.md).
SEAMS = (
    "engine.launch",
    "codegen.compile",
    "shard.run",
    "tune.profile",
    "serve.batch",
    "serve.launch",
    "proc.launch",
    "guard.attempt",
)

_MAX_DEPTH = 64


def _frame_label(frame) -> str:
    code = frame.f_code
    module = os.path.splitext(os.path.basename(code.co_filename))[0]
    return f"{module}.{code.co_name}"


class SamplingProfiler:
    """The timer-thread sampler; one per process is the intended shape."""

    def __init__(
        self,
        interval_s: float = DEFAULT_INTERVAL_S,
        registry=None,
    ) -> None:
        self.interval_s = max(0.001, float(interval_s))
        self._lock = threading.Lock()
        self._stacks: Dict[Tuple[str, ...], int] = defaultdict(int)
        self._seams: Dict[Tuple[str, str, str], int] = defaultdict(int)
        self._samples = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        registry = registry if registry is not None else get_registry()
        self._samples_total = registry.counter(
            "repro_profile_samples_total", "profiler samples taken"
        )
        self._seam_family = registry.counter(
            "repro_profile_seam_samples_total",
            "profiler samples attributed per seam span",
            labelnames=("seam",),
        )

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "SamplingProfiler":
        if self._thread is not None:
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-obs-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        thread = self._thread
        if thread is None:
            return
        self._stop.set()
        thread.join(timeout=5.0)
        self._thread = None

    @property
    def running(self) -> bool:
        return self._thread is not None

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.stop()

    # -- sampling ------------------------------------------------------------

    def _run(self) -> None:
        own_ident = threading.get_ident()
        while not self._stop.wait(self.interval_s):
            self._sample(own_ident)

    def _sample(self, own_ident: int) -> None:
        frames = sys._current_frames()
        span_stacks = obs_trace.thread_stacks()
        # Prune stacks of threads that no longer exist, so long-lived
        # processes with thread churn don't grow the registry unboundedly.
        for ident in list(span_stacks):
            if ident not in frames:
                span_stacks.pop(ident, None)
        collected: List[Tuple[Tuple[str, ...], Tuple[str, str, str]]] = []
        for ident, frame in frames.items():
            if ident == own_ident:
                continue
            # Span context: copy under the GIL; a torn read misattributes
            # at worst one sample.
            spans = list(span_stacks.get(ident, ()))
            span_names = tuple(s.name for s in spans)
            seam_key = self._seam_of(spans)
            stack: List[str] = []
            depth = 0
            while frame is not None and depth < _MAX_DEPTH:
                stack.append(_frame_label(frame))
                frame = frame.f_back
                depth += 1
            stack.reverse()
            collected.append((span_names + tuple(stack), seam_key))
        with self._lock:
            self._samples += 1
            for stack_key, seam_key in collected:
                self._stacks[stack_key] += 1
                if seam_key is not None:
                    self._seams[seam_key] += 1
        self._samples_total.inc()
        for _stack_key, seam_key in collected:
            if seam_key is not None:
                self._seam_family.labels(seam=seam_key[0]).inc()

    @staticmethod
    def _seam_of(spans) -> Optional[Tuple[str, str, str]]:
        """(seam, kernel, variant) from the innermost seam span."""
        for span in reversed(spans):
            if span.name in SEAMS:
                attrs = span.attrs or {}
                kernel = str(
                    attrs.get("kernel")
                    or attrs.get("app")
                    or attrs.get("key")
                    or ""
                )
                variant = str(attrs.get("variant") or "")
                return (span.name, kernel, variant)
        return None

    # -- views ---------------------------------------------------------------

    def sample_count(self) -> int:
        with self._lock:
            return self._samples

    def collapsed_stacks(self) -> str:
        """The profile in collapsed-stack format, one ``frames count``
        line per distinct stack — flamegraph.pl / speedscope input."""
        with self._lock:
            items = sorted(self._stacks.items(), key=lambda kv: -kv[1])
        return "\n".join(
            ";".join(stack) + f" {count}" for stack, count in items
        ) + ("\n" if items else "")

    def top(self, limit: int = 20) -> List[dict]:
        """Per-(seam, kernel, variant) self-time, hottest first."""
        with self._lock:
            items = sorted(self._seams.items(), key=lambda kv: -kv[1])
        return [
            {
                "seam": seam,
                "kernel": kernel,
                "variant": variant,
                "samples": count,
                "seconds": count * self.interval_s,
            }
            for (seam, kernel, variant), count in items[:limit]
        ]

    def export_collapsed(self, path) -> str:
        text = self.collapsed_stacks()
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(text)
        return str(path)

    def reset(self) -> None:
        with self._lock:
            self._stacks.clear()
            self._seams.clear()
            self._samples = 0


# ----------------------------------------------------------- global state

_ACTIVE: Optional[SamplingProfiler] = None
_ACTIVE_LOCK = threading.Lock()


def active_profiler() -> Optional[SamplingProfiler]:
    return _ACTIVE


def start(
    interval_s: float = DEFAULT_INTERVAL_S, registry=None
) -> SamplingProfiler:
    """Start (or return) the process-wide sampling profiler."""
    global _ACTIVE
    with _ACTIVE_LOCK:
        if _ACTIVE is None:
            _ACTIVE = SamplingProfiler(interval_s, registry=registry)
        _ACTIVE.start()
        return _ACTIVE


def stop() -> Optional[SamplingProfiler]:
    """Stop the process-wide profiler; returns it (data intact)."""
    with _ACTIVE_LOCK:
        if _ACTIVE is not None:
            _ACTIVE.stop()
        return _ACTIVE


def _write_out_at_exit(path: str) -> None:
    profiler = _ACTIVE
    if profiler is None:
        return
    profiler.stop()
    try:
        profiler.export_collapsed(path)
    except OSError:
        pass


def _init_from_env() -> None:
    if os.environ.get("REPRO_OBS_PROFILE", "").lower() not in _TRUTHY:
        return
    interval = DEFAULT_INTERVAL_S
    raw = os.environ.get("REPRO_OBS_PROFILE_INTERVAL", "")
    if raw:
        try:
            interval = float(raw)
        except ValueError:
            interval = DEFAULT_INTERVAL_S
    start(interval)
    out = os.environ.get("REPRO_OBS_PROFILE_OUT")
    if out:
        import atexit

        atexit.register(_write_out_at_exit, out)


_init_from_env()
