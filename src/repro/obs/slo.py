"""Per-tenant SLOs with multi-window burn-rate alerting.

An :class:`SLOObjective` is a declarative statement of what a tenant was
promised — "99% of requests wait less than 100ms", "99.9% of sampled
launches meet the TOQ floor" — evaluated continuously against the live
metrics registry.  The four kinds map onto the serving stack's existing
instrumentation:

* ``latency`` — queue-wait compliance from a wait-time histogram
  (per-tenant: ``repro_frontend_tenant_wait_seconds``), interpolated
  against a threshold inside bucket bounds;
* ``deadline_miss_rate`` — deadline misses over admitted requests
  (``repro_frontend_tenant_deadline_misses_total`` /
  ``repro_frontend_requests_total``);
* ``quality`` — TOQ violations over sampled checks
  (``repro_session_toq_violations_total`` /
  ``repro_session_sampled_checks_total``);
* ``availability`` — admission rejects over offered load
  (``repro_frontend_rejects_total`` over requests + rejects).

Alerting follows the SRE burn-rate recipe: the *burn rate* is how fast
the error budget (``1 - target``) is being consumed — burn 1.0 spends
exactly the budget over the objective's period, burn 4.0 spends it four
times as fast.  An alert fires only when BOTH a fast window (reactive)
and a slow window (sustained) burn over the threshold, which suppresses
blips without missing real regressions.  States step OK → WARN → PAGE
one level per evaluation, and recover one level at a time only after
``clear_after_s`` of sustained sub-threshold burn — classic hysteresis,
the same discipline as the brownout controller's.

Transitions land in three places at once: the quality timeline
(``kind="slo"``), the metrics registry (``repro_slo_*`` families) and —
through :meth:`SLOEngine.state` — the ``/slo`` HTTP endpoint.  The
engine also offers :meth:`SLOEngine.pressure_hint`, an optional scalar
the overload controller may fold into its
:class:`~repro.serve.overload.PressureSample`: a paging SLO is pressure
even when queues look healthy.

``python -m repro.obs slo --drill`` runs :func:`run_drill`: a
deterministic fake-clock replay that injects a latency regression and
asserts WARN and PAGE fire at the exactly predicted evaluation ticks,
then recover with the expected hysteresis delays.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from collections import deque

from ..errors import ConfigError
from .registry import (
    HISTOGRAM,
    MetricsRegistry,
    get_registry,
    histogram_fraction_le,
)

# Alert levels, in escalation order.
OK = 0
WARN = 1
PAGE = 2

STATE_NAMES = ("OK", "WARN", "PAGE")

#: Comparison slack: burn thresholds are compared with this epsilon so a
#: burn that is *mathematically* exactly at threshold (the drill's
#: integer-ratio ticks) is never lost to float rounding.
_EPS = 1e-9

LATENCY = "latency"
DEADLINE_MISS_RATE = "deadline_miss_rate"
QUALITY = "quality"
AVAILABILITY = "availability"

KINDS = (LATENCY, DEADLINE_MISS_RATE, QUALITY, AVAILABILITY)


@dataclass(frozen=True)
class SLOObjective:
    """One declarative objective: a compliance target over a window pair.

    Attributes:
        name: unique id, stamped on metrics labels and timeline entries.
        kind: one of :data:`KINDS`.
        tenant: the tenant (or session) this objective covers, for
            display; the actual series selection is ``labels``.
        target: compliance target in (0, 1) — 0.99 means 1% error budget.
        threshold_s: latency kind only — the wait bound a request must
            meet to count as good.
        hist_metric: latency kind — the histogram family to read.
        bad_metric / total_metric: counter kinds — the families whose
            windowed deltas form the bad/total ratio.
        labels: ``((key, value), ...)`` series selector; every matching
            series is summed, so ``()`` aggregates a whole family.
        total_includes_bad: False when ``total_metric`` counts only good
            outcomes (availability: requests are *admitted* requests, so
            offered load is requests + rejects).
        fast_window_s / slow_window_s: the multi-window pair; both must
            burn over threshold for a transition.
        warn_burn / page_burn: burn-rate thresholds for WARN and PAGE.
        clear_after_s: sustained sub-threshold time before stepping one
            level back down.
    """

    name: str
    kind: str
    tenant: str = ""
    target: float = 0.99
    threshold_s: float = 0.1
    hist_metric: str = ""
    bad_metric: str = ""
    total_metric: str = ""
    labels: Tuple[Tuple[str, str], ...] = ()
    total_includes_bad: bool = True
    fast_window_s: float = 60.0
    slow_window_s: float = 300.0
    warn_burn: float = 1.0
    page_burn: float = 4.0
    clear_after_s: float = 120.0

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ConfigError(
                f"objective {self.name!r}: kind must be one of {KINDS}, "
                f"got {self.kind!r}"
            )
        if not 0.0 < self.target < 1.0:
            raise ConfigError(
                f"objective {self.name!r}: target must be in (0, 1), "
                f"got {self.target}"
            )
        if self.fast_window_s >= self.slow_window_s:
            raise ConfigError(
                f"objective {self.name!r}: fast window ({self.fast_window_s}s) "
                f"must be shorter than slow window ({self.slow_window_s}s)"
            )
        if self.warn_burn > self.page_burn:
            raise ConfigError(
                f"objective {self.name!r}: warn_burn ({self.warn_burn}) must "
                f"not exceed page_burn ({self.page_burn})"
            )

    @property
    def budget(self) -> float:
        """The error budget: the bad fraction the target tolerates."""
        return 1.0 - self.target

    # -- constructors per kind ----------------------------------------------

    @classmethod
    def latency(
        cls, name: str, tenant: str, threshold_s: float, target: float = 0.99,
        **overrides,
    ) -> "SLOObjective":
        """``target`` of requests wait at most ``threshold_s`` in queue."""
        return cls(
            name=name,
            kind=LATENCY,
            tenant=tenant,
            target=target,
            threshold_s=threshold_s,
            hist_metric="repro_frontend_tenant_wait_seconds",
            labels=(("tenant", tenant),),
            **overrides,
        )

    @classmethod
    def deadline_miss_rate(
        cls, name: str, tenant: str, target: float = 0.99, **overrides
    ) -> "SLOObjective":
        """At most ``1 - target`` of requests miss their deadline."""
        return cls(
            name=name,
            kind=DEADLINE_MISS_RATE,
            tenant=tenant,
            target=target,
            bad_metric="repro_frontend_tenant_deadline_misses_total",
            total_metric="repro_frontend_requests_total",
            labels=(("tenant", tenant),),
            **overrides,
        )

    @classmethod
    def quality(
        cls, name: str, session: str, target: float = 0.99, **overrides
    ) -> "SLOObjective":
        """At most ``1 - target`` of sampled checks violate the TOQ."""
        return cls(
            name=name,
            kind=QUALITY,
            tenant=session,
            target=target,
            bad_metric="repro_session_toq_violations_total",
            total_metric="repro_session_sampled_checks_total",
            labels=(("session", session),),
            **overrides,
        )

    @classmethod
    def availability(
        cls, name: str, target: float = 0.999, **overrides
    ) -> "SLOObjective":
        """At most ``1 - target`` of offered requests are rejected."""
        return cls(
            name=name,
            kind=AVAILABILITY,
            tenant="*",
            target=target,
            bad_metric="repro_frontend_rejects_total",
            total_metric="repro_frontend_requests_total",
            total_includes_bad=False,
            **overrides,
        )


@dataclass
class _Window:
    """Rolling (timestamp, cumulative-counts) samples for one objective."""

    entries: Deque[dict] = field(default_factory=deque)

    def append(self, entry: dict, horizon: float) -> None:
        self.entries.append(entry)
        # Keep the newest entry at or beyond the horizon as the slow
        # window's baseline; everything older is unreachable.
        while len(self.entries) >= 2 and self.entries[1]["t"] <= horizon:
            self.entries.popleft()

    def baseline(self, cutoff: float) -> Optional[dict]:
        """Newest entry observed at or before ``cutoff`` (the window
        start); falls back to the oldest entry while history is short."""
        chosen = None
        for entry in self.entries:
            if entry["t"] <= cutoff:
                chosen = entry
            else:
                break
        if chosen is None and self.entries:
            chosen = self.entries[0]
        return chosen


@dataclass
class _Alert:
    """Mutable alert state for one objective."""

    level: int = OK
    clear_since: Optional[float] = None
    burn_fast: float = 0.0
    burn_slow: float = 0.0
    last_evaluated: float = 0.0


class SLOEngine:
    """Evaluates objectives against the registry; owns the alert FSM.

    Thread-safe: the serving dispatcher calls :meth:`maybe_evaluate`
    between batches while the HTTP endpoint reads :meth:`state`.
    """

    def __init__(
        self,
        objectives: Tuple[SLOObjective, ...] = (),
        registry: Optional[MetricsRegistry] = None,
        clock=time.monotonic,
        min_interval_s: float = 1.0,
    ) -> None:
        self._registry = registry if registry is not None else get_registry()
        self._clock = clock
        self.min_interval_s = min_interval_s
        self._lock = threading.Lock()
        self._objectives: Dict[str, SLOObjective] = {}
        self._windows: Dict[str, _Window] = {}
        self._alerts: Dict[str, _Alert] = {}
        self._last_eval = 0.0
        self._state_gauge = self._registry.gauge(
            "repro_slo_state",
            "alert level per objective (0=OK, 1=WARN, 2=PAGE)",
            labelnames=("objective",),
        )
        self._burn_gauge = self._registry.gauge(
            "repro_slo_burn_rate",
            "error-budget burn rate per objective and window",
            labelnames=("objective", "window"),
        )
        self._transitions = self._registry.counter(
            "repro_slo_transitions_total",
            "alert state transitions per objective",
            labelnames=("objective", "to_state"),
        )
        self._evaluations = self._registry.counter(
            "repro_slo_evaluations_total", "SLO evaluation passes"
        )
        for objective in objectives:
            self.add(objective)

    def add(self, objective: SLOObjective) -> SLOObjective:
        with self._lock:
            if objective.name in self._objectives:
                raise ConfigError(
                    f"objective {objective.name!r} already registered"
                )
            self._objectives[objective.name] = objective
            self._windows[objective.name] = _Window()
            self._alerts[objective.name] = _Alert()
            self._state_gauge.labels(objective=objective.name).set(OK)
        return objective

    def objectives(self) -> List[SLOObjective]:
        with self._lock:
            return list(self._objectives.values())

    # -- sampling ------------------------------------------------------------

    def _sum_counter(self, metric_name: str, labels) -> float:
        metric = self._registry.get(metric_name)
        if metric is None:
            return 0.0
        selector = dict(labels)
        total = 0.0
        for series_labels, child in metric.series():
            if all(series_labels.get(k) == v for k, v in selector.items()):
                total += child.value
        return total

    def _sum_histogram(self, metric_name: str, labels):
        """(buckets, summed per-bucket counts) over matching series."""
        metric = self._registry.get(metric_name)
        if metric is None or metric.kind != HISTOGRAM:
            return None, None
        selector = dict(labels)
        buckets = None
        summed: Optional[List[int]] = None
        for series_labels, child in metric.series():
            if not all(series_labels.get(k) == v for k, v in selector.items()):
                continue
            b, counts, _sum, _count = child.raw_counts()
            if summed is None:
                buckets, summed = b, list(counts)
            else:
                for i, c in enumerate(counts):
                    summed[i] += c
        return buckets, summed

    def _observe(self, objective: SLOObjective, now: float) -> dict:
        """One cumulative sample of the objective's source series."""
        if objective.kind == LATENCY:
            buckets, counts = self._sum_histogram(
                objective.hist_metric, objective.labels
            )
            return {"t": now, "buckets": buckets, "counts": counts}
        bad = self._sum_counter(objective.bad_metric, objective.labels)
        total_labels = (
            objective.labels if objective.kind != AVAILABILITY else ()
        )
        total = self._sum_counter(objective.total_metric, total_labels)
        return {"t": now, "bad": bad, "total": total}

    def _window_burn(
        self, objective: SLOObjective, window: _Window, now: float,
        window_s: float,
    ) -> float:
        """Burn rate over the trailing ``window_s`` seconds."""
        if not window.entries:
            return 0.0
        newest = window.entries[-1]
        base = window.baseline(now - window_s)
        if base is None or base is newest:
            return 0.0
        if objective.kind == LATENCY:
            if newest["counts"] is None:
                return 0.0
            # A baseline sampled before the series first existed (engine
            # attached at construction, traffic arrived later) means zero
            # observed counts — not "no burn": treating it as unusable
            # would blind the objective for a whole slow window.
            base_counts = base["counts"]
            if base_counts is None:
                base_counts = [0] * len(newest["counts"])
            delta = [
                int(n) - int(b)
                for n, b in zip(newest["counts"], base_counts)
            ]
            total = sum(delta)
            if total <= 0:
                return 0.0
            good = histogram_fraction_le(
                newest["buckets"], delta, objective.threshold_s
            )
            bad_rate = 1.0 - good
        else:
            bad = newest["bad"] - base["bad"]
            total = newest["total"] - base["total"]
            if not objective.total_includes_bad:
                total += bad
            if total <= 0:
                return 0.0
            bad_rate = bad / total
        return max(0.0, bad_rate / objective.budget)

    # -- evaluation ----------------------------------------------------------

    def maybe_evaluate(self) -> None:
        """Rate-limited :meth:`evaluate` — safe to call on hot paths."""
        now = self._clock()
        if now - self._last_eval < self.min_interval_s:
            return
        self.evaluate(now)

    def evaluate(self, now: Optional[float] = None) -> None:
        """Sample every objective, update burns, step the alert FSMs."""
        from .timeline import timeline as obs_timeline

        if now is None:
            now = self._clock()
        transitions: List[tuple] = []
        with self._lock:
            self._last_eval = now
            self._evaluations.inc()
            for name, objective in self._objectives.items():
                window = self._windows[name]
                alert = self._alerts[name]
                window.append(
                    self._observe(objective, now),
                    now - objective.slow_window_s,
                )
                alert.burn_fast = self._window_burn(
                    objective, window, now, objective.fast_window_s
                )
                alert.burn_slow = self._window_burn(
                    objective, window, now, objective.slow_window_s
                )
                alert.last_evaluated = now
                self._burn_gauge.labels(objective=name, window="fast").set(
                    alert.burn_fast
                )
                self._burn_gauge.labels(objective=name, window="slow").set(
                    alert.burn_slow
                )
                transition = self._step(objective, alert, now)
                if transition is not None:
                    transitions.append(transition)
        # Timeline/metrics emission outside the lock: the sink and the
        # timeline take their own locks.
        for objective, alert, from_level, to_level, reason in transitions:
            self._transitions.labels(
                objective=objective.name, to_state=STATE_NAMES[to_level]
            ).inc()
            self._state_gauge.labels(objective=objective.name).set(to_level)
            obs_timeline().slo(
                objective=objective.name,
                tenant=objective.tenant,
                from_state=STATE_NAMES[from_level],
                to_state=STATE_NAMES[to_level],
                burn_fast=alert.burn_fast,
                burn_slow=alert.burn_slow,
                reason=reason,
            )

    def _step(
        self, objective: SLOObjective, alert: _Alert, now: float
    ) -> Optional[tuple]:
        """Advance one alert FSM by at most one level.  Called under lock."""
        fast, slow = alert.burn_fast, alert.burn_slow
        if (
            fast >= objective.page_burn - _EPS
            and slow >= objective.page_burn - _EPS
        ):
            want = PAGE
        elif (
            fast >= objective.warn_burn - _EPS
            and slow >= objective.warn_burn - _EPS
        ):
            want = WARN
        else:
            want = OK
        if want > alert.level:
            from_level = alert.level
            alert.level += 1  # one step per evaluation, like the brownout FSM
            alert.clear_since = None
            return (
                objective, alert, from_level, alert.level,
                f"burn fast={fast:.2f} slow={slow:.2f}",
            )
        if want < alert.level:
            if alert.clear_since is None:
                alert.clear_since = now
            elif now - alert.clear_since >= objective.clear_after_s:
                from_level = alert.level
                alert.level -= 1
                # Restart the hysteresis clock at the transition: a
                # further recovery step counts from here, one level per
                # clear_after_s — mirrored from the brownout controller.
                alert.clear_since = now
                return (
                    objective, alert, from_level, alert.level,
                    f"cleared for {objective.clear_after_s:.0f}s "
                    f"(burn fast={fast:.2f} slow={slow:.2f})",
                )
        else:
            alert.clear_since = None
        return None

    # -- views ---------------------------------------------------------------

    def pressure_hint(self) -> float:
        """A scalar the overload controller may fold into its pressure
        sample: 0.0 while every objective is OK, 0.5 with a WARN firing,
        1.0 with a PAGE — a paging SLO is saturation-equivalent even
        when the queue itself looks healthy."""
        with self._lock:
            worst = max(
                (alert.level for alert in self._alerts.values()), default=OK
            )
        return {OK: 0.0, WARN: 0.5, PAGE: 1.0}[worst]

    def alerts(self) -> Dict[str, str]:
        with self._lock:
            return {
                name: STATE_NAMES[alert.level]
                for name, alert in self._alerts.items()
            }

    def state(self) -> dict:
        """The JSON view the ``/slo`` endpoint serves."""
        with self._lock:
            objectives = []
            worst = OK
            for name, objective in self._objectives.items():
                alert = self._alerts[name]
                worst = max(worst, alert.level)
                objectives.append(
                    {
                        "name": name,
                        "kind": objective.kind,
                        "tenant": objective.tenant,
                        "target": objective.target,
                        "threshold_s": (
                            objective.threshold_s
                            if objective.kind == LATENCY
                            else None
                        ),
                        "state": STATE_NAMES[alert.level],
                        "burn_fast": round(alert.burn_fast, 4),
                        "burn_slow": round(alert.burn_slow, 4),
                        "windows": {
                            "fast_s": objective.fast_window_s,
                            "slow_s": objective.slow_window_s,
                        },
                        "thresholds": {
                            "warn_burn": objective.warn_burn,
                            "page_burn": objective.page_burn,
                            "clear_after_s": objective.clear_after_s,
                        },
                        "last_evaluated": alert.last_evaluated,
                    }
                )
        return {
            "objectives": objectives,
            "max_state": STATE_NAMES[worst],
            "pressure_hint": self.pressure_hint(),
        }


# ------------------------------------------------------------------- drill


def run_drill(verbose: bool = False, serve_http: bool = True) -> dict:
    """Deterministic burn-rate drill on a fake clock.

    Replays a synthetic latency history against a private registry:
    30 healthy evaluation ticks (10s apart, 100 requests each at 10ms),
    then a 12-tick regression in which 10% of requests wait 1s — ten
    times the 100ms threshold — then recovery.  With a 60s/300s window
    pair, warn burn 1, page burn 4 and a 1% budget the alert timeline is
    exactly predictable:

    * WARN at regression tick 3 (slow-window burn reaches 1.0; the fast
      window was already over from tick 1 — multi-window AND);
    * PAGE at regression tick 12 (slow-window burn reaches 4.0);
    * PAGE → WARN 16 ticks after the regression ends (the fast window
      clears at tick 4 of recovery, plus 120s = 12 ticks of hysteresis);
    * WARN → OK 12 hysteresis ticks later, at recovery tick 28.

    Asserts each transition fires at its predicted tick, that the
    transitions landed in the timeline and the ``repro_slo_*`` metrics,
    and (with ``serve_http``) that ``/slo`` reports the firing alert.
    Raises ``AssertionError`` with a diff on any miss; returns a report
    dict on success.
    """
    from . import trace as obs_trace
    from .timeline import SLO as SLO_KIND, timeline as obs_timeline

    tick_s = 10.0
    registry = MetricsRegistry()
    wait = registry.histogram(
        "repro_frontend_tenant_wait_seconds",
        "drill wait-time histogram",
        labelnames=("tenant",),
        buckets=(0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0),
    ).labels(tenant="drill")

    clock_now = [0.0]
    engine = SLOEngine(
        registry=registry, clock=lambda: clock_now[0], min_interval_s=0.0
    )
    engine.add(
        SLOObjective.latency(
            name="drill-latency",
            tenant="drill",
            threshold_s=0.1,
            target=0.99,
            fast_window_s=60.0,
            slow_window_s=300.0,
            warn_burn=1.0,
            page_burn=4.0,
            clear_after_s=120.0,
        )
    )

    was_enabled = obs_trace.enabled()
    if not was_enabled:
        obs_trace.enable()  # in-memory only: the drill asserts timeline entries
    timeline_before = len(obs_timeline().entries(kind=SLO_KIND))

    transitions: List[dict] = []
    page_state: Optional[dict] = None

    def observe_states(tick: int, phase: str) -> None:
        nonlocal page_state
        state = engine.alerts()["drill-latency"]
        if transitions and transitions[-1]["state"] == state:
            return
        if not transitions and state == "OK":
            transitions.append({"tick": tick, "phase": phase, "state": "OK"})
            return
        transitions.append({"tick": tick, "phase": phase, "state": state})
        if state == "PAGE":
            page_state = engine.state()

    def run_phase(phase: str, ticks: int, bad_per_tick: int) -> None:
        for tick in range(1, ticks + 1):
            clock_now[0] += tick_s
            for _ in range(100 - bad_per_tick):
                wait.observe(0.01)
            for _ in range(bad_per_tick):
                wait.observe(1.0)  # 10x the threshold: a latency regression
            engine.evaluate(clock_now[0])
            observe_states(tick, phase)
            if verbose:
                alert = engine._alerts["drill-latency"]
                print(
                    f"[{phase:10s}] tick {tick:3d} t={clock_now[0]:6.0f}s "
                    f"state={engine.alerts()['drill-latency']:4s} "
                    f"fast={alert.burn_fast:6.2f} slow={alert.burn_slow:6.2f}"
                )

    run_phase("healthy", 31, bad_per_tick=0)
    run_phase("regression", 12, bad_per_tick=10)
    run_phase("recovery", 30, bad_per_tick=0)

    expected = [
        {"tick": 1, "phase": "healthy", "state": "OK"},
        {"tick": 3, "phase": "regression", "state": "WARN"},
        {"tick": 12, "phase": "regression", "state": "PAGE"},
        {"tick": 16, "phase": "recovery", "state": "WARN"},
        {"tick": 28, "phase": "recovery", "state": "OK"},
    ]
    try:
        assert transitions == expected, (
            f"drill transitions diverged:\n  expected {expected}\n"
            f"  observed {transitions}"
        )
        assert page_state is not None, "PAGE never fired"
        firing = page_state["objectives"][0]
        assert firing["state"] == "PAGE" and page_state["max_state"] == "PAGE"

        snapshot = registry.snapshot()
        assert snapshot.get('repro_slo_state{objective=drill-latency}') == 0.0
        for to_state, count in (("WARN", 2), ("PAGE", 1), ("OK", 1)):
            key = (
                "repro_slo_transitions_total"
                f"{{objective=drill-latency,to_state={to_state}}}"
            )
            assert snapshot.get(key) == count, (
                f"{key}: expected {count}, got {snapshot.get(key)}"
            )

        slo_entries = obs_timeline().entries(kind=SLO_KIND)[timeline_before:]
        observed_timeline = [
            (e["from_state"], e["to_state"]) for e in slo_entries
        ]
        assert observed_timeline == [
            ("OK", "WARN"), ("WARN", "PAGE"), ("PAGE", "WARN"), ("WARN", "OK"),
        ], f"timeline slo entries diverged: {observed_timeline}"

        http_checked = False
        if serve_http:
            # The live surface must agree: serve this engine's /slo while
            # PAGE is (re-)firing and read the alert back over HTTP.
            import json as _json
            import urllib.request

            from .http import ObsHTTPServer

            run_phase("refire", 12, bad_per_tick=10)
            server = ObsHTTPServer(
                port=0, registry=registry, slo=engine
            )
            server.start()
            try:
                with urllib.request.urlopen(
                    f"http://127.0.0.1:{server.port}/slo", timeout=5
                ) as response:
                    served = _json.loads(response.read().decode("utf-8"))
            finally:
                server.stop()
            assert served["max_state"] == "PAGE", (
                f"/slo reports {served['max_state']}, expected PAGE"
            )
            http_checked = True
    finally:
        if not was_enabled:
            obs_trace.disable()

    return {
        "transitions": transitions,
        "timeline_entries": len(slo_entries),
        "http_checked": http_checked,
        "ok": True,
    }
