"""Structured tracing: lightweight spans with a thread-propagated context.

A *span* is one timed operation — a served launch, a ladder rung, a
codegen compile, one shard of a sharded launch — with an id, a parent id
and a trace id tying every span of one root operation together.  The
ambient span is tracked per thread; :func:`carry` captures it so work
submitted to the shard/profile pools parents to the launching span even
though it runs on a different thread (and even after a dead worker was
replaced, because the context rides with the *task*, not the thread).

Tracing is off by default and the disabled fast path is a single module
attribute check returning a shared no-op span — cheap enough to leave the
instrumentation permanently in the production seams.  Enable it with
``REPRO_OBS=1`` in the environment (optionally ``REPRO_OBS_TRACE=<path>``
for a JSONL trace file) or programmatically with :func:`enable`.

Records are JSON objects, one per line:

* ``{"type": "span", "name": ..., "trace_id": ..., "span_id": ...,
  "parent_id": ..., "start": ..., "duration": ..., "thread": ...,
  "status": "ok"|"error", "attrs": {...}, "events": [...]}``
* ``{"type": "event", "kind": ..., ...}`` — quality-timeline entries
  (:mod:`repro.obs.timeline`) share the stream so one file holds the
  whole story of a serving process.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from collections import deque
from typing import Callable, Deque, Dict, List, Optional

_TRUTHY = ("1", "true", "yes", "on")

#: Fast-path flag; read by :func:`span` before anything else happens.
_ENABLED = False

_IDS = itertools.count()
_TRACE_IDS = itertools.count()
_SEQ = itertools.count()
_FLUSH_EVERY = 64


#: Per-thread span stacks, readable from *other* threads.  ``_Context``
#: registers each thread's stack list here the first time the thread
#: touches the context (``threading.local.__init__`` runs once per
#: thread).  The sampling profiler (:mod:`repro.obs.profile`) walks this
#: to attribute samples to the span a thread is currently inside; the
#: lists are mutated without a lock, but list append/pop are atomic under
#: the GIL and the profiler only ever copies, so a torn read costs at
#: worst one misattributed sample.
_THREAD_STACKS: Dict[int, List["Span"]] = {}


class _Context(threading.local):
    def __init__(self) -> None:
        self.stack: List["Span"] = []
        _THREAD_STACKS[threading.get_ident()] = self.stack


_CONTEXT = _Context()


def thread_stacks() -> Dict[int, List["Span"]]:
    """Live per-thread span stacks (profiler use; treat as read-only)."""
    return _THREAD_STACKS


class _Sink:
    """Fan-in for finished spans and events: memory ring + optional JSONL."""

    def __init__(self, capacity: int = 65536) -> None:
        self._lock = threading.Lock()
        self.records: Deque[dict] = deque(maxlen=capacity)
        self._fh = None
        self._path: Optional[str] = None
        self._unflushed = 0
        self._bytes = 0
        self._max_bytes: Optional[int] = None

    def open(self, path, max_bytes: Optional[int] = None) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.close()
            self._path = str(path)
            self._fh = open(self._path, "a", encoding="utf-8")
            self._max_bytes = max_bytes
            try:
                self._bytes = os.path.getsize(self._path)
            except OSError:
                self._bytes = 0

    def _rotate_locked(self) -> None:
        """Roll the live file to ``<path>.1`` (single rollover: at most
        ``2 * max_bytes`` ever on disk for a long-lived serving process)."""
        self._fh.flush()
        self._fh.close()
        try:
            os.replace(self._path, self._path + ".1")
        except OSError:
            pass  # keep appending to the oversized file rather than lose data
        self._fh = open(self._path, "a", encoding="utf-8")
        self._bytes = 0
        self._unflushed = 0

    def emit(self, record: dict) -> None:
        with self._lock:
            self.records.append(record)
            if self._fh is not None:
                line = json.dumps(record, default=str) + "\n"
                if (
                    self._max_bytes is not None
                    and self._bytes + len(line) > self._max_bytes
                    and self._bytes > 0
                ):
                    self._rotate_locked()
                self._fh.write(line)
                self._bytes += len(line)
                self._unflushed += 1
                if self._unflushed >= _FLUSH_EVERY:
                    self._fh.flush()
                    self._unflushed = 0

    def flush(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.flush()
                self._unflushed = 0

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.flush()
                self._fh.close()
                self._fh = None
            self._path = None

    def drain(self) -> List[dict]:
        with self._lock:
            records = list(self.records)
            self.records.clear()
            return records


_SINK = _Sink()


class _NoopSpan:
    """The disabled-path span: every operation is a no-op."""

    __slots__ = ()
    trace_id: Optional[str] = None
    span_id: Optional[str] = None

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *_exc) -> bool:
        return False

    def set(self, **_attrs) -> "_NoopSpan":
        return self

    def event(self, _name: str, **_attrs) -> None:
        return None


NOOP_SPAN = _NoopSpan()


class Span:
    """One timed, attributed operation in a trace tree."""

    __slots__ = (
        "name", "trace_id", "span_id", "parent_id", "attrs", "events_",
        "start", "end", "status", "error", "thread", "seq",
    )

    def __init__(self, name: str, attrs: Dict[str, object]) -> None:
        parent = _CONTEXT.stack[-1] if _CONTEXT.stack else None
        self.name = name
        self.span_id = f"s{next(_IDS)}"
        if parent is not None:
            self.trace_id = parent.trace_id
            self.parent_id = parent.span_id
        else:
            self.trace_id = f"t{next(_TRACE_IDS)}"
            self.parent_id = None
        self.attrs = attrs
        self.events_: List[dict] = []
        self.status = "ok"
        self.error = ""
        self.thread = threading.current_thread().name
        self.seq = next(_SEQ)
        self.start = 0.0
        self.end = 0.0

    def set(self, **attrs) -> "Span":
        self.attrs.update(attrs)
        return self

    def event(self, name: str, **attrs) -> None:
        self.events_.append(
            {"name": name, "t": time.perf_counter(), **attrs}
        )

    def __enter__(self) -> "Span":
        _CONTEXT.stack.append(self)
        self.start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, _tb) -> bool:
        self.end = time.perf_counter()
        if exc is not None:
            self.status = "error"
            self.error = f"{exc_type.__name__}: {exc}"
        stack = _CONTEXT.stack
        if stack and stack[-1] is self:
            stack.pop()
        else:  # unbalanced exit (a bug upstream); drop self wherever it is
            try:
                stack.remove(self)
            except ValueError:
                pass
        _SINK.emit(self.to_record())
        return False

    def to_record(self) -> dict:
        return {
            "type": "span",
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "duration": self.end - self.start,
            "thread": self.thread,
            "seq": self.seq,
            "status": self.status,
            "error": self.error,
            "attrs": self.attrs,
            "events": self.events_,
        }


# ------------------------------------------------------------- public API


def span(name: str, **attrs):
    """Start a span (use as a context manager).

    With tracing disabled this returns a shared no-op object: the cost is
    one global read plus the call itself, which is what lets the
    instrumentation live permanently on hot serving paths.
    """
    if not _ENABLED:
        return NOOP_SPAN
    return Span(name, attrs)


def current_span() -> Optional[Span]:
    """The innermost live span on this thread (None outside any span)."""
    stack = _CONTEXT.stack
    return stack[-1] if stack else None


def carry(fn: Callable) -> Callable:
    """Bind the caller's span context into ``fn`` for another thread.

    Pool runners wrap task functions with this before submission: the
    wrapped function installs the captured span as the worker thread's
    ambient parent for the duration of the call, so spans started inside
    the task parent to the launching span.  With tracing disabled (or no
    ambient span) ``fn`` is returned unchanged.
    """
    if not _ENABLED:
        return fn
    parent = current_span()
    if parent is None:
        return fn

    def carried(*args, **kwargs):
        stack = _CONTEXT.stack
        stack.append(parent)
        try:
            return fn(*args, **kwargs)
        finally:
            if stack and stack[-1] is parent:
                stack.pop()
            else:
                try:
                    stack.remove(parent)
                except ValueError:
                    pass

    return carried


def emit_span(
    name: str,
    start: float,
    end: float,
    status: str = "ok",
    error: str = "",
    **attrs,
) -> None:
    """Record a span whose timing happened elsewhere (a worker process).

    Shard workers run in separate processes and cannot reach this sink;
    they report ``perf_counter`` timestamps back with their results
    (``CLOCK_MONOTONIC`` is shared across processes on Linux) and the
    parent emits the span here.  It parents to the caller's ambient span
    like a locally-timed one.  No-op while tracing is disabled.
    """
    if not _ENABLED:
        return
    parent = current_span()
    _SINK.emit(
        {
            "type": "span",
            "name": name,
            "trace_id": parent.trace_id if parent else f"t{next(_TRACE_IDS)}",
            "span_id": f"s{next(_IDS)}",
            "parent_id": parent.span_id if parent else None,
            "start": start,
            "duration": end - start,
            "thread": threading.current_thread().name,
            "seq": next(_SEQ),
            "status": status,
            "error": error,
            "attrs": attrs,
            "events": [],
        }
    )


def emit_event(record: dict) -> None:
    """Append one non-span record (timeline entry) to the trace stream."""
    if _ENABLED:
        _SINK.emit(record)


def enabled() -> bool:
    return _ENABLED


def enable(trace_path=None, max_mb: Optional[float] = None) -> None:
    """Turn tracing on (optionally writing a JSONL trace to ``trace_path``).

    ``max_mb`` caps the trace file: when an emit would push it past the
    cap it is rolled to ``<path>.1`` (replacing any previous rollover)
    and a fresh file is started, so long-lived serving sessions hold at
    most ~2x the cap on disk.  Also settable via ``REPRO_OBS_TRACE_MAX_MB``.
    """
    global _ENABLED
    if trace_path is not None:
        max_bytes = int(max_mb * 1024 * 1024) if max_mb else None
        _SINK.open(trace_path, max_bytes=max_bytes)
    _ENABLED = True


def disable() -> None:
    """Turn tracing off and flush/close any open trace file."""
    global _ENABLED
    _ENABLED = False
    _SINK.close()


def flush() -> None:
    """Flush the trace file (sessions call this on close)."""
    _SINK.flush()


def drain_records() -> List[dict]:
    """Remove and return the buffered records (tests and in-process views)."""
    return _SINK.drain()


def records() -> List[dict]:
    """The buffered records without draining them."""
    with _SINK._lock:
        return list(_SINK.records)


def trace_path() -> Optional[str]:
    return _SINK._path


def _init_from_env() -> None:
    if os.environ.get("REPRO_OBS", "").lower() in _TRUTHY:
        path = os.environ.get("REPRO_OBS_TRACE")
        max_mb: Optional[float] = None
        raw = os.environ.get("REPRO_OBS_TRACE_MAX_MB", "")
        if raw:
            try:
                max_mb = float(raw)
            except ValueError:
                max_mb = None
        enable(path if path else None, max_mb=max_mb)


_init_from_env()

import atexit  # noqa: E402  (registration belongs with the sink it guards)

atexit.register(_SINK.close)
