"""Embedded ops endpoint: scrape, health and SLO state over HTTP.

A serving process is only operable if its state can be *pulled* — a
Prometheus scraper, a load-balancer health check, an engineer with
``curl`` — without attaching a debugger.  :class:`ObsHTTPServer` is a
stdlib-only (``http.server``) daemon-threaded listener exposing:

* ``/metrics`` — the whole metrics registry in Prometheus text
  exposition format (:func:`repro.obs.export.render_prometheus`);
* ``/healthz`` — liveness: 200 while the process runs;
* ``/readyz`` — readiness: 503 once a drain began (the signal layer's
  SIGTERM handling) or the attached front-end closed, so load balancers
  stop routing before the listener disappears;
* ``/slo`` — the attached :class:`~repro.obs.slo.SLOEngine`'s alert and
  objective state as JSON;
* ``/debug/vars`` — the raw registry snapshot as JSON (expvar-style);
* ``/debug/profile`` — the sampling profiler's collapsed stacks, when
  one is running (:mod:`repro.obs.profile`).

Opt-in only: construct one explicitly, pass ``serve_http=`` to
:class:`~repro.serve.ServeFrontend`, or set ``REPRO_OBS_HTTP`` to a
port (or ``host:port``) in the environment.  The default bind host is
loopback — exposing the endpoint wider is a deliberate decision for the
operator, not a default.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

from ..errors import ConfigError
from .export import render_prometheus
from .registry import MetricsRegistry, get_registry

DEFAULT_HOST = "127.0.0.1"


def parse_http_spec(spec) -> Optional[tuple]:
    """Normalise a ``serve_http=`` / ``REPRO_OBS_HTTP`` value.

    Accepts ``True`` (ephemeral port), an integer port, ``"8080"``,
    ``"0.0.0.0:8080"`` or None/False/"" (disabled).  Returns
    ``(host, port)`` or None.
    """
    if spec is None or spec is False or spec == "":
        return None
    if spec is True:
        return (DEFAULT_HOST, 0)
    if isinstance(spec, int):
        return (DEFAULT_HOST, spec)
    text = str(spec).strip()
    host, _, port_text = text.rpartition(":")
    if not host:
        host = DEFAULT_HOST
    try:
        return (host, int(port_text))
    except ValueError:
        raise ConfigError(
            f"bad HTTP endpoint spec {spec!r}: expected a port or host:port"
        )


class _Handler(BaseHTTPRequestHandler):
    # Per-request log lines on stderr would swamp a serving process.
    def log_message(self, *_args) -> None:
        return None

    def _reply(
        self, status: int, body: str, content_type: str = "text/plain"
    ) -> None:
        payload = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", f"{content_type}; charset=utf-8")
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def _reply_json(self, status: int, obj) -> None:
        self._reply(
            status, json.dumps(obj, indent=2, default=str), "application/json"
        )

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        owner: "ObsHTTPServer" = self.server.obs  # type: ignore[attr-defined]
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        try:
            if path == "/metrics":
                self._reply(200, render_prometheus(owner.registry))
            elif path == "/healthz":
                self._reply(200, "ok\n")
            elif path == "/readyz":
                if owner.is_ready():
                    self._reply(200, "ready\n")
                else:
                    self._reply(503, "draining\n")
            elif path == "/slo":
                if owner.slo is not None:
                    self._reply_json(200, owner.slo.state())
                else:
                    self._reply_json(
                        200,
                        {
                            "objectives": [],
                            "max_state": "OK",
                            "pressure_hint": 0.0,
                        },
                    )
            elif path == "/debug/vars":
                self._reply_json(200, owner.registry.snapshot())
            elif path == "/debug/profile":
                stacks = owner.profile_stacks()
                if stacks is None:
                    self._reply(404, "no profiler running\n")
                else:
                    self._reply(200, stacks)
            elif path == "/":
                self._reply(
                    200,
                    "repro obs endpoint\n"
                    "/metrics /healthz /readyz /slo /debug/vars "
                    "/debug/profile\n",
                )
            else:
                self._reply(404, f"unknown path {path}\n")
        except BrokenPipeError:  # scraper went away mid-reply
            pass
        except Exception as exc:  # noqa: BLE001 - endpoint must not die
            try:
                self._reply(500, f"internal error: {exc}\n")
            except Exception:  # noqa: BLE001
                pass


class ObsHTTPServer:
    """The embedded endpoint: one daemon thread, loopback by default.

    Args:
        port: TCP port; 0 binds an ephemeral port (read it back from
            :attr:`port` after :meth:`start`).
        host: bind address, loopback unless deliberately widened.
        registry: metrics registry to serve (default: the global one).
        slo: optional :class:`~repro.obs.slo.SLOEngine` behind ``/slo``.
        frontend: optional :class:`~repro.serve.ServeFrontend` whose
            closed state feeds ``/readyz``.
        profiler: optional :class:`~repro.obs.profile.SamplingProfiler`
            behind ``/debug/profile`` (default: the active global one).
    """

    def __init__(
        self,
        port: int = 0,
        host: str = DEFAULT_HOST,
        registry: Optional[MetricsRegistry] = None,
        slo=None,
        frontend=None,
        profiler=None,
    ) -> None:
        self.registry = registry if registry is not None else get_registry()
        self.slo = slo
        self.frontend = frontend
        self.profiler = profiler
        self._host = host
        self._requested_port = port
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    @property
    def port(self) -> int:
        if self._httpd is None:
            return self._requested_port
        return self._httpd.server_address[1]

    def is_ready(self) -> bool:
        """Readiness: not draining, and any attached front-end is open."""
        from ..serve.signals import is_draining

        if is_draining():
            return False
        frontend = self.frontend
        if frontend is not None and getattr(frontend, "_closed", False):
            return False
        return True

    def profile_stacks(self) -> Optional[str]:
        profiler = self.profiler
        if profiler is None:
            from .profile import active_profiler

            profiler = active_profiler()
        if profiler is None:
            return None
        return profiler.collapsed_stacks()

    def start(self) -> "ObsHTTPServer":
        if self._httpd is not None:
            return self
        httpd = ThreadingHTTPServer(
            (self._host, self._requested_port), _Handler
        )
        httpd.daemon_threads = True
        httpd.obs = self  # type: ignore[attr-defined] - handler back-pointer
        self._httpd = httpd
        self._thread = threading.Thread(
            target=httpd.serve_forever,
            name="repro-obs-http",
            daemon=True,
            kwargs={"poll_interval": 0.1},
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        httpd, thread = self._httpd, self._thread
        self._httpd = self._thread = None
        if httpd is not None:
            httpd.shutdown()
            httpd.server_close()
        if thread is not None:
            thread.join(timeout=5.0)

    def __enter__(self) -> "ObsHTTPServer":
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.stop()


def server_from_env(**kwargs) -> Optional[ObsHTTPServer]:
    """Build (not start) a server from ``REPRO_OBS_HTTP``, if set."""
    import os

    spec = parse_http_spec(os.environ.get("REPRO_OBS_HTTP"))
    if spec is None:
        return None
    host, port = spec
    return ObsHTTPServer(port=port, host=host, **kwargs)
