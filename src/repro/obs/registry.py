"""Process-wide metrics registry: counters, gauges, histograms with labels.

Every subsystem registers its counters here instead of keeping private
dicts: the codegen cache, the shard runtime, the worker pools, the guard
and every serving session all increment registry metrics, and
``metrics_snapshot()`` (plus the Prometheus exposition in
:mod:`repro.obs.export`) are *views* over this one store — two callers
can never assemble diverging counts from parallel bookkeeping.

Naming follows the Prometheus conventions the exposition format expects:
``repro_<subsystem>_<what>[_total|_seconds]``, lowercase snake_case, with
dimensions expressed as labels (``pool="shard"``, ``session="s0"``)
rather than baked into names.  See ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, List, Optional, Tuple

from ..errors import ConfigError

COUNTER = "counter"
GAUGE = "gauge"
HISTOGRAM = "histogram"

#: Default histogram buckets: wall-times from 100us to 10s.
DEFAULT_BUCKETS = (
    0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0
)


def histogram_quantile(
    buckets: Tuple[float, ...], counts: List[int], q: float
) -> Optional[float]:
    """Estimate the ``q``-quantile of a bucketed histogram.

    ``counts`` is per-bucket (non-cumulative), one entry per bound plus a
    final +inf entry.  Linear interpolation inside the containing bucket,
    the Prometheus ``histogram_quantile`` convention: the first bucket
    interpolates from 0, and a quantile landing in the +inf bucket clamps
    to the largest finite bound (the estimate cannot exceed what the
    buckets resolve).  Returns None for an empty histogram.
    """
    if not 0.0 <= q <= 1.0:
        raise ConfigError(f"quantile must be in [0, 1], got {q}")
    total = sum(counts)
    if total == 0:
        return None
    rank = q * total
    cumulative = 0.0
    for i, bound in enumerate(buckets):
        in_bucket = counts[i]
        if cumulative + in_bucket >= rank and in_bucket > 0:
            lower = buckets[i - 1] if i > 0 else 0.0
            fraction = (rank - cumulative) / in_bucket
            return lower + fraction * (bound - lower)
        cumulative += in_bucket
    return buckets[-1] if buckets else None


def histogram_fraction_le(
    buckets: Tuple[float, ...], counts: List[int], bound: float
) -> float:
    """Fraction of observations at or below ``bound`` (interpolated).

    The SLO engine's latency-compliance estimate: per-bucket ``counts``
    (non-cumulative, +inf last) against a threshold that may fall inside
    a bucket.  Observations in the +inf bucket always count as above.
    Returns 1.0 for an empty histogram (no traffic = no violations).
    """
    total = sum(counts)
    if total == 0:
        return 1.0
    covered = 0.0
    for i, edge in enumerate(buckets):
        if edge <= bound:
            covered += counts[i]
            continue
        lower = buckets[i - 1] if i > 0 else 0.0
        if bound > lower:
            covered += counts[i] * (bound - lower) / (edge - lower)
        break
    return min(1.0, covered / total)


def _label_key(labelnames: Tuple[str, ...], labels: Dict[str, str]) -> Tuple[str, ...]:
    missing = [n for n in labelnames if n not in labels]
    extra = [n for n in labels if n not in labelnames]
    if missing or extra:
        raise ConfigError(
            f"metric labels mismatch (missing={missing}, unexpected={extra}; "
            f"declared {list(labelnames)})"
        )
    return tuple(str(labels[n]) for n in labelnames)


class Child:
    """One (metric, label-values) time series."""

    __slots__ = ("_lock", "_value", "kind", "_buckets", "_counts", "_sum", "_count")

    def __init__(self, kind: str, buckets: Optional[Tuple[float, ...]] = None):
        self._lock = threading.Lock()
        self.kind = kind
        self._value = 0.0
        if kind == HISTOGRAM:
            self._buckets = tuple(sorted(buckets or DEFAULT_BUCKETS))
            self._counts = [0] * (len(self._buckets) + 1)  # +inf bucket
            self._sum = 0.0
            self._count = 0

    # -- counters / gauges ---------------------------------------------------

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def max(self, value: float) -> None:
        """Ratchet: keep the largest value ever set (pool high-water marks)."""
        with self._lock:
            if value > self._value:
                self._value = float(value)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    # -- histograms ----------------------------------------------------------

    def observe(self, value: float) -> None:
        with self._lock:
            self._sum += value
            self._count += 1
            for i, bound in enumerate(self._buckets):
                if value <= bound:
                    self._counts[i] += 1
                    return
            self._counts[-1] += 1

    def raw_counts(self) -> Tuple[Tuple[float, ...], List[int], float, int]:
        """(buckets, per-bucket counts, sum, count) — non-cumulative,
        +inf bucket last.  The SLO engine diffs these across snapshots."""
        with self._lock:
            return self._buckets, list(self._counts), self._sum, self._count

    def quantile(self, q: float) -> Optional[float]:
        """Estimated ``q``-quantile over the full observation history
        (:func:`histogram_quantile`); None when nothing was observed."""
        buckets, counts, _sum, _count = self.raw_counts()
        return histogram_quantile(buckets, counts, q)

    def histogram_snapshot(self) -> Dict[str, object]:
        with self._lock:
            cumulative, running = [], 0
            for c in self._counts:
                running += c
                cumulative.append(running)
            return {
                "buckets": list(self._buckets),
                "counts": cumulative,  # cumulative, le-style
                "sum": self._sum,
                "count": self._count,
            }


class Metric:
    """A named metric family; label values select :class:`Child` series."""

    def __init__(
        self,
        name: str,
        kind: str,
        help: str = "",
        labelnames: Iterable[str] = (),
        buckets: Optional[Tuple[float, ...]] = None,
    ):
        self.name = name
        self.kind = kind
        self.help = help
        self.labelnames = tuple(labelnames)
        self._buckets = buckets
        self._children: Dict[Tuple[str, ...], Child] = {}
        self._lock = threading.Lock()

    def labels(self, **labels: object) -> Child:
        key = _label_key(self.labelnames, {k: str(v) for k, v in labels.items()})
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._children[key] = Child(self.kind, self._buckets)
            return child

    # Unlabelled families proxy to their single anonymous child.

    def _anonymous(self) -> Child:
        if self.labelnames:
            raise ConfigError(
                f"metric {self.name} has labels {self.labelnames}; "
                "use .labels(...)"
            )
        return self.labels()

    def inc(self, amount: float = 1.0) -> None:
        self._anonymous().inc(amount)

    def set(self, value: float) -> None:
        self._anonymous().set(value)

    def observe(self, value: float) -> None:
        self._anonymous().observe(value)

    def quantile(self, q: float) -> Optional[float]:
        return self._anonymous().quantile(q)

    @property
    def value(self) -> float:
        return self._anonymous().value

    def children(self) -> Dict[Tuple[str, ...], Child]:
        with self._lock:
            return dict(self._children)

    def series(self) -> List[Tuple[Dict[str, str], Child]]:
        """(labels dict, child) pairs, for exporters and registry views."""
        return [
            (dict(zip(self.labelnames, key)), child)
            for key, child in self.children().items()
        ]


class MetricsRegistry:
    """The process-wide metric store.

    ``counter``/``gauge``/``histogram`` are idempotent: re-registering an
    existing name returns the existing family (so module reload, repeated
    session construction and tests all share one series set), but
    re-registering under a different kind or label set is a bug and
    raises.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}
        self._lock = threading.Lock()

    def _register(
        self,
        name: str,
        kind: str,
        help: str,
        labelnames: Iterable[str],
        buckets: Optional[Tuple[float, ...]] = None,
    ) -> Metric:
        labelnames = tuple(labelnames)
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if existing.kind != kind or existing.labelnames != labelnames:
                    raise ConfigError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}{existing.labelnames}, cannot "
                        f"re-register as {kind}{labelnames}"
                    )
                return existing
            metric = Metric(name, kind, help, labelnames, buckets)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "", labelnames=()) -> Metric:
        return self._register(name, COUNTER, help, labelnames)

    def gauge(self, name: str, help: str = "", labelnames=()) -> Metric:
        return self._register(name, GAUGE, help, labelnames)

    def histogram(
        self, name: str, help: str = "", labelnames=(), buckets=None
    ) -> Metric:
        return self._register(name, HISTOGRAM, help, labelnames, buckets)

    def get(self, name: str) -> Optional[Metric]:
        with self._lock:
            return self._metrics.get(name)

    def collect(self) -> List[Metric]:
        with self._lock:
            return [self._metrics[name] for name in sorted(self._metrics)]

    def snapshot(self) -> Dict[str, object]:
        """Every series as a flat JSON-friendly dict (debugging/tests)."""
        out: Dict[str, object] = {}
        for metric in self.collect():
            for labels, child in metric.series():
                suffix = (
                    "{" + ",".join(f"{k}={v}" for k, v in sorted(labels.items())) + "}"
                    if labels
                    else ""
                )
                if metric.kind == HISTOGRAM:
                    out[metric.name + suffix] = child.histogram_snapshot()
                else:
                    out[metric.name + suffix] = child.value
        return out


#: The default registry every subsystem registers into.
REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    return REGISTRY
