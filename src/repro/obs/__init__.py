"""Unified observability: metrics registry, structured tracing, timelines.

The layer has three legs, all near-zero-cost while disabled:

* :mod:`repro.obs.registry` — the process-wide metrics registry every
  subsystem (codegen, sharding, pools, guard, sessions) registers its
  counters into; ``metrics_snapshot()`` and the Prometheus exposition are
  views over this one store.
* :mod:`repro.obs.trace` — structured spans with ids, parents and
  wall-times, thread-propagated context (including across the shard and
  profile pools), exported as JSONL.  Enable with ``REPRO_OBS=1`` and
  point ``REPRO_OBS_TRACE`` at a file to persist the stream.
* :mod:`repro.obs.timeline` — the quality-drift timeline: every quality
  sample, TOQ violation, drift event, knob change, breaker transition and
  SLO alert, correlated to launches by ``launch_id`` and ``trace_id``.

On top of the legs sit the live-ops surfaces:

* :mod:`repro.obs.slo` — declarative per-tenant SLO objectives with
  multi-window burn-rate alerting (OK → WARN → PAGE with hysteresis);
* :mod:`repro.obs.http` — the embedded stdlib HTTP endpoint
  (``/metrics``, ``/healthz``, ``/readyz``, ``/slo``, ``/debug/vars``,
  ``/debug/profile``), opt-in via ``ServeFrontend(serve_http=...)`` or
  ``REPRO_OBS_HTTP``;
* :mod:`repro.obs.profile` — the sampling wall-clock profiler with
  span-context attribution and collapsed-stack flamegraph export,
  enabled with ``REPRO_OBS_PROFILE=1``.

``python -m repro.obs summarize <trace.jsonl>`` renders a trace file:
top spans by time, fallback-depth breakdown, the quality-vs-speedup
timeline and per-launch span trees.  ``flame``/``top`` render collapsed
profiles, ``slo --drill`` replays the deterministic burn-rate drill.
See ``docs/OBSERVABILITY.md``.
"""

from .export import (
    build_trees,
    load_collapsed,
    load_trace,
    quantile_table,
    render_flame,
    render_prometheus,
    render_top,
    render_tree,
    summarize,
)
from .http import ObsHTTPServer
from .profile import SamplingProfiler, active_profiler
from .registry import (
    MetricsRegistry,
    REGISTRY,
    get_registry,
    histogram_fraction_le,
    histogram_quantile,
)
from .slo import SLOEngine, SLOObjective
from .timeline import QualityTimeline, timeline
from .trace import (
    NOOP_SPAN,
    Span,
    carry,
    current_span,
    disable,
    drain_records,
    emit_event,
    enable,
    enabled,
    flush,
    records,
    span,
    trace_path,
)

__all__ = [
    "MetricsRegistry",
    "REGISTRY",
    "get_registry",
    "histogram_quantile",
    "histogram_fraction_le",
    "SLOEngine",
    "SLOObjective",
    "ObsHTTPServer",
    "SamplingProfiler",
    "active_profiler",
    "QualityTimeline",
    "timeline",
    "Span",
    "NOOP_SPAN",
    "span",
    "current_span",
    "carry",
    "enable",
    "disable",
    "enabled",
    "flush",
    "records",
    "drain_records",
    "emit_event",
    "trace_path",
    "render_prometheus",
    "quantile_table",
    "load_trace",
    "load_collapsed",
    "render_flame",
    "render_top",
    "build_trees",
    "render_tree",
    "summarize",
]
