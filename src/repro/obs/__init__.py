"""Unified observability: metrics registry, structured tracing, timelines.

The layer has three legs, all near-zero-cost while disabled:

* :mod:`repro.obs.registry` — the process-wide metrics registry every
  subsystem (codegen, sharding, pools, guard, sessions) registers its
  counters into; ``metrics_snapshot()`` and the Prometheus exposition are
  views over this one store.
* :mod:`repro.obs.trace` — structured spans with ids, parents and
  wall-times, thread-propagated context (including across the shard and
  profile pools), exported as JSONL.  Enable with ``REPRO_OBS=1`` and
  point ``REPRO_OBS_TRACE`` at a file to persist the stream.
* :mod:`repro.obs.timeline` — the quality-drift timeline: every quality
  sample, TOQ violation, drift event, knob change and breaker transition,
  correlated to launches by ``launch_id`` and ``trace_id``.

``python -m repro.obs summarize <trace.jsonl>`` renders a trace file:
top spans by time, fallback-depth breakdown, the quality-vs-speedup
timeline and per-launch span trees.  See ``docs/OBSERVABILITY.md``.
"""

from .export import build_trees, load_trace, render_prometheus, render_tree, summarize
from .registry import MetricsRegistry, REGISTRY, get_registry
from .timeline import QualityTimeline, timeline
from .trace import (
    NOOP_SPAN,
    Span,
    carry,
    current_span,
    disable,
    drain_records,
    emit_event,
    enable,
    enabled,
    flush,
    records,
    span,
    trace_path,
)

__all__ = [
    "MetricsRegistry",
    "REGISTRY",
    "get_registry",
    "QualityTimeline",
    "timeline",
    "Span",
    "NOOP_SPAN",
    "span",
    "current_span",
    "carry",
    "enable",
    "disable",
    "enabled",
    "flush",
    "records",
    "drain_records",
    "emit_event",
    "trace_path",
    "render_prometheus",
    "load_trace",
    "build_trees",
    "render_tree",
    "summarize",
]
