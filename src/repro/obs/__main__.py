"""CLI for offline trace analysis: ``python -m repro.obs <command>``.

Commands:

* ``summarize <trace.jsonl> [--trees N]`` — the full report: top spans
  by total time, fallback-depth breakdown, the quality-vs-speedup
  timeline and the span tree(s) of the most recent N traces.
* ``tree <trace.jsonl> [--trace ID]`` — just the span trees (all traces,
  or one).
* ``metrics`` — the current process's registry in Prometheus text
  format (mostly useful under ``python -m`` with ``-i`` or from tests;
  a fresh process has only just-registered series).
"""

from __future__ import annotations

import argparse
import sys

from .export import build_trees, load_trace, render_prometheus, render_tree, summarize


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs", description=__doc__
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_sum = sub.add_parser("summarize", help="summarize a JSONL trace file")
    p_sum.add_argument("trace", help="path to the JSONL trace file")
    p_sum.add_argument(
        "--trees", type=int, default=1,
        help="span trees to render for the most recent traces (default 1)",
    )

    p_tree = sub.add_parser("tree", help="render span trees from a trace file")
    p_tree.add_argument("trace", help="path to the JSONL trace file")
    p_tree.add_argument("--trace-id", default=None, help="render one trace only")

    sub.add_parser("metrics", help="print the registry in Prometheus format")

    args = parser.parse_args(argv)
    if args.command == "summarize":
        print(summarize(args.trace, trees=args.trees))
    elif args.command == "tree":
        spans, _events = load_trace(args.trace)
        forest = build_trees(spans)
        if args.trace_id is not None:
            forest = {k: v for k, v in forest.items() if k == args.trace_id}
            if not forest:
                print(f"no trace {args.trace_id!r} in {args.trace}", file=sys.stderr)
                return 1
        for trace_id, roots in sorted(forest.items()):
            print(f"-- {trace_id}")
            print("\n".join(render_tree(roots)))
    elif args.command == "metrics":
        sys.stdout.write(render_prometheus())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
