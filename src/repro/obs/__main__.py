"""CLI for offline trace analysis: ``python -m repro.obs <command>``.

Commands:

* ``summarize <trace.jsonl> [--trees N]`` — the full report: top spans
  by total time, fallback-depth breakdown, the quality-vs-speedup
  timeline (including SLO alert transitions) and the span tree(s) of
  the most recent N traces.
* ``tree <trace.jsonl> [--trace ID]`` — just the span trees (all traces,
  or one).
* ``metrics`` — the current process's registry in Prometheus text
  format, followed by ``# ``-commented p50/p95/p99 estimates per
  histogram series (mostly useful under ``python -m`` with ``-i`` or
  from tests; a fresh process has only just-registered series).
* ``flame <profile.collapsed> [--min-percent P]`` — a text flamegraph
  from the sampling profiler's collapsed-stack output
  (``REPRO_OBS_PROFILE_OUT``, or ``/debug/profile`` saved to a file).
* ``top <profile.collapsed> [--limit N]`` — self-time ranking of the
  hottest frames in a collapsed profile.
* ``slo --drill [--verbose]`` — the deterministic burn-rate drill:
  inject a latency regression on a fake clock and assert WARN/PAGE fire
  and recover at the exactly predicted evaluation ticks.
"""

from __future__ import annotations

import argparse
import sys

from .export import (
    build_trees,
    load_collapsed,
    load_trace,
    quantile_table,
    render_flame,
    render_prometheus,
    render_top,
    render_tree,
    summarize,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs", description=__doc__
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_sum = sub.add_parser("summarize", help="summarize a JSONL trace file")
    p_sum.add_argument("trace", help="path to the JSONL trace file")
    p_sum.add_argument(
        "--trees", type=int, default=1,
        help="span trees to render for the most recent traces (default 1)",
    )

    p_tree = sub.add_parser("tree", help="render span trees from a trace file")
    p_tree.add_argument("trace", help="path to the JSONL trace file")
    p_tree.add_argument("--trace-id", default=None, help="render one trace only")

    sub.add_parser(
        "metrics",
        help="print the registry in Prometheus format with quantile columns",
    )

    p_flame = sub.add_parser(
        "flame", help="render a text flamegraph from a collapsed profile"
    )
    p_flame.add_argument("profile", help="path to a collapsed-stack file")
    p_flame.add_argument(
        "--min-percent", type=float, default=0.5,
        help="fold branches below this percent of samples (default 0.5)",
    )

    p_top = sub.add_parser(
        "top", help="self-time ranking from a collapsed profile"
    )
    p_top.add_argument("profile", help="path to a collapsed-stack file")
    p_top.add_argument(
        "--limit", type=int, default=20, help="rows to show (default 20)"
    )

    p_slo = sub.add_parser("slo", help="SLO tooling (the burn-rate drill)")
    p_slo.add_argument(
        "--drill", action="store_true",
        help="run the deterministic burn-rate drill",
    )
    p_slo.add_argument(
        "--verbose", action="store_true",
        help="print every drill evaluation tick",
    )
    p_slo.add_argument(
        "--no-http", action="store_true",
        help="skip the /slo endpoint check at the end of the drill",
    )

    args = parser.parse_args(argv)
    if args.command == "summarize":
        print(summarize(args.trace, trees=args.trees))
    elif args.command == "tree":
        spans, _events = load_trace(args.trace)
        forest = build_trees(spans)
        if args.trace_id is not None:
            forest = {k: v for k, v in forest.items() if k == args.trace_id}
            if not forest:
                print(f"no trace {args.trace_id!r} in {args.trace}", file=sys.stderr)
                return 1
        for trace_id, roots in sorted(forest.items()):
            print(f"-- {trace_id}")
            print("\n".join(render_tree(roots)))
    elif args.command == "metrics":
        sys.stdout.write(render_prometheus())
        sys.stdout.write(quantile_table())
    elif args.command == "flame":
        sys.stdout.write(
            render_flame(
                load_collapsed(args.profile), min_percent=args.min_percent
            )
        )
    elif args.command == "top":
        sys.stdout.write(render_top(load_collapsed(args.profile), args.limit))
    elif args.command == "slo":
        if not args.drill:
            parser.error("nothing to do; pass --drill")
        from .slo import run_drill

        try:
            report = run_drill(
                verbose=args.verbose, serve_http=not args.no_http
            )
        except AssertionError as exc:
            print(f"DRILL FAILED: {exc}", file=sys.stderr)
            return 1
        print("SLO drill passed:")
        for transition in report["transitions"]:
            print(
                f"  {transition['phase']:>10} tick {transition['tick']:>3}: "
                f"-> {transition['state']}"
            )
        print(
            f"  {report['timeline_entries']} timeline transitions, "
            f"/slo endpoint checked: {report['http_checked']}"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
