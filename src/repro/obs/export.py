"""Exporters: Prometheus text exposition, trace and profile analysis.

Three consumers are served here:

* a scrape endpoint — :func:`render_prometheus` renders every metric in
  the registry in the Prometheus text exposition format (versioned
  ``# HELP``/``# TYPE`` headers, label sets, ``_bucket``/``_sum``/
  ``_count`` expansion for histograms); :func:`quantile_table` adds the
  estimated p50/p95/p99 per histogram series as comment lines (the
  output stays valid exposition format);
* offline trace analysis — :func:`load_trace`, :func:`build_trees` and
  :func:`summarize` parse the JSONL stream written under ``REPRO_OBS=1``
  and power the ``python -m repro.obs`` CLI;
* profile analysis — :func:`load_collapsed`, :func:`render_flame` and
  :func:`render_top` read the sampling profiler's collapsed-stack
  output (``REPRO_OBS_PROFILE_OUT``) for ``flame``/``top``.
"""

from __future__ import annotations

import json
from collections import defaultdict
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from .registry import (
    HISTOGRAM,
    MetricsRegistry,
    get_registry,
    histogram_quantile,
)

# ----------------------------------------------------------- prometheus


def _fmt_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{k}="{str(v).replace(chr(92), chr(92) * 2).replace(chr(34), chr(92) + chr(34))}"'
        for k, v in sorted(labels.items())
    )
    return "{" + inner + "}"


def _fmt_value(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return repr(float(value))


def render_prometheus(registry: Optional[MetricsRegistry] = None) -> str:
    """The whole registry in Prometheus text exposition format."""
    registry = registry or get_registry()
    lines: List[str] = []
    for metric in registry.collect():
        if metric.help:
            lines.append(f"# HELP {metric.name} {metric.help}")
        lines.append(f"# TYPE {metric.name} {metric.kind}")
        for labels, child in sorted(
            metric.series(), key=lambda pair: sorted(pair[0].items())
        ):
            if metric.kind == HISTOGRAM:
                snap = child.histogram_snapshot()
                for bound, count in zip(snap["buckets"], snap["counts"]):
                    bucket_labels = dict(labels, le=_fmt_value(bound))
                    lines.append(
                        f"{metric.name}_bucket{_fmt_labels(bucket_labels)} {count}"
                    )
                inf_labels = dict(labels, le="+Inf")
                lines.append(
                    f"{metric.name}_bucket{_fmt_labels(inf_labels)} {snap['count']}"
                )
                lines.append(
                    f"{metric.name}_sum{_fmt_labels(labels)} {_fmt_value(snap['sum'])}"
                )
                lines.append(
                    f"{metric.name}_count{_fmt_labels(labels)} {snap['count']}"
                )
            else:
                lines.append(
                    f"{metric.name}{_fmt_labels(labels)} {_fmt_value(child.value)}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


def quantile_table(
    registry: Optional[MetricsRegistry] = None,
    quantiles: Tuple[float, ...] = (0.5, 0.95, 0.99),
) -> str:
    """Estimated quantiles for every histogram series, as ``# ``-prefixed
    comment lines — appended to an exposition the output stays a valid
    scrape while giving the human reader the p50/p95/p99 at a glance."""
    registry = registry or get_registry()
    rows: List[str] = []
    for metric in registry.collect():
        if metric.kind != HISTOGRAM:
            continue
        for labels, child in sorted(
            metric.series(), key=lambda pair: sorted(pair[0].items())
        ):
            buckets, counts, _sum, count = child.raw_counts()
            if count == 0:
                continue
            estimates = " ".join(
                f"p{int(q * 100)}={_fmt_value(round(histogram_quantile(buckets, counts, q) or 0.0, 6))}"
                for q in quantiles
            )
            rows.append(
                f"# quantiles {metric.name}{_fmt_labels(labels)} "
                f"count={count} {estimates}"
            )
    if not rows:
        return ""
    header = "# -- estimated histogram quantiles (linear interpolation) --"
    return "\n".join([header, *rows]) + "\n"


# ---------------------------------------------------------- profile files


def load_collapsed(path) -> Dict[Tuple[str, ...], int]:
    """Parse a collapsed-stack profile: ``frame;frame;frame count``."""
    stacks: Dict[Tuple[str, ...], int] = {}
    with Path(path).open("r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            frames, _, count_text = line.rpartition(" ")
            try:
                count = int(count_text)
            except ValueError:
                continue
            key = tuple(frames.split(";"))
            stacks[key] = stacks.get(key, 0) + count
    return stacks


def render_flame(
    stacks: Dict[Tuple[str, ...], int],
    min_percent: float = 0.5,
    max_depth: int = 24,
) -> str:
    """A text flamegraph: the merged stack tree, indented, widest first.

    Branches below ``min_percent`` of total samples are folded away so
    the hot paths dominate the page the way they dominate the profile.
    """
    total = sum(stacks.values())
    if total == 0:
        return "(empty profile)\n"

    def children_of(prefix: Tuple[str, ...]):
        groups: Dict[str, int] = defaultdict(int)
        for stack, count in stacks.items():
            if len(stack) > len(prefix) and stack[: len(prefix)] == prefix:
                groups[stack[len(prefix)]] += count
        return sorted(groups.items(), key=lambda kv: -kv[1])

    lines: List[str] = [f"total: {total} samples"]

    def walk(prefix: Tuple[str, ...], depth: int) -> None:
        if depth >= max_depth:
            return
        for frame, count in children_of(prefix):
            percent = 100.0 * count / total
            if percent < min_percent:
                continue
            lines.append(f"{'  ' * depth}{frame} {percent:5.1f}% ({count})")
            walk(prefix + (frame,), depth + 1)

    walk((), 0)
    return "\n".join(lines) + "\n"


def render_top(
    stacks: Dict[Tuple[str, ...], int], limit: int = 20
) -> str:
    """Self-time ranking: samples where each frame was the innermost."""
    total = sum(stacks.values())
    if total == 0:
        return "(empty profile)\n"
    self_counts: Dict[str, int] = defaultdict(int)
    for stack, count in stacks.items():
        if stack:
            self_counts[stack[-1]] += count
    lines = [f"{'self%':>6} {'samples':>8}  frame"]
    for frame, count in sorted(
        self_counts.items(), key=lambda kv: -kv[1]
    )[:limit]:
        lines.append(f"{100.0 * count / total:>5.1f}% {count:>8}  {frame}")
    return "\n".join(lines) + "\n"


# ------------------------------------------------------------ trace files


def load_trace(path) -> Tuple[List[dict], List[dict]]:
    """Parse one JSONL trace file into (spans, events).

    Unparseable lines are skipped (a crashed writer may leave a torn
    final line); unknown record types are ignored for forward
    compatibility.
    """
    spans: List[dict] = []
    events: List[dict] = []
    with Path(path).open("r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if record.get("type") == "span":
                spans.append(record)
            elif record.get("type") == "event":
                events.append(record)
    return spans, events


def build_trees(spans: List[dict]) -> Dict[str, List[dict]]:
    """Group spans into per-trace trees.

    Returns ``{trace_id: [root spans]}`` where every span dict gains a
    ``children`` list, ordered by start time.
    """
    by_id: Dict[str, dict] = {}
    for span in spans:
        span = dict(span, children=[])
        by_id[span["span_id"]] = span
    trees: Dict[str, List[dict]] = defaultdict(list)
    for span in by_id.values():
        parent = by_id.get(span.get("parent_id") or "")
        if parent is not None:
            parent["children"].append(span)
        else:
            trees[span["trace_id"]].append(span)
    for span in by_id.values():
        span["children"].sort(key=lambda s: (s.get("start", 0.0), s.get("seq", 0)))
    return dict(trees)


def render_tree(roots: List[dict], indent: str = "") -> List[str]:
    """Render one trace's span tree as indented text lines."""
    lines: List[str] = []
    for span in sorted(roots, key=lambda s: (s.get("start", 0.0), s.get("seq", 0))):
        ms = span.get("duration", 0.0) * 1000.0
        attrs = span.get("attrs") or {}
        shown = " ".join(f"{k}={v}" for k, v in attrs.items())
        status = "" if span.get("status", "ok") == "ok" else f" !{span['error']}"
        lines.append(f"{indent}{span['name']} [{ms:.3f}ms] {shown}{status}".rstrip())
        lines.extend(render_tree(span["children"], indent + "  "))
    return lines


def summarize(path, trees: int = 1) -> str:
    """The ``python -m repro.obs summarize`` report for one trace file."""
    spans, events = load_trace(path)
    out: List[str] = [f"== Trace summary: {path}"]
    forest = build_trees(spans)
    out.append(
        f"{len(spans)} spans across {len(forest)} traces, {len(events)} events"
    )

    # -- top span names by total time
    totals: Dict[str, List[float]] = defaultdict(list)
    for span in spans:
        totals[span["name"]].append(span.get("duration", 0.0))
    if totals:
        out.append("")
        out.append("-- Top spans by total time")
        out.append(f"{'name':<24} {'count':>6} {'total_ms':>10} {'mean_ms':>9} {'max_ms':>9}")
        ranked = sorted(totals.items(), key=lambda kv: -sum(kv[1]))
        for name, durations in ranked[:12]:
            total = sum(durations) * 1000.0
            out.append(
                f"{name:<24} {len(durations):>6} {total:>10.3f} "
                f"{total / len(durations):>9.3f} {max(durations) * 1000.0:>9.3f}"
            )

    # -- fallback-depth breakdown from serve.launch spans
    launches = [s for s in spans if s["name"] == "serve.launch"]
    if launches:
        depths: Dict[int, int] = defaultdict(int)
        served: Dict[str, int] = defaultdict(int)
        for span in launches:
            attrs = span.get("attrs") or {}
            depths[int(attrs.get("fallback_depth", 0))] += 1
            served[str(attrs.get("served", ""))] += 1
        out.append("")
        out.append("-- Fallback depth breakdown")
        for depth in sorted(depths):
            out.append(f"depth {depth}: {depths[depth]} launch(es)")
        out.append(
            "served by rung: "
            + ", ".join(f"{rung}={n}" for rung, n in sorted(served.items()))
        )

    # -- quality-vs-speedup timeline
    quality = [e for e in events if e.get("kind") == "quality_sample"]
    changes = [
        e
        for e in events
        if e.get("kind")
        in ("knob_change", "toq_violation", "drift", "breaker", "brownout", "slo")
    ]
    if quality or changes:
        out.append("")
        out.append("-- Quality timeline")
        merged = sorted(quality + changes, key=lambda e: e.get("seq", 0))
        for entry in merged[-40:]:
            launch = entry.get("launch_id", "?")
            if entry.get("kind") == "quality_sample":
                est = entry.get("estimate")
                est_s = f"{est:.4f}" if isinstance(est, (int, float)) else "-"
                verdict = entry.get("verdict") or "ok"
                out.append(
                    f"launch {launch:>5}  {entry.get('variant', '?'):<28} "
                    f"quality={entry.get('quality', 0.0):.4f} est={est_s} "
                    f"speedup={entry.get('speedup', 0.0):.2f}x  {verdict}"
                )
            elif entry.get("kind") == "knob_change":
                out.append(
                    f"launch {launch:>5}  KNOB {entry.get('from_variant')} -> "
                    f"{entry.get('to_variant')} ({entry.get('reason')})"
                )
            elif entry.get("kind") == "breaker":
                out.append(
                    f"launch {launch:>5}  BREAKER {entry.get('variant')} -> "
                    f"{entry.get('state')} ({entry.get('reason')})"
                )
            elif entry.get("kind") == "slo":
                out.append(
                    f"{entry.get('objective', '?'):>12}  SLO "
                    f"{entry.get('from_state')} -> {entry.get('to_state')} "
                    f"tenant={entry.get('tenant')} "
                    f"burn fast={entry.get('burn_fast', 0.0):.2f} "
                    f"slow={entry.get('burn_slow', 0.0):.2f} "
                    f"({entry.get('reason')})"
                )
            elif entry.get("kind") == "brownout":
                pressure = entry.get("pressure")
                pressure_s = (
                    f"{pressure:.3f}"
                    if isinstance(pressure, (int, float))
                    else "-"
                )
                out.append(
                    f"{entry.get('frontend', '?'):>12}  BROWNOUT level "
                    f"{entry.get('from_level')} -> {entry.get('to_level')} "
                    f"[{entry.get('state')}] ({entry.get('reason')}) "
                    f"pressure={pressure_s}"
                )
            else:
                out.append(
                    f"launch {launch:>5}  {entry.get('kind', '').upper()} "
                    f"variant={entry.get('variant')} quality={entry.get('quality')}"
                )

    # -- span trees for the most recent traces
    if forest and trees > 0:
        def trace_start(item):
            return min(s.get("start", 0.0) for s in item[1])

        recent = sorted(forest.items(), key=trace_start)[-trees:]
        for trace_id, roots in recent:
            out.append("")
            out.append(f"-- Span tree ({trace_id})")
            out.extend(render_tree(roots))
    return "\n".join(out)
