"""The quality-drift timeline: every quality decision, time-ordered.

Green/SAGE-style recalibration is only debuggable with a record of *what
the monitor saw and what the runtime did about it*, in order, with ids
that tie each entry back to the launch (and trace) that produced it.  The
timeline records seven kinds of entry:

* ``quality_sample`` — one sampled quality check (quality, windowed
  estimate, TOQ, the serving variant and its modelled speedup);
* ``toq_violation`` / ``drift`` — the monitor verdicts that trigger
  recalibration;
* ``knob_change`` — a recalibrator transition (which variant to which,
  why);
* ``breaker`` — a circuit-breaker state transition;
* ``brownout`` — an overload-controller level change (which front-end,
  which level to which, the pressure reading that drove it) — together
  with the interleaved quality samples this is the quality-vs-load plot;
* ``slo`` — an SLO alert transition (which objective/tenant, from which
  state to which, the fast/slow burn rates that drove it).

Every entry carries ``session``, ``launch_id`` and ``trace_id``, so a
served request can be traced from its input to the exact variant/knob
state that produced it.  Entries are mirrored into the JSONL trace
stream (``type: "event"``) when tracing is enabled, which is how the
``python -m repro.obs summarize`` CLI renders the quality-vs-speedup
timeline next to the span tree.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from typing import Deque, Dict, List, Optional

from . import trace as obs_trace

#: Entry kinds, for filtering.
QUALITY_SAMPLE = "quality_sample"
TOQ_VIOLATION = "toq_violation"
DRIFT = "drift"
KNOB_CHANGE = "knob_change"
BREAKER = "breaker"
BROWNOUT = "brownout"
SLO = "slo"

KINDS = (
    QUALITY_SAMPLE, TOQ_VIOLATION, DRIFT, KNOB_CHANGE, BREAKER, BROWNOUT, SLO
)


class QualityTimeline:
    """Bounded, thread-safe, time-ordered record of quality events."""

    def __init__(self, capacity: int = 16384) -> None:
        self._entries: Deque[dict] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._seq = itertools.count()

    def record(self, kind: str, **fields) -> Optional[dict]:
        """Append one entry (no-op while tracing is disabled, so the
        serving fast path pays nothing when observability is off)."""
        if not obs_trace.enabled():
            return None
        entry: Dict[str, object] = {
            "type": "event",
            "kind": kind,
            "seq": next(self._seq),
            "t": time.perf_counter(),
            **fields,
        }
        with self._lock:
            self._entries.append(entry)
        obs_trace.emit_event(entry)
        return entry

    # -- typed helpers -------------------------------------------------------

    def quality_sample(
        self,
        session: str,
        launch_id: int,
        trace_id: Optional[str],
        variant: str,
        quality: float,
        estimate: Optional[float],
        toq: float,
        speedup: float,
        verdict: str = "",
        registry_key: Optional[str] = None,
    ) -> None:
        """One sampled quality check.  Sessions tuning under a variant
        registry stamp ``registry_key`` so exported timelines can be fed
        back as surrogate training data
        (:meth:`repro.registry.VariantRegistry.ingest_timeline`)."""
        fields: Dict[str, object] = dict(
            session=session,
            launch_id=launch_id,
            trace_id=trace_id,
            variant=variant,
            quality=quality,
            estimate=estimate,
            toq=toq,
            speedup=speedup,
            verdict=verdict,
        )
        if registry_key is not None:
            fields["registry_key"] = registry_key
        self.record(QUALITY_SAMPLE, **fields)

    def verdict(
        self,
        kind: str,
        session: str,
        launch_id: int,
        trace_id: Optional[str],
        variant: str,
        quality: Optional[float],
    ) -> None:
        """A TOQ violation or drift declaration."""
        self.record(
            kind,
            session=session,
            launch_id=launch_id,
            trace_id=trace_id,
            variant=variant,
            quality=quality,
        )

    def knob_change(
        self,
        session: str,
        launch_id: int,
        trace_id: Optional[str],
        from_variant: str,
        to_variant: str,
        reason: str,
        quality: Optional[float] = None,
    ) -> None:
        self.record(
            KNOB_CHANGE,
            session=session,
            launch_id=launch_id,
            trace_id=trace_id,
            from_variant=from_variant,
            to_variant=to_variant,
            reason=reason,
            quality=quality,
        )

    def brownout(
        self,
        frontend: str,
        from_level: int,
        to_level: int,
        state: str,
        reason: str,
        pressure: float,
    ) -> None:
        """One overload-controller level transition (keyed by front-end,
        not session: one controller degrades every session it serves)."""
        self.record(
            BROWNOUT,
            frontend=frontend,
            from_level=from_level,
            to_level=to_level,
            state=state,
            reason=reason,
            pressure=pressure,
        )

    def slo(
        self,
        objective: str,
        tenant: str,
        from_state: str,
        to_state: str,
        burn_fast: float,
        burn_slow: float,
        reason: str,
    ) -> None:
        """One SLO alert transition (keyed by objective name + tenant;
        the burn rates that drove it make the entry self-explaining)."""
        self.record(
            SLO,
            objective=objective,
            tenant=tenant,
            from_state=from_state,
            to_state=to_state,
            burn_fast=burn_fast,
            burn_slow=burn_slow,
            reason=reason,
        )

    def breaker(
        self,
        session: str,
        launch_id: int,
        trace_id: Optional[str],
        variant: str,
        state: str,
        reason: str,
    ) -> None:
        self.record(
            BREAKER,
            session=session,
            launch_id=launch_id,
            trace_id=trace_id,
            variant=variant,
            state=state,
            reason=reason,
        )

    # -- queries -------------------------------------------------------------

    def entries(
        self, kind: Optional[str] = None, session: Optional[str] = None
    ) -> List[dict]:
        with self._lock:
            out = list(self._entries)
        if kind is not None:
            out = [e for e in out if e["kind"] == kind]
        if session is not None:
            out = [e for e in out if e.get("session") == session]
        return out

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()


_TIMELINE = QualityTimeline()


def timeline() -> QualityTimeline:
    """The process-wide quality timeline."""
    return _TIMELINE
