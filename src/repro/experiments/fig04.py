"""Fig 4: the bit-tuning hill climb for BlackScholesBody.

The paper walks a 15-bit (32768-entry) table for the three variable
inputs of BlackScholesBody: the root splits bits (5, 5, 5), the best child
is selected per step, and the climb stops at a node all of whose children
are worse — (5, 6, 4) in the paper's run.  We regenerate the walk on our
profiled input ranges; the exact winning split depends on data, but the
structure — root, per-step children, monotone quality improvement,
termination at a local optimum — is asserted by the benchmark.
"""

from __future__ import annotations

from ..apps.blackscholes import BlackScholesApp
from ..approx.memoization import MemoizationTransform, profile_device_calls
from ..patterns import PatternDetector
from .base import ExperimentResult

TABLE_BITS = 15  # 32768 entries, as in the paper's example


def run(scale: float = 0.01, seed: int = 0) -> ExperimentResult:
    app = BlackScholesApp(scale=scale, seed=seed)
    detector = PatternDetector()
    match = detector.detect(app.kernel).for_kernel(app.kernel.fn.name)[0]
    inputs = app.generate_inputs(seed)
    kernel, grid, args = app.training_launch(inputs)
    profiles = profile_device_calls(kernel, grid, args, match.candidates)
    transform = MemoizationTransform(toq=0.90, quality_fn=app.metric.quality)

    device_fn = app.kernel.module["bs_body"]
    profile = profiles["bs_body"]
    search, variable = transform.tune_function(app.kernel.module, profile)
    # Re-run the tuner at exactly 15 bits to record the Fig-4 walk.
    from ..approx.bit_tuning import BitTuner
    from ..engine import call_device_function
    import numpy as np

    ranges = profile.ranges

    def evaluate(*snapped):
        full, v = [], 0
        for i, rng in enumerate(ranges):
            if i in variable:
                full.append(snapped[v])
                v += 1
            else:
                full.append(np.full_like(snapped[0], 0.5 * (rng.lo + rng.hi)))
        return call_device_function(device_fn, app.kernel.module, full)

    exact = call_device_function(device_fn, app.kernel.module, profile.samples)
    tuner = BitTuner(
        evaluate,
        [profile.samples[i] for i in variable],
        exact,
        app.metric.quality,
        ranges=[ranges[i] for i in variable],
    )
    final = tuner.tune(TABLE_BITS)

    result = ExperimentResult(
        experiment="fig04",
        title="Bit tuning walk for BlackScholesBody (15-bit table)",
        columns=["step", "node", "quality", "children_evaluated", "best_child"],
    )
    for step, (node, quality, children) in enumerate(tuner.path):
        best = max(children, key=lambda cq: cq[1]) if children else (None, 0.0)
        result.rows.append(
            {
                "step": step,
                "node": str(node),
                "quality": quality,
                "children_evaluated": len(children),
                "best_child": f"{best[0]} ({best[1]:.4f})",
            }
        )
    result.notes.append(
        f"variable inputs: {len(variable)} of {len(ranges)} "
        f"(constants R, V excluded, as in the paper)"
    )
    result.notes.append(f"final split: {final.bits}, quality {final.quality:.4f}")
    result.notes.append(
        f"TOQ-driven table-size search chose {search.best_available().total} bits"
    )
    return result
