"""Fig 13: CDF of per-element output error at TOQ = 90 %.

For each application the paper plots the distribution of per-element
relative errors of the tuned approximate output and observes that the
large majority (70-100 %) of output elements have less than 10 % error.
We regenerate the CDF values at the same error thresholds for the nine
apps of the paper's figure.
"""

from __future__ import annotations

import numpy as np

from ..apps import make_app
from ..approx.compiler import Paraprox
from ..device import DeviceKind
from ..runtime.quality import relative_errors
from .base import ExperimentResult

#: the nine applications in the paper's Fig 13
FIG13_APPS = (
    "cumhist",
    "gamma",
    "matmul",
    "denoise",
    "naivebayes",
    "kde",
    "hotspot",
    "gaussian",
    "meanfilter",
)

THRESHOLDS = (0.01, 0.05, 0.10, 0.20, 0.50)


def run(toq: float = 0.90, seed: int = 0) -> ExperimentResult:
    paraprox = Paraprox(target_quality=toq)
    result = ExperimentResult(
        experiment="fig13",
        title="CDF of per-element error, TOQ = 90%",
        columns=["application", "variant"]
        + [f"pct_le_{int(t * 100)}pct" for t in THRESHOLDS],
    )
    for name in FIG13_APPS:
        app = make_app(name, seed=seed)
        tuning = paraprox.optimize(app, DeviceKind.GPU)
        inputs = app.generate_inputs(seed + 500)
        exact, _t = app.run_exact(inputs)
        if tuning.chosen.variant is None:
            errors = np.zeros(np.asarray(exact).size)
            variant_name = "exact"
        else:
            approx, _t = app.run_variant(tuning.chosen.variant, inputs)
            errors = relative_errors(approx, exact)
            variant_name = tuning.chosen.name
        row = {"application": app.info.name, "variant": variant_name}
        for t in THRESHOLDS:
            row[f"pct_le_{int(t * 100)}pct"] = float((errors <= t).mean() * 100.0)
        result.rows.append(row)
    result.notes.append(
        "paper: the majority (70%-100%) of output elements have <10% error"
    )
    return result
