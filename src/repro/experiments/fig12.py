"""Fig 12: performance-quality tradeoff curves for six benchmarks.

The paper sweeps each optimization's tuning parameter and plots speedup
against output quality for BlackScholes, Quasirandom Generator, Matrix
Multiplication, Kernel Density, Gaussian Filter and Convolution Separable.
We regenerate the same frontiers from the tuner's variant profiles: every
knob setting contributes one (quality, speedup) point, and more aggressive
knobs must trade quality for speed.
"""

from __future__ import annotations

from ..apps.blackscholes import BlackScholesApp
from ..apps.convsep import ConvolutionSeparableApp
from ..apps.gaussian import GaussianFilterApp
from ..apps.kde import KernelDensityApp
from ..apps.matmul import MatrixMultiplyApp
from ..apps.quasirandom import QuasirandomApp
from ..approx.compiler import Paraprox, ParaproxConfig
from ..device import DeviceKind
from .base import ExperimentResult

FIG12_APPS = (
    BlackScholesApp,
    QuasirandomApp,
    MatrixMultiplyApp,
    KernelDensityApp,
    GaussianFilterApp,
    ConvolutionSeparableApp,
)


def run(seed: int = 0, device: DeviceKind = DeviceKind.GPU) -> ExperimentResult:
    # Sweep wider knob ranges than the default pipeline so the curves have
    # enough points; a low TOQ keeps every variant in the profile set.
    config = ParaproxConfig(
        skipping_rates=(2, 4, 8, 16),
        reaching_distances=(1, 2, 3),
        memo_extra_tables=4,
    )
    paraprox = Paraprox(target_quality=0.50, config=config)
    result = ExperimentResult(
        experiment="fig12",
        title="Speedup vs output quality while varying tuning parameters",
        columns=["application", "variant", "quality", "speedup"],
    )
    for app_cls in FIG12_APPS:
        app = app_cls(seed=seed)
        tuning = paraprox.optimize(app, device)
        for profile in tuning.frontier():
            result.rows.append(
                {
                    "application": app.info.name,
                    "variant": profile.name,
                    "quality": profile.quality,
                    "speedup": profile.speedup,
                }
            )
    result.notes.append(
        "each row is one knob setting; speedup rises as quality is traded "
        "away (paper Fig 12)"
    )
    return result
