"""Fig 16: lookup-table placement — constant vs shared vs global memory.

The §4.4.2 case study runs the memoized Bass function with its table in
each GPU memory space across table sizes 8..8192 and finds three regimes:
small tables perform alike in shared and global, mid-size tables favour
shared, and large tables favour global (the shared copy-in overhead
grows), while constant memory is never optimal (its broadcast cache
serializes divergent accesses and thrashes beyond 8 KiB).
"""

from __future__ import annotations

from ..apps.mapfuncs import BassApp
from ..device import CostModel, DeviceKind, spec_for
from .base import ExperimentResult
from .fig15 import memo_variants_at_sizes

TABLE_BITS = (3, 5, 7, 9, 11, 13)
SPACES = ("constant", "shared", "global")


def run(seed: int = 0) -> ExperimentResult:
    app = BassApp(seed=seed)
    base = spec_for(DeviceKind.GPU)
    # The paper reconfigures the L1/shared SRAM split per placement: big L1
    # when the table lives in global/constant memory, big shared memory
    # when the table is staged into the scratchpad.
    split = {
        "global": CostModel(base.with_cache_split(32 * 1024, 16 * 1024)),
        "constant": CostModel(base.with_cache_split(32 * 1024, 16 * 1024)),
        "shared": CostModel(base.with_cache_split(16 * 1024, 32 * 1024)),
    }
    inputs = app.generate_inputs(seed + 321)
    exact_out, exact_trace = app.run_exact(inputs)
    exact_cycles = {
        space: model.cycles(exact_trace) for space, model in split.items()
    }

    result = ExperimentResult(
        experiment="fig16",
        title="Approximate memoization speedup by table placement (Bass, GPU)",
        columns=["table_entries", "constant", "shared", "global"],
    )
    variants = memo_variants_at_sizes(
        app, TABLE_BITS, modes=("nearest",), spaces=SPACES
    )
    by_size = {}
    for variant in variants:
        space = variant.knobs["space"]
        _out, trace = app.run_variant(variant, inputs)
        speedup = exact_cycles[space] / split[space].cycles(trace)
        entries = 1 << variant.knobs["table_bits"]
        by_size.setdefault(entries, {})[space] = speedup
    for entries in sorted(by_size):
        row = {"table_entries": entries}
        row.update(by_size[entries])
        result.rows.append(row)
    result.notes.append(
        "paper: constant never optimal; shared wins mid sizes; global wins "
        "large sizes as the shared staging overhead grows"
    )
    return result
