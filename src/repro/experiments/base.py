"""Experiment result containers and text rendering.

Every module in this package regenerates one table or figure of the
paper's evaluation section.  Results are structured (list-of-dict rows) so
benchmarks can assert on them, and render to aligned text tables for
EXPERIMENTS.md and the console.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class ExperimentResult:
    """Rows regenerating one paper table/figure."""

    experiment: str  # e.g. "fig11"
    title: str
    columns: List[str]
    rows: List[Dict[str, object]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def column(self, name: str) -> List[object]:
        """One column as a list, in row order."""
        return [row.get(name) for row in self.rows]

    def row_for(self, key_column: str, key: object) -> Dict[str, object]:
        for row in self.rows:
            if row.get(key_column) == key:
                return row
        raise KeyError(f"{self.experiment}: no row with {key_column}={key!r}")

    def to_json(self) -> str:
        """Serialise rows + notes for archival/diffing between runs."""
        import json

        return json.dumps(
            {
                "experiment": self.experiment,
                "title": self.title,
                "columns": self.columns,
                "rows": self.rows,
                "notes": self.notes,
            },
            indent=2,
            default=float,
        )

    @staticmethod
    def from_json(text: str) -> "ExperimentResult":
        import json

        data = json.loads(text)
        return ExperimentResult(
            experiment=data["experiment"],
            title=data["title"],
            columns=data["columns"],
            rows=data["rows"],
            notes=data.get("notes", []),
        )

    def to_text(self) -> str:
        """Render as an aligned monospace table."""

        def fmt(v: object) -> str:
            if isinstance(v, float):
                return f"{v:.3f}"
            return str(v)

        table = [[fmt(r.get(c, "")) for c in self.columns] for r in self.rows]
        widths = [
            max(len(c), *(len(row[i]) for row in table)) if table else len(c)
            for i, c in enumerate(self.columns)
        ]
        lines = [f"== {self.experiment}: {self.title} =="]
        lines.append("  ".join(c.ljust(w) for c, w in zip(self.columns, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in table:
            lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)


def geometric_mean(values: List[float]) -> float:
    import math

    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))
