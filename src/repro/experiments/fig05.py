"""Fig 5: average percent difference between adjacent pixels.

The paper histograms, over ten images, each pixel's mean percent
difference from its eight neighbours and finds more than 70 % of pixels
within 10 % of their neighbours — the empirical basis of the stencil
optimization.  We regenerate the histogram over ten synthetic natural
images and, as an ablation, over white noise, where the assumption
collapses.
"""

from __future__ import annotations

from ..apps.images import difference_histogram, synthetic_image
from .base import ExperimentResult

N_IMAGES = 10
SIDE = 256


def run(seed: int = 0, smoothness: float = 1.0) -> ExperimentResult:
    images = [
        synthetic_image(SIDE, SIDE, seed=seed + i, smoothness=smoothness)
        for i in range(N_IMAGES)
    ]
    pct, edges = difference_histogram(images)
    noise = [
        synthetic_image(SIDE, SIDE, seed=seed + i, smoothness=0.0)
        for i in range(N_IMAGES)
    ]
    noise_pct, _ = difference_histogram(noise)

    result = ExperimentResult(
        experiment="fig05",
        title="Average percent difference between adjacent pixels (10 images)",
        columns=["band", "natural_images_pct", "white_noise_pct"],
    )
    for i in range(len(pct)):
        result.rows.append(
            {
                "band": f"{int(edges[i])}-{int(edges[i + 1])}%",
                "natural_images_pct": float(pct[i]),
                "white_noise_pct": float(noise_pct[i]),
            }
        )
    result.notes.append(
        f"pixels within 10% of neighbours: {pct[0]:.1f}% (paper: >70%)"
    )
    return result
