"""Fig 17: lookup-table size vs serialization overhead and speedup.

Large lookup tables defeat coalescing: neighbouring threads' inputs map to
levels spread across many 128-byte segments, so each warp's table read
issues more transactions.  The paper plots the fraction of serialized
(uncoalesced) instruction overhead and the resulting speedup against table
size for the Bass function; speedup falls as the serialization overhead
grows.  Both series come straight out of our coalescing simulator.
"""

from __future__ import annotations

from ..apps.mapfuncs import BassApp
from ..device import CostModel, DeviceKind, spec_for
from .base import ExperimentResult
from .fig15 import memo_variants_at_sizes

TABLE_BITS = (3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15)


def run(seed: int = 0) -> ExperimentResult:
    app = BassApp(seed=seed)
    cost_model = CostModel(spec_for(DeviceKind.GPU))
    inputs = app.generate_inputs(seed + 11)
    exact_out, exact_trace = app.run_exact(inputs)
    exact_cycles = cost_model.cycles(exact_trace)

    result = ExperimentResult(
        experiment="fig17",
        title="Lookup-table size vs serialization overhead and speedup (Bass, GPU)",
        columns=[
            "table_entries",
            "serialization_overhead_pct",
            "transactions_per_warp",
            "speedup",
        ],
    )
    for variant in memo_variants_at_sizes(
        app, TABLE_BITS, modes=("nearest",), spaces=("global",)
    ):
        _out, trace = app.run_variant(variant, inputs)
        breakdown = cost_model.breakdown(trace)
        table_stream = next(
            stats
            for (space, kind, array), stats in trace.mem.items()
            if array.startswith("__memo_")
        )
        result.rows.append(
            {
                "table_entries": 1 << variant.knobs["table_bits"],
                "serialization_overhead_pct": breakdown.serialization_overhead * 100,
                "transactions_per_warp": table_stream.transactions_per_warp,
                "speedup": exact_cycles / breakdown.total_cycles,
            }
        )
    result.rows.sort(key=lambda r: r["table_entries"])
    result.notes.append(
        "paper: serialization overhead rises with table size and speedup "
        "falls correspondingly"
    )
    return result
