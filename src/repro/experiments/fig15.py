"""Fig 15: nearest vs linear memoization for four map functions (GPU).

The §4.4.2 case study sweeps lookup-table sizes for the credit-card,
shifted-Gompertz, log-gamma and Bass equations under both unrepresented-
input policies: *nearest* (snap to the closest level) and *linear*
(interpolate the two neighbouring entries).  The paper finds nearest
faster at equal table size, linear more accurate — linear is the way to
reach ~99 % quality.  Each row of this experiment is one point of the
figure's speedup-vs-quality curves.
"""

from __future__ import annotations

from typing import Iterable

from ..approx.bit_tuning import BitConfig
from ..approx.memoization import MemoizationTransform, profile_device_calls
from ..apps.mapfuncs import BassApp, CreditApp, GompertzApp, LgammaApp
from ..device import CostModel, DeviceKind, spec_for
from ..patterns.base import MapMatch, Pattern
from .base import ExperimentResult

FIG15_APPS = (LgammaApp, BassApp, GompertzApp, CreditApp)

TABLE_BITS = (4, 6, 8, 10, 12)


def memo_variants_at_sizes(
    app, bits_list: Iterable[int], modes=("nearest", "linear"), spaces=("global",)
):
    """Memoized variants at explicit table sizes (bypassing the TOQ-driven
    size search — this is a sweep, exactly as the paper's case study)."""
    func = app.kernel.module.device_functions()[0].name
    inputs = app.generate_inputs(app.seed + 9)
    kernel, grid, args = app.training_launch(inputs)
    profiles = profile_device_calls(kernel, grid, args, [func])
    transform = MemoizationTransform(quality_fn=app.metric.quality, modes=modes, spaces=spaces)
    profile = profiles[func]
    match = MapMatch(pattern=Pattern.MAP, kernel=app.kernel.fn.name, candidates=[func])
    variants = []
    for bits in bits_list:
        search = None
        config = BitConfig(bits=(bits,), quality=0.0)
        memo = transform.build_memo(app.kernel.module, profile, config)
        from ..approx.memoization import rewrite_kernel_with_table

        for mode in modes:
            for space in spaces:
                suffix = f"memo_{func}_t{memo.entries}_{mode}_{space}"
                module, name = rewrite_kernel_with_table(
                    app.kernel.module, app.kernel.fn.name, memo, mode, space, suffix
                )
                from ..approx.base import ApproxKernel

                variants.append(
                    ApproxKernel(
                        name=name,
                        pattern=Pattern.MAP,
                        kernel=name,
                        module=module,
                        knobs={
                            "function": func,
                            "table_bits": bits,
                            "mode": mode,
                            "space": space,
                        },
                        extra_args=[memo.table],
                        aggressiveness=-bits,
                    )
                )
    return variants


def run(seed: int = 0, device: DeviceKind = DeviceKind.GPU) -> ExperimentResult:
    cost_model = CostModel(spec_for(device))
    result = ExperimentResult(
        experiment="fig15",
        title="Nearest vs linear memoization, four map functions (GPU)",
        columns=["function", "mode", "table_entries", "quality", "speedup"],
    )
    for app_cls in FIG15_APPS:
        app = app_cls(seed=seed)
        inputs = app.generate_inputs(seed + 123)
        exact_out, exact_trace = app.run_exact(inputs)
        exact_cycles = cost_model.cycles(exact_trace)
        for variant in memo_variants_at_sizes(app, TABLE_BITS):
            out, trace = app.run_variant(variant, inputs)
            result.rows.append(
                {
                    "function": app.info.name,
                    "mode": variant.knobs["mode"],
                    "table_entries": 1 << variant.knobs["table_bits"],
                    "quality": app.quality(out, exact_out),
                    "speedup": exact_cycles / cost_model.cycles(trace),
                }
            )
    result.notes.append(
        "paper: nearest is faster at equal size, linear reaches higher "
        "quality (~99%); Gompertz gains least (cheap SFU exponentials), "
        "Bass and Credit gain most (slow float division)"
    )
    return result
