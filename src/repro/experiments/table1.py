"""Table 1: benchmark characteristics, with detected patterns.

Reproduces the paper's application table and additionally cross-checks the
pattern detector: for every app, the patterns Paraprox detects must cover
the patterns Table 1 lists (extra detections are reported — e.g. Naive
Bayes's per-thread sample chunks legitimately register as a partition tile
even though the paper lists only Reduction).
"""

from __future__ import annotations

from ..apps import all_apps
from ..patterns import PatternDetector
from .base import ExperimentResult


def detected_patterns(app) -> list:
    """Patterns the detector finds in the app's kernel(s)."""
    detector = PatternDetector()
    if hasattr(app, "kernel"):
        return detector.detect(app.kernel).patterns()
    # Program-style apps (scan, convsep) declare their kernels themselves.
    name = app.info.name
    if name == "Cumulative Histogram":
        from ..apps.scanlib import scan_phase1
        from ..patterns.scan_detect import register_template

        register_template(scan_phase1)
        return detector.detect(scan_phase1).patterns()
    if name == "Convolution Separable":
        from ..apps.convsep import conv_row_kernel

        return detector.detect(conv_row_kernel).patterns()
    return []


def run(seed: int = 0) -> ExperimentResult:
    result = ExperimentResult(
        experiment="table1",
        title="Details of applications used in this study",
        columns=[
            "application",
            "domain",
            "input_size",
            "paper_patterns",
            "detected_patterns",
            "error_metric",
        ],
    )
    for app in all_apps(seed=seed):
        detected = detected_patterns(app)
        result.rows.append(
            {
                "application": app.info.name,
                "domain": app.info.domain,
                "input_size": app.info.input_size,
                "paper_patterns": "+".join(app.info.patterns),
                "detected_patterns": "+".join(detected),
                "error_metric": app.info.error_metric,
            }
        )
    result.notes.append(
        "input sizes are the paper's; experiments run scaled-down variants "
        "by default (Application.scale restores them)"
    )
    return result
