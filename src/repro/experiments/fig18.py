"""Fig 18: cascading error in scan patterns.

The paper zeroes one subarray (10 % of the input) of the cumulative
frequency histogram's scan input and slides the corrupted region from the
front to the back: corruption at the front propagates through every later
prefix (quality ~67 %), corruption at the back barely matters (~99 %).
That asymmetry is why §3.4 approximates only the *last* subarrays.
"""

from __future__ import annotations

import numpy as np

from ..apps.scanlib import ScanProgram, reference_scan
from ..runtime.quality import MEAN_RELATIVE
from .base import ExperimentResult

BLOCK = 256
SUBARRAYS = 40
CORRUPT_FRACTION = 0.10


def run(seed: int = 0, points: int = 9) -> ExperimentResult:
    rng = np.random.default_rng(seed)
    n = BLOCK * SUBARRAYS
    x = rng.random(n).astype(np.float32)
    exact = reference_scan(x)

    corrupt_len = int(n * CORRUPT_FRACTION) // BLOCK * BLOCK
    result = ExperimentResult(
        experiment="fig18",
        title="Output quality vs corrupted-subarray position (scan)",
        columns=["corrupt_start_subarray", "corrupt_start_fraction", "quality"],
    )
    starts = np.linspace(0, n - corrupt_len, points).astype(int) // BLOCK * BLOCK
    for start in starts:
        corrupted = x.copy()
        corrupted[start : start + corrupt_len] = 0.0
        program = ScanProgram(block=BLOCK)
        out = program.run(corrupted)
        quality = MEAN_RELATIVE.quality(out, exact)
        result.rows.append(
            {
                "corrupt_start_subarray": int(start // BLOCK),
                "corrupt_start_fraction": float(start / n),
                "quality": quality,
            }
        )
    first, last = result.rows[0]["quality"], result.rows[-1]["quality"]
    result.notes.append(
        f"corruption at the front: {first:.2%} quality; at the back: "
        f"{last:.2%} (paper: ~67% vs ~99%)"
    )
    return result
