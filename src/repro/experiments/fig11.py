"""Fig 11: speedup of every benchmark on GPU and CPU at TOQ = 90 %.

The paper's headline result: Paraprox averages 2.7x on the GTX 560 and
2.5x on the Core i7 with at most 10 % quality loss.  We run the full
pipeline — detection, variant generation, tuning — for all 13 apps on both
modelled devices and report modelled-cycle speedups plus measured quality.
"""

from __future__ import annotations

from typing import Optional

from ..apps import all_apps
from ..approx.compiler import Paraprox
from ..device import DeviceKind
from .base import ExperimentResult, geometric_mean

#: The paper's qualitative per-app claims (§4.3) that the benchmark suite
#: asserts on: which device sees the larger gain, where that is clear-cut.
PAPER_DEVICE_PREFERENCE = {
    "BlackScholes": "cpu",  # "BlackScholes and Quasirandom ... better on CPU"
    "Quasirandom Generator": "cpu",
    "Gamma Correction": "gpu",  # ">3x speedup on the GPU"
    "BoxMuller": "gpu",
}


def run(toq: float = 0.90, seed: int = 0, scale: Optional[float] = None) -> ExperimentResult:
    paraprox = Paraprox(target_quality=toq)
    result = ExperimentResult(
        experiment="fig11",
        title=f"Speedup per application, GPU and CPU, TOQ = {toq:.0%}",
        columns=[
            "application",
            "gpu_speedup",
            "gpu_quality",
            "gpu_variant",
            "cpu_speedup",
            "cpu_quality",
            "cpu_variant",
        ],
    )
    gpu_speedups, cpu_speedups = [], []
    for app in all_apps(seed=seed):
        if scale is not None:
            app = type(app)(scale=scale, seed=seed)
        per_device = {}
        for device in (DeviceKind.GPU, DeviceKind.CPU):
            per_device[device.value] = paraprox.optimize(app, device)
        gpu, cpu = per_device["gpu"], per_device["cpu"]
        gpu_speedups.append(gpu.speedup)
        cpu_speedups.append(cpu.speedup)
        result.rows.append(
            {
                "application": app.info.name,
                "gpu_speedup": gpu.speedup,
                "gpu_quality": gpu.quality,
                "gpu_variant": gpu.chosen.name,
                "cpu_speedup": cpu.speedup,
                "cpu_quality": cpu.quality,
                "cpu_variant": cpu.chosen.name,
            }
        )
    mean_gpu = sum(gpu_speedups) / len(gpu_speedups)
    mean_cpu = sum(cpu_speedups) / len(cpu_speedups)
    result.notes.append(
        f"arithmetic mean speedup: GPU {mean_gpu:.2f}x, CPU {mean_cpu:.2f}x "
        f"(paper: 2.7x GPU, 2.5x CPU)"
    )
    result.notes.append(
        f"geometric mean speedup: GPU {geometric_mean(gpu_speedups):.2f}x, "
        f"CPU {geometric_mean(cpu_speedups):.2f}x"
    )
    for app_name, wanted in PAPER_DEVICE_PREFERENCE.items():
        row = result.row_for("application", app_name)
        got = "gpu" if row["gpu_speedup"] >= row["cpu_speedup"] else "cpu"
        mark = "matches" if got == wanted else "DEVIATES FROM"
        result.notes.append(
            f"{app_name}: faster on {got.upper()} — {mark} the paper's §4.3 claim"
        )
    return result
