"""Scale-sensitivity study (reproduction-methodology check).

The experiments default to scaled-down Table-1 inputs; this study verifies
that the conclusions do not depend on that choice: for representative apps
of each optimization family, the *chosen optimization family* is invariant
across a 16x range of input scales and the speedup varies only mildly.
This is what licenses reading the scaled-down Fig-11 numbers as
reproductions of the paper's full-size trends.
"""

from __future__ import annotations

from ..apps.blackscholes import BlackScholesApp
from ..apps.gaussian import MeanFilterApp
from ..apps.matmul import MatrixMultiplyApp
from ..approx.compiler import Paraprox
from ..device import DeviceKind
from .base import ExperimentResult

STUDY = (
    (BlackScholesApp, "memo", (0.005, 0.02, 0.08)),
    (MeanFilterApp, "stencil", (0.02, 0.1, 0.4)),
    (MatrixMultiplyApp, "red", (0.025, 0.05, 0.1)),
)


def run(seed: int = 0, toq: float = 0.90) -> ExperimentResult:
    paraprox = Paraprox(target_quality=toq)
    result = ExperimentResult(
        experiment="scale_study",
        title="Chosen optimization and speedup across input scales (GPU)",
        columns=["application", "scale", "chosen", "family", "speedup", "quality"],
    )
    for app_cls, family, scales in STUDY:
        for scale in scales:
            app = app_cls(scale=scale, seed=seed)
            tuning = paraprox.optimize(app, DeviceKind.GPU)
            name = tuning.chosen.name
            result.rows.append(
                {
                    "application": app.info.name,
                    "scale": scale,
                    "chosen": name,
                    "family": family if family in name else "other",
                    "speedup": tuning.speedup,
                    "quality": tuning.quality,
                }
            )
    return result
