"""Ablations of Paraprox's design choices.

Beyond the paper's own figures, these studies isolate the contribution of
individual mechanisms the paper bundles together:

* **bit tuning vs naive equal split** — what hill climbing buys at a fixed
  table size (§3.1.3's motivation: "naively dividing the quantization bits
  equally amongst all inputs does not necessarily yield ideal results"),
* **reduction adjustment on/off** — the x-N fold-back's effect on bias
  (§3.3.3),
* **load CSE on/off** — tile replication only pays once duplicate loads
  collapse,
* **stencil assumption violated** — on white-noise inputs the locality
  premise of Fig 5 fails and the TOQ runtime must fall back to exact.
"""

from __future__ import annotations

import numpy as np

from ..apps.blackscholes import BlackScholesApp
from ..apps.gaussian import MeanFilterApp
from ..apps.images import synthetic_image
from ..approx.bit_tuning import BitConfig, equal_split
from ..approx.compiler import Paraprox
from ..device import DeviceKind
from .base import ExperimentResult

__all__ = ["bit_tuning_ablation", "adjustment_ablation", "cse_ablation",
           "noise_ablation", "phase_choice_ablation", "run"]

from ..kernel import kernel  # noqa: E402
from ..kernel.dsl import *  # noqa: E402,F401,F403


@kernel
def chunked_sum_kernel(out: array_f32, x: array_f32, n: i32, chunk: i32):
    """Phase-I style reduction used by the adjustment ablation."""
    i = global_id()
    acc = 0.0
    for k in range(0, 4096):
        idx = i * chunk + k
        if (k < chunk) and (idx < n):
            acc += x[idx]
    if i * chunk < n:
        out[i] = acc


def bit_tuning_ablation(seed: int = 0, table_bits=(9, 12, 15)) -> ExperimentResult:
    """Tuned split vs equal split at fixed table sizes (BlackScholesBody)."""
    from ..approx.memoization import MemoizationTransform, profile_device_calls
    from ..patterns import PatternDetector

    app = BlackScholesApp(scale=0.01, seed=seed)
    match = PatternDetector().detect(app.kernel).for_kernel(app.kernel.fn.name)[0]
    inputs = app.generate_inputs(seed)
    kernel, grid, args = app.training_launch(inputs)
    profiles = profile_device_calls(kernel, grid, args, match.candidates)
    # Build a tuner directly so arbitrary nodes can be queried.
    from ..approx.bit_tuning import BitTuner
    from ..engine import call_device_function

    profile = profiles["bs_body"]
    variable = profile.variable_indices
    ranges = profile.ranges

    def evaluate(*snapped):
        full, v = [], 0
        for i, rng in enumerate(ranges):
            if i in variable:
                full.append(snapped[v])
                v += 1
            else:
                full.append(np.full_like(snapped[0], 0.5 * (rng.lo + rng.hi)))
        return call_device_function(
            app.kernel.module["bs_body"], app.kernel.module, full
        )

    exact = call_device_function(
        app.kernel.module["bs_body"], app.kernel.module, profile.samples
    )
    tuner = BitTuner(
        evaluate,
        [profile.samples[i] for i in variable],
        exact,
        app.metric.quality,
        ranges=[ranges[i] for i in variable],
    )

    result = ExperimentResult(
        experiment="ablation_bit_tuning",
        title="Hill-climbed vs equal bit split (BlackScholesBody)",
        columns=["table_bits", "equal_split", "equal_quality", "tuned_split", "tuned_quality"],
    )
    for bits in table_bits:
        naive = equal_split(bits, len(variable))
        naive_q = tuner.node_quality(naive)
        tuned = tuner.tune(bits)
        result.rows.append(
            {
                "table_bits": bits,
                "equal_split": str(naive),
                "equal_quality": naive_q,
                "tuned_split": str(tuned.bits),
                "tuned_quality": tuned.quality,
            }
        )
    return result


def cse_ablation(seed: int = 0) -> ExperimentResult:
    """Stencil rewrite with and without duplicate-load elimination."""
    from ..analysis.latency import GPU_LATENCIES  # noqa: F401  (doc pointer)
    from ..approx.stencil import StencilTransform, build_plan
    from ..approx.cse import eliminate_duplicate_loads  # noqa: F401
    from ..device import CostModel, spec_for
    from ..engine import Grid, launch
    from ..patterns import detect_stencil

    app = MeanFilterApp(scale=0.05, seed=seed)
    inputs = app.generate_inputs(seed)
    exact_out, exact_trace = app.run_exact(inputs)
    cost = CostModel(spec_for(DeviceKind.GPU))
    exact_cycles = cost.cycles(exact_trace)

    match = detect_stencil(app.kernel.fn)
    transform = StencilTransform(schemes=("center",), reaching_distances=(1,))

    # Full pipeline (with CSE).
    with_cse = transform.generate(app.kernel.module, app.kernel.fn.name, match)[0]
    _out, trace_with = app.run_variant(with_cse, inputs)

    # Without CSE: redo the rewrite but skip the elimination pass.
    import repro.approx.stencil as stencil_mod

    original = stencil_mod.eliminate_duplicate_loads
    stencil_mod.eliminate_duplicate_loads = lambda fn: fn
    try:
        without_cse = transform.generate(
            app.kernel.module, app.kernel.fn.name, match
        )[0]
    finally:
        stencil_mod.eliminate_duplicate_loads = original
    _out, trace_without = app.run_variant(without_cse, inputs)

    result = ExperimentResult(
        experiment="ablation_cse",
        title="Tile replication with vs without load CSE (Mean Filter, GPU)",
        columns=["configuration", "img_loads", "speedup"],
    )
    for label, trace in (
        ("exact", exact_trace),
        ("replicated, no CSE", trace_without),
        ("replicated + CSE", trace_with),
    ):
        result.rows.append(
            {
                "configuration": label,
                "img_loads": trace.accesses("global", "load", "img"),
                "speedup": exact_cycles / cost.cycles(trace),
            }
        )
    return result


def noise_ablation(seed: int = 0, toq: float = 0.90) -> ExperimentResult:
    """The Fig-5 premise matters: on white noise the stencil variants miss
    the TOQ and the tuner falls back to exact."""

    class NoiseMeanFilter(MeanFilterApp):
        def generate_inputs(self, seed=None):
            s = self.seed if seed is None else seed
            return {"img": synthetic_image(self.side, self.side, seed=s, smoothness=0.0)}

    paraprox = Paraprox(target_quality=toq)
    result = ExperimentResult(
        experiment="ablation_noise",
        title="Stencil approximation on natural vs white-noise images",
        columns=["input", "chosen", "speedup", "quality"],
    )
    for label, app in (
        ("natural image", MeanFilterApp(scale=0.05, seed=seed)),
        ("white noise", NoiseMeanFilter(scale=0.05, seed=seed)),
    ):
        tuning = paraprox.optimize(app, DeviceKind.GPU)
        result.rows.append(
            {
                "input": label,
                "chosen": tuning.chosen.name,
                "speedup": tuning.speedup,
                "quality": tuning.quality,
            }
        )
    return result


def adjustment_ablation(seed: int = 0) -> ExperimentResult:
    """Perforation with vs without the x-N adjustment (§3.3.3)."""
    from ..approx.reduction import ReductionTransform, perforate_all_loops
    from ..engine import Grid, launch
    from ..patterns import detect_reduction

    rng = np.random.default_rng(seed)
    n, chunk, threads = 64000, 64, 1000
    x = rng.random(n).astype(np.float32)
    exact = np.zeros(threads, dtype=np.float32)
    launch(chunked_sum_kernel, Grid.for_elements(threads, 64), [exact, x, n, chunk])

    match = detect_reduction(chunked_sum_kernel.fn)
    result = ExperimentResult(
        experiment="ablation_adjustment",
        title="Reduction perforation with vs without adjustment (chunked sum)",
        columns=["configuration", "skipping_rate", "relative_bias"],
    )
    for rate in (2, 4):
        adjusted_v = ReductionTransform(skipping_rates=(rate,)).generate(
            chunked_sum_kernel.module, "chunked_sum_kernel", match
        )[0]
        adjusted = np.zeros(threads, dtype=np.float32)
        launch(
            adjusted_v.module[adjusted_v.kernel],
            Grid.for_elements(threads, 64),
            [adjusted, x, n, chunk],
            module=adjusted_v.module,
        )
        naive_mod, naive_name = perforate_all_loops(
            chunked_sum_kernel.module, "chunked_sum_kernel", rate
        )
        naive = np.zeros(threads, dtype=np.float32)
        launch(
            naive_mod[naive_name],
            Grid.for_elements(threads, 64),
            [naive, x, n, chunk],
            module=naive_mod,
        )
        for label, out in (("adjusted", adjusted), ("unadjusted", naive)):
            result.rows.append(
                {
                    "configuration": label,
                    "skipping_rate": rate,
                    "relative_bias": float(
                        (out.mean() - exact.mean()) / exact.mean()
                    ),
                }
            )
    return result


def phase_choice_ablation(seed: int = 0) -> ExperimentResult:
    """Which phase of the three-phase tree reduction to perforate.

    §3.3.2: "All of the phases contain a reduction loop that Paraprox
    optimizes, creating approximate kernels for each loop.  The runtime
    determines which approximate version to execute."  Phase I holds
    nearly all the work, so perforating it buys nearly the full skipping
    rate; perforating Phase III saves almost nothing at similar error.
    """
    from ..apps.reducelib import ReduceProgram, reference_sum
    from ..device import CostModel, spec_for

    rng = np.random.default_rng(seed)
    x = rng.random(150_000).astype(np.float32)
    exact_value = reference_sum(x)
    cm = CostModel(spec_for(DeviceKind.GPU))
    exact_prog = ReduceProgram(chunk=64)
    exact_prog.run(x)
    exact_cycles = cm.cycles(exact_prog.trace)

    result = ExperimentResult(
        experiment="ablation_phase_choice",
        title="Perforating phase I vs phase III of the tree reduction",
        columns=["phase", "skipping_rate", "relative_error", "speedup"],
    )
    prog = ReduceProgram(chunk=64)
    for variant in prog.variants(skipping_rates=(2, 4)):
        runner = ReduceProgram(chunk=64)
        value = runner.run_variant(x, variant)
        result.rows.append(
            {
                "phase": variant.phase,
                "skipping_rate": variant.skipping_rate,
                "relative_error": abs(value - exact_value) / exact_value,
                "speedup": exact_cycles / cm.cycles(runner.trace),
            }
        )
    return result


def run(seed: int = 0) -> ExperimentResult:
    """Bundle all ablations into one renderable result (for the CLI)."""
    combined = ExperimentResult(
        experiment="ablations",
        title="Design-choice ablations",
        columns=["study", "detail"],
    )
    for study in (
        bit_tuning_ablation,
        adjustment_ablation,
        cse_ablation,
        noise_ablation,
        phase_choice_ablation,
    ):
        sub = study(seed=seed)
        combined.notes.append(sub.to_text())
        combined.rows.append({"study": sub.experiment, "detail": sub.title})
    return combined
