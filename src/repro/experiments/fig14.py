"""Fig 14: naive loop perforation vs pattern-based optimization.

The paper's §4.4.1 case study: applying only the reduction optimization
(i.e. loop perforation) to benchmarks that do *not* contain a reduction
pattern buys almost nothing — skipped map/stencil iterations leave output
elements unwritten and scan suffers cascading error — averaging ~25 %
speedup, while the pattern-matched optimizations average 2.3x on the same
apps.  We regenerate the comparison: for each non-reduction benchmark we
perforate every loop indiscriminately (no pattern checks), tune under the
same TOQ, and put the result next to the pattern-based pipeline's.
"""

from __future__ import annotations

from ..approx.base import ApproxKernel
from ..approx.compiler import Paraprox
from ..approx.reduction import perforate_all_loops
from ..apps import make_app
from ..apps.scanlib import ScanProgram, scan_phase1
from ..device import DeviceKind, spec_for
from ..patterns.base import Pattern
from ..runtime.tuner import GreedyTuner
from .base import ExperimentResult

#: benchmarks without a reduction pattern (paper Fig 14's x-axis)
FIG14_APPS = (
    "blackscholes",
    "quasirandom",
    "gamma",
    "boxmuller",
    "hotspot",
    "gaussian",
    "meanfilter",
    "cumhist",
)

NAIVE_RATES = (2, 4)


def _naive_variants(app):
    """Indiscriminately perforated variants of the app's kernel(s)."""
    if app.info.name == "Cumulative Histogram":
        return [_PerforatedScanVariant(rate) for rate in NAIVE_RATES]
    variants = []
    kernel_name = app.kernel.fn.name
    for rate in NAIVE_RATES:
        rewritten = perforate_all_loops(app.kernel.module, kernel_name, rate)
        if rewritten is None:
            return []  # no loops at all: perforation has nothing to do
        module, name = rewritten
        variants.append(
            ApproxKernel(
                name=name,
                pattern=Pattern.REDUCTION,
                kernel=name,
                module=module,
                knobs={"skipping_rate": rate, "naive": True},
                aggressiveness=float(rate),
            )
        )
    return variants


class _PerforatedScanVariant:
    """Scan with a naively perforated Phase I (uniform iteration skipping,
    the cascading-error case of §4.4.3)."""

    def __init__(self, rate: int) -> None:
        self.rate = rate
        self.name = f"cumhist__naive_skip{rate}"
        self.knobs = {"skipping_rate": rate, "naive": True}
        self.aggressiveness = float(rate)
        module, kernel_name = perforate_all_loops(
            scan_phase1.module, "scan_phase1", rate
        )
        self._module = module
        self._kernel = module[kernel_name]

    def run(self, program: ScanProgram, x):
        program.phase1_kernel = self._kernel
        program.phase1_module = self._module
        return program.run(x)


def run(toq: float = 0.90, seed: int = 0) -> ExperimentResult:
    paraprox = Paraprox(target_quality=toq)
    tuner = GreedyTuner(spec_for(DeviceKind.GPU), toq=toq)
    result = ExperimentResult(
        experiment="fig14",
        title="Reduction-only (naive perforation) vs pattern-based, GPU, TOQ=90%",
        columns=[
            "application",
            "reduction_only_speedup",
            "reduction_only_quality",
            "pattern_based_speedup",
            "pattern_based_quality",
        ],
    )
    naive_speedups, pattern_speedups = [], []
    for name in FIG14_APPS:
        app = make_app(name, seed=seed)
        inputs = app.generate_inputs(seed)
        naive = tuner.profile(app, _naive_variants(app), inputs)
        pattern = paraprox.optimize(app, DeviceKind.GPU)
        naive_speedups.append(naive.speedup)
        pattern_speedups.append(pattern.speedup)
        result.rows.append(
            {
                "application": app.info.name,
                "reduction_only_speedup": naive.speedup,
                "reduction_only_quality": naive.quality,
                "pattern_based_speedup": pattern.speedup,
                "pattern_based_quality": pattern.quality,
            }
        )
    mean_naive = sum(naive_speedups) / len(naive_speedups)
    mean_pattern = sum(pattern_speedups) / len(pattern_speedups)
    result.notes.append(
        f"mean: reduction-only {mean_naive:.2f}x vs pattern-based "
        f"{mean_pattern:.2f}x (paper: ~1.25x vs 2.3x)"
    )
    return result
