"""CLI: ``python -m repro.experiments [names...]`` regenerates the paper's
tables and figures as text tables (all of them when no name is given)."""

from __future__ import annotations

import argparse
import sys
import time

from . import ALL_EXPERIMENTS


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate Paraprox evaluation tables/figures.",
    )
    parser.add_argument(
        "names",
        nargs="*",
        help=f"experiments to run (default: all of {', '.join(ALL_EXPERIMENTS)})",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--save",
        metavar="DIR",
        default=None,
        help="also write <DIR>/<name>.txt and <DIR>/<name>.json per experiment",
    )
    args = parser.parse_args(argv)

    names = args.names or list(ALL_EXPERIMENTS)
    unknown = [n for n in names if n not in ALL_EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiments: {unknown}")
    save_dir = None
    if args.save:
        from pathlib import Path

        save_dir = Path(args.save)
        save_dir.mkdir(parents=True, exist_ok=True)
    for name in names:
        start = time.perf_counter()
        result = ALL_EXPERIMENTS[name].run(seed=args.seed)
        print(result.to_text())
        print(f"[{name} finished in {time.perf_counter() - start:.1f}s]")
        print()
        if save_dir is not None:
            (save_dir / f"{name}.txt").write_text(result.to_text() + "\n")
            (save_dir / f"{name}.json").write_text(result.to_json() + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
