"""Experiment harness: one module per paper table/figure.

Each module exposes ``run(...) -> ExperimentResult``; ``run_all`` executes
the full evaluation and renders the tables.
"""

from . import (
    ablations,
    scale_study,
    fig04,
    fig05,
    fig11,
    fig12,
    fig13,
    fig14,
    fig15,
    fig16,
    fig17,
    fig18,
    table1,
)
from .base import ExperimentResult

ALL_EXPERIMENTS = {
    "table1": table1,
    "ablations": ablations,
    "scale_study": scale_study,
    "fig04": fig04,
    "fig05": fig05,
    "fig11": fig11,
    "fig12": fig12,
    "fig13": fig13,
    "fig14": fig14,
    "fig15": fig15,
    "fig16": fig16,
    "fig17": fig17,
    "fig18": fig18,
}


def run_all(seed: int = 0):
    """Run every experiment; returns {name: ExperimentResult}."""
    return {name: module.run(seed=seed) for name, module in ALL_EXPERIMENTS.items()}


__all__ = ["ExperimentResult", "ALL_EXPERIMENTS", "run_all"]
