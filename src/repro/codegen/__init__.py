"""Compile IR kernels to specialized NumPy callables.

The interpreter (:mod:`repro.engine.interpreter`) re-walks the IR tree on
every launch; on the serving hot path the same kernel variant runs
thousands of times, so per-launch dispatch dominates.  This package
lowers a kernel once to straight-line NumPy source — reproducing the
interpreter's semantics bit-for-bit — compiles it with
``compile()``/``exec`` and caches the callable by IR fingerprint.

Layers:

* :mod:`~repro.codegen.lower` — IR -> Python/NumPy source emitter.
* :mod:`~repro.codegen.runtime` — helpers the generated code calls
  (masked assignment, bounds checks, lane liveness, grid geometry).
* :mod:`~repro.codegen.fingerprint` — stable IR digests for cache keys.
* :mod:`~repro.codegen.cache` — fingerprint -> compiled callable, with
  compile-time statistics for ``serve.metrics``.
* :mod:`~repro.codegen.check` — differential harness asserting bit-exact
  agreement with the interpreter (``python -m repro.codegen.check``).

Backend selection lives in :mod:`repro.engine.launch`
(``backend="interp" | "codegen" | "auto"``).
"""

from ..errors import CodegenError
from .cache import (
    CompiledKernel,
    cache_size,
    classify_lowering,
    clear_cache,
    get_compiled,
    stats_snapshot,
    v2_enabled,
)
from .check import DiffResult, check_apps, check_approx_apps, diff_app, diff_kernel
from .fingerprint import fingerprint_kernel
from .lower import lower_kernel, lower_kernel_ex

__all__ = [
    "CodegenError",
    "CompiledKernel",
    "get_compiled",
    "clear_cache",
    "cache_size",
    "classify_lowering",
    "stats_snapshot",
    "v2_enabled",
    "fingerprint_kernel",
    "lower_kernel",
    "lower_kernel_ex",
    "DiffResult",
    "diff_kernel",
    "diff_app",
    "check_apps",
    "check_approx_apps",
]
