"""Differential testing harness: interpreter vs codegen, bit for bit.

Every kernel the codegen backend can execute must produce *identical
bytes* to the interpreter — not merely close values.  This module runs a
kernel (or a whole application) under both backends on the same seeded
inputs and compares every output array with ``tobytes()`` equality, so a
lowering bug can never hide behind a tolerance.

Usage from tests::

    result = diff_kernel(my_kernel, grid, args)
    assert result.ok, result.describe()

or over the full app registry (what CI runs)::

    python -m repro.codegen.check
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from .._options import options
from ..engine.launch import Grid


@dataclass
class DiffResult:
    """Outcome of one two-backend comparison."""

    name: str
    ok: bool
    mismatches: List[str] = field(default_factory=list)

    def describe(self) -> str:
        if self.ok:
            return f"{self.name}: backends agree bit-exactly"
        detail = "; ".join(self.mismatches)
        return f"{self.name}: backends DIVERGE — {detail}"


def _compare_arrays(name: str, a: np.ndarray, b: np.ndarray) -> Optional[str]:
    """A human-readable mismatch description, or None when bit-identical."""
    if a.dtype != b.dtype or a.shape != b.shape:
        return f"{name}: dtype/shape {a.dtype}{a.shape} vs {b.dtype}{b.shape}"
    if a.tobytes() == b.tobytes():
        return None
    diff = np.flatnonzero(a.view(np.uint8) != b.view(np.uint8))
    first = int(diff[0]) // max(a.dtype.itemsize, 1)
    flat_a, flat_b = a.reshape(-1), b.reshape(-1)
    return (
        f"{name}: {diff.size} differing bytes, first at element {first} "
        f"(interp={flat_a[first]!r}, codegen={flat_b[first]!r})"
    )


def diff_kernel(
    kernel,
    grid: Grid,
    args: Sequence,
    module=None,
    bounds_check: bool = True,
) -> DiffResult:
    """Launch ``kernel`` under both backends on copies of ``args``.

    Array arguments are deep-copied per backend (kernels mutate them in
    place); every array argument is then compared, which covers outputs
    and any scratch buffers the kernel writes.
    """
    from ..engine.interpreter import launch

    from .lower import lower_kernel  # surface CodegenError eagerly, not mid-diff
    from ..engine.launch import resolve_kernel, resolve_module

    fn = resolve_kernel(kernel)
    lower_kernel(fn, resolve_module(kernel, module), bounds_check)

    runs: Dict[str, List[np.ndarray]] = {}
    for backend in ("interp", "codegen"):
        local = [
            a.copy() if isinstance(a, np.ndarray) else a for a in args
        ]
        launch(
            kernel,
            grid,
            local,
            module=module,
            bounds_check=bounds_check,
            backend=backend,
        )
        runs[backend] = [a for a in local if isinstance(a, np.ndarray)]

    mismatches = []
    array_index = 0
    for a, b in zip(runs["interp"], runs["codegen"]):
        note = _compare_arrays(f"array[{array_index}]", a, b)
        if note is not None:
            mismatches.append(note)
        array_index += 1
    return DiffResult(name=fn.name, ok=not mismatches, mismatches=mismatches)


def diff_app(app, inputs=None) -> DiffResult:
    """Run one application's exact pipeline under both backends.

    Uses a :func:`repro.options` backend scope so multi-kernel
    ``Program`` apps (scan, sort-based pipelines) are covered without the
    app knowing about backends.  Compares the full output array(s).
    """
    if inputs is None:
        inputs = app.generate_inputs()
    outputs: Dict[str, List[np.ndarray]] = {}
    for backend in ("interp", "codegen"):
        with options(backend=backend):
            out = app.run_exact(copy.deepcopy(inputs))
        # run_exact returns (output, trace); keep only the data arrays —
        # traces legitimately differ (codegen records the launch, not ops).
        parts = out if isinstance(out, (tuple, list)) else [out]
        outputs[backend] = [
            np.asarray(p) for p in parts if isinstance(p, np.ndarray)
        ]
    name = type(app).__name__
    mismatches = []
    for i, (a, b) in enumerate(zip(outputs["interp"], outputs["codegen"])):
        note = _compare_arrays(f"output[{i}]", a, b)
        if note is not None:
            mismatches.append(note)
    return DiffResult(name=name, ok=not mismatches, mismatches=mismatches)


def check_apps(names: Optional[Sequence[str]] = None, verbose: bool = True) -> List[DiffResult]:
    """Differential-check every registered application (CI entry point)."""
    from ..apps.registry import APP_CLASSES, make_app

    results = []
    for name in names if names is not None else sorted(APP_CLASSES):
        app = make_app(name, seed=0)
        result = diff_app(app)
        results.append(result)
        if verbose:
            status = "ok " if result.ok else "FAIL"
            print(f"[{status}] {name}: {result.describe()}")
    return results


def diff_variant(app, variant, inputs=None) -> DiffResult:
    """Run one approximate variant under both backends, bit-exactly.

    Approximation changes *what* the program computes; the lowering must
    not change it further — for a fixed knob setting the compiled variant
    (including every v2 specialization) and the interpreter running the
    same transformed IR must agree to the byte.
    """
    if inputs is None:
        inputs = app.generate_inputs()
    outputs: Dict[str, List[np.ndarray]] = {}
    for backend in ("interp", "codegen"):
        with options(backend=backend):
            out = app.run_variant(variant, copy.deepcopy(inputs))
        parts = out if isinstance(out, (tuple, list)) else [out]
        outputs[backend] = [
            np.asarray(p) for p in parts if isinstance(p, np.ndarray)
        ]
    name = f"{type(app).__name__}:{getattr(variant, 'name', variant)}"
    mismatches = []
    for i, (a, b) in enumerate(zip(outputs["interp"], outputs["codegen"])):
        note = _compare_arrays(f"output[{i}]", a, b)
        if note is not None:
            mismatches.append(note)
    return DiffResult(name=name, ok=not mismatches, mismatches=mismatches)


def check_approx_apps(
    names: Optional[Sequence[str]] = None,
    verbose: bool = True,
    per_transform: Optional[int] = None,
) -> Dict[str, List[DiffResult]]:
    """Differential-check the *approximate* variants of every app.

    For each app the full variant set is generated (every transform at
    every knob setting the compiler emits) and each variant runs under
    both backends on the same seeded inputs; tagged variants take the v2
    lowering, so this is the harness that proves the approx-specialized
    code paths bit-exact.  ``per_transform`` caps how many knob settings
    per (pattern, transform) group are checked (None = all).
    """
    from ..approx.base import variant_lowering
    from ..approx.compiler import Paraprox
    from ..apps.registry import APP_CLASSES, make_app

    all_results: Dict[str, List[DiffResult]] = {}
    for name in names if names is not None else sorted(APP_CLASSES):
        app = make_app(name, seed=0)
        variant_set = Paraprox(target_quality=0.9).compile(app)
        selected = list(variant_set)
        if per_transform is not None:
            by_group: Dict[str, List[object]] = {}
            for v in variant_set:
                pattern = getattr(v, "pattern", None)
                by_group.setdefault(getattr(pattern, "value", "?"), []).append(v)
            selected = [
                v for group in by_group.values() for v in group[:per_transform]
            ]
        inputs = app.generate_inputs()
        results: List[DiffResult] = []
        for variant in selected:
            result = diff_variant(app, variant, inputs)
            results.append(result)
            if verbose:
                status = "ok " if result.ok else "FAIL"
                mode, _detail = variant_lowering(variant)
                print(f"[{status}] {result.name} [{mode}]: {result.describe()}")
        if verbose and not selected:
            print(f"[ok ] {name}: no approximate variants generated")
        all_results[name] = results
    return all_results


def main(argv: Optional[Sequence[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.codegen.check",
        description="Assert interpreter and codegen backends agree bit-exactly "
        "on every registered application.",
    )
    parser.add_argument("apps", nargs="*", help="app names (default: all)")
    parser.add_argument(
        "--approx",
        action="store_true",
        help="diff every app's approximate variants (v2 lowering) instead of "
        "the exact pipelines",
    )
    parser.add_argument(
        "--per-transform",
        type=int,
        default=None,
        metavar="N",
        help="with --approx: check at most N knob settings per transform",
    )
    ns = parser.parse_args(argv)
    if ns.approx:
        per_app = check_approx_apps(ns.apps or None, per_transform=ns.per_transform)
        ok_apps = sum(1 for rs in per_app.values() if all(r.ok for r in rs))
        total_variants = sum(len(rs) for rs in per_app.values())
        failed_variants = sum(1 for rs in per_app.values() for r in rs if not r.ok)
        print(
            f"{ok_apps}/{len(per_app)} apps bit-exact across "
            f"{total_variants} approximate variant(s) "
            f"({failed_variants} failing)"
        )
        return 1 if failed_variants else 0
    results = check_apps(ns.apps or None)
    failed = [r for r in results if not r.ok]
    print(f"{len(results) - len(failed)}/{len(results)} apps bit-exact")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
