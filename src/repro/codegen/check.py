"""Differential testing harness: interpreter vs codegen, bit for bit.

Every kernel the codegen backend can execute must produce *identical
bytes* to the interpreter — not merely close values.  This module runs a
kernel (or a whole application) under both backends on the same seeded
inputs and compares every output array with ``tobytes()`` equality, so a
lowering bug can never hide behind a tolerance.

Usage from tests::

    result = diff_kernel(my_kernel, grid, args)
    assert result.ok, result.describe()

or over the full app registry (what CI runs)::

    python -m repro.codegen.check
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from .._options import options
from ..engine.launch import Grid


@dataclass
class DiffResult:
    """Outcome of one two-backend comparison."""

    name: str
    ok: bool
    mismatches: List[str] = field(default_factory=list)

    def describe(self) -> str:
        if self.ok:
            return f"{self.name}: backends agree bit-exactly"
        detail = "; ".join(self.mismatches)
        return f"{self.name}: backends DIVERGE — {detail}"


def _compare_arrays(name: str, a: np.ndarray, b: np.ndarray) -> Optional[str]:
    """A human-readable mismatch description, or None when bit-identical."""
    if a.dtype != b.dtype or a.shape != b.shape:
        return f"{name}: dtype/shape {a.dtype}{a.shape} vs {b.dtype}{b.shape}"
    if a.tobytes() == b.tobytes():
        return None
    diff = np.flatnonzero(a.view(np.uint8) != b.view(np.uint8))
    first = int(diff[0]) // max(a.dtype.itemsize, 1)
    flat_a, flat_b = a.reshape(-1), b.reshape(-1)
    return (
        f"{name}: {diff.size} differing bytes, first at element {first} "
        f"(interp={flat_a[first]!r}, codegen={flat_b[first]!r})"
    )


def diff_kernel(
    kernel,
    grid: Grid,
    args: Sequence,
    module=None,
    bounds_check: bool = True,
) -> DiffResult:
    """Launch ``kernel`` under both backends on copies of ``args``.

    Array arguments are deep-copied per backend (kernels mutate them in
    place); every array argument is then compared, which covers outputs
    and any scratch buffers the kernel writes.
    """
    from ..engine.interpreter import launch

    from .lower import lower_kernel  # surface CodegenError eagerly, not mid-diff
    from ..engine.launch import resolve_kernel, resolve_module

    fn = resolve_kernel(kernel)
    lower_kernel(fn, resolve_module(kernel, module), bounds_check)

    runs: Dict[str, List[np.ndarray]] = {}
    for backend in ("interp", "codegen"):
        local = [
            a.copy() if isinstance(a, np.ndarray) else a for a in args
        ]
        launch(
            kernel,
            grid,
            local,
            module=module,
            bounds_check=bounds_check,
            backend=backend,
        )
        runs[backend] = [a for a in local if isinstance(a, np.ndarray)]

    mismatches = []
    array_index = 0
    for a, b in zip(runs["interp"], runs["codegen"]):
        note = _compare_arrays(f"array[{array_index}]", a, b)
        if note is not None:
            mismatches.append(note)
        array_index += 1
    return DiffResult(name=fn.name, ok=not mismatches, mismatches=mismatches)


def diff_app(app, inputs=None) -> DiffResult:
    """Run one application's exact pipeline under both backends.

    Uses a :func:`repro.options` backend scope so multi-kernel
    ``Program`` apps (scan, sort-based pipelines) are covered without the
    app knowing about backends.  Compares the full output array(s).
    """
    if inputs is None:
        inputs = app.generate_inputs()
    outputs: Dict[str, List[np.ndarray]] = {}
    for backend in ("interp", "codegen"):
        with options(backend=backend):
            out = app.run_exact(copy.deepcopy(inputs))
        # run_exact returns (output, trace); keep only the data arrays —
        # traces legitimately differ (codegen records the launch, not ops).
        parts = out if isinstance(out, (tuple, list)) else [out]
        outputs[backend] = [
            np.asarray(p) for p in parts if isinstance(p, np.ndarray)
        ]
    name = type(app).__name__
    mismatches = []
    for i, (a, b) in enumerate(zip(outputs["interp"], outputs["codegen"])):
        note = _compare_arrays(f"output[{i}]", a, b)
        if note is not None:
            mismatches.append(note)
    return DiffResult(name=name, ok=not mismatches, mismatches=mismatches)


def check_apps(names: Optional[Sequence[str]] = None, verbose: bool = True) -> List[DiffResult]:
    """Differential-check every registered application (CI entry point)."""
    from ..apps.registry import APP_CLASSES, make_app

    results = []
    for name in names if names is not None else sorted(APP_CLASSES):
        app = make_app(name, seed=0)
        result = diff_app(app)
        results.append(result)
        if verbose:
            status = "ok " if result.ok else "FAIL"
            print(f"[{status}] {name}: {result.describe()}")
    return results


def main(argv: Optional[Sequence[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.codegen.check",
        description="Assert interpreter and codegen backends agree bit-exactly "
        "on every registered application.",
    )
    parser.add_argument("apps", nargs="*", help="app names (default: all)")
    ns = parser.parse_args(argv)
    results = check_apps(ns.apps or None)
    failed = [r for r in results if not r.ok]
    print(f"{len(results) - len(failed)}/{len(results)} apps bit-exact")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
