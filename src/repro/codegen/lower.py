"""Lower a typed IR kernel to specialized Python/NumPy source.

The generated function is the interpreter *partially evaluated* over one
IR tree: tree dispatch, per-op trace counting and per-access coalescing
statistics disappear, while every value-producing operation is emitted as
the same NumPy expression (or a :mod:`repro.codegen.runtime` helper that
extracts the corresponding interpreter code path), keeping the results
bit-identical.

Lowering rules, in interpreter terms:

* **Predication.**  A thread-divergent ``if`` becomes two complementary
  masks; arm bodies run under ``if rt.any_lanes(mask)`` and assignments
  merge with ``np.where``.  Conditions the varying analysis cannot prove
  divergent get a dual path: a runtime ``np.ndim(cond) == 0`` test picks
  the uniform (unmasked) or masked emission, exactly like ``_exec_if``.
* **Lane deactivation.**  Functions containing ``return`` carry runtime
  ``_ret``/``_retm``/``_retall`` state; statements after a
  possibly-returning statement are guarded by ``if not _retall`` and the
  live mask is ``mask & ~_retm``, matching ``_exec_return``/``_live_mask``.
* **Locals.**  Every local starts as the ``rt.UNSET`` sentinel so that
  "first write under a mask binds the full value" (the interpreter's
  env-membership rule) is reproduced by ``rt.assign``.
* **Loops** enforce uniform bounds through ``rt.uniform_int`` and bind the
  loop variable as a plain ``np.int32`` even under predication.
* **Memory.**  Loads/stores/atomics clamp indices and bounds-check live
  lanes only; shared allocations use the interpreter's per-x-block sizing.

Unsupported shapes (device functions touching arrays, unknown calls)
raise :class:`~repro.errors.CodegenError`; the ``auto`` backend falls
back to the interpreter in that case.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from ..errors import CodegenError
from ..kernel import intrinsics, ir
from ..kernel.visitors import walk_statements
from . import runtime as _runtime
from .fingerprint import reachable_device_functions
from .fold import compute_intervals, fold_function, interval_of

#: Ceiling on generated source size; dual-path emission of deeply nested
#: uniform conditionals could otherwise blow up exponentially.
MAX_LINES = 20_000

#: Thread intrinsics that always evaluate to a ``(T,)`` array.
VARYING_INTRINSICS = frozenset(
    {
        "global_id",
        "thread_id",
        "block_id",
        "global_id_x",
        "global_id_y",
        "thread_id_x",
        "thread_id_y",
        "block_id_x",
        "block_id_y",
    }
)

#: intrinsic name -> Geometry attribute (mirrors ``_eval_call``).
_INTRINSIC_ATTR = {
    "global_id": "gid",
    "thread_id": "tid",
    "block_id": "bid",
    "block_dim": "bdim",
    "grid_dim": "gdim",
    "global_id_x": "gidx",
    "global_id_y": "gidy",
    "thread_id_x": "tidx",
    "thread_id_y": "tidy",
    "block_id_x": "bidx",
    "block_id_y": "bidy",
    "block_dim_x": "bdim",
    "block_dim_y": "bdimy",
    "grid_dim_x": "gdim",
    "grid_dim_y": "gdimy",
}

_ARITH_FUNCS = {
    "add": "np.add",
    "sub": "np.subtract",
    "mul": "np.multiply",
    "and": "np.bitwise_and",
    "or": "np.bitwise_or",
    "xor": "np.bitwise_xor",
    "shl": "np.left_shift",
    "shr": "np.right_shift",
}

#: Comparisons/logic already produce bool scalars/arrays identical to the
#: interpreter's post-cast values, so no ``cast_result`` wrapper is needed.
_CMP_FUNCS = {
    "lt": "np.less",
    "le": "np.less_equal",
    "gt": "np.greater",
    "ge": "np.greater_equal",
    "eq": "np.equal",
    "ne": "np.not_equal",
    "land": "np.logical_and",
    "lor": "np.logical_or",
}


class _Ctx:
    """Lexical emission context: current mask expression and the locals
    statically known to be bound at this point."""

    __slots__ = ("mask", "defined", "dynamic")

    def __init__(self, mask: Optional[str], defined: Set[str], dynamic: bool):
        self.mask = mask  # python expr for frame.mask; None = all lanes live
        self.defined = defined
        self.dynamic = dynamic  # function tracks _ret/_retm/_retall

    def copy(self, mask: Optional[str] = None) -> "_Ctx":
        return _Ctx(mask if mask is not None else self.mask, set(self.defined), self.dynamic)


class _Emitter:
    def __init__(self, module: ir.Module, bounds_check: bool, mode: str = "v1") -> None:
        if mode not in ("v1", "v2"):
            raise CodegenError(f"unknown lowering mode {mode!r}")
        self.module = module
        self.bounds_check = bool(bounds_check)
        self.mode = mode
        self.lines: List[str] = []
        self.globals: Dict[str, object] = {"np": np, "rt": _runtime}
        self._consts: Dict[Tuple[str, str], str] = {}
        self._counter = 0
        # v2 (approx-specialized) lowering accomplishments, for the
        # lowering-outcome detail string and the codegen stats.
        self.v2_info: Dict[str, int] = {
            "folded": 0,
            "reassociated": 0,
            "table_gathers": 0,
            "cast_elisions": 0,
        }
        # per-function state
        self.fname = ""
        self.param_names: Set[str] = set()
        self.shared: Dict[str, int] = {}  # name -> in-block size (shape[0])
        self.varying: Set[str] = set()
        self._varying_devices: Set[str] = set()
        self.tables: Dict[str, int] = {}  # table param -> proven entry count
        self.intervals: Dict[str, Tuple[float, float]] = {}
        self._static: Dict[str, str] = {}  # var -> proven runtime np dtype name
        self._elide = False

    # ------------------------------------------------------------- plumbing

    def emit(self, indent: int, text: str) -> None:
        self.lines.append("    " * indent + text)
        if len(self.lines) > MAX_LINES:
            raise CodegenError(
                f"{self.fname}: generated source exceeds {MAX_LINES} lines "
                "(deeply nested non-divergent conditionals)"
            )

    def tmp(self) -> str:
        self._counter += 1
        return f"_t{self._counter}"

    def const(self, value, dtype) -> str:
        key = (dtype.name, repr(value))
        name = self._consts.get(key)
        if name is None:
            name = f"_k{len(self._consts)}"
            self._consts[key] = name
            self.globals[name] = dtype.to_numpy().type(value)
        return name

    def np_dtype(self, dtype) -> str:
        name = f"_d_{dtype.name}"
        if name not in self.globals:
            self.globals[name] = dtype.to_numpy()
        return name

    def builtin_fn(self, builtin) -> str:
        name = f"_f_{builtin.name}"
        if name not in self.globals:
            self.globals[name] = builtin.evaluate
        return name

    # -------------------------------------------------------------- analysis

    def _device_produces_varying(self, name: str) -> bool:
        """Whether a device function's body references thread ids, making
        its result an array irrespective of the arguments."""
        if name in self._varying_devices:
            return True
        fn = self.module[name]
        for dev in [fn] + reachable_device_functions(fn, self.module):
            for stmt in walk_statements(dev.body):
                for node in _walk_exprs(stmt):
                    if isinstance(node, ir.Call) and node.func in VARYING_INTRINSICS:
                        self._varying_devices.add(name)
                        return True
        return False

    def expr_varying(self, expr) -> bool:
        """Sound "definitely a (T,) array at runtime" check.

        Drives emission shape only: a True result lets a conditional skip
        its uniform path.  False merely means "could be scalar", which
        costs a runtime ``np.ndim`` test, never correctness.
        """
        if isinstance(expr, (ir.Const, ir.ArrayRef)):
            return False
        if isinstance(expr, ir.Var):
            return expr.name in self.varying
        if isinstance(expr, ir.BinOp):
            return self.expr_varying(expr.left) or self.expr_varying(expr.right)
        if isinstance(expr, (ir.UnOp, ir.Cast)):
            return self.expr_varying(expr.operand)
        if isinstance(expr, ir.Select):
            # np.where with an array condition always yields an array; a
            # scalar condition picks one arm, so both must be arrays.
            return self.expr_varying(expr.cond) or (
                self.expr_varying(expr.if_true) and self.expr_varying(expr.if_false)
            )
        if isinstance(expr, ir.Load):
            return self.expr_varying(expr.index)
        if isinstance(expr, ir.Call):
            if expr.func in VARYING_INTRINSICS:
                return True
            if intrinsics.is_builtin(expr.func) and expr.func not in ir.THREAD_INTRINSICS:
                return any(self.expr_varying(a) for a in expr.args)
            if expr.func in self.module and self.module[expr.func].kind == "device":
                if self._device_produces_varying(expr.func):
                    return True
                return any(self.expr_varying(a) for a in expr.args)
            return False
        return False

    def _compute_varying(self, fn: ir.Function) -> Set[str]:
        """Fixpoint: a local is definitely varying iff it is assigned at
        least once and *every* assignment's RHS is definitely varying
        (merges under masks never turn an array back into a scalar)."""
        assigns: Dict[str, List[ir.Expr]] = {}
        loop_vars: Set[str] = set()
        for stmt in walk_statements(fn.body):
            if isinstance(stmt, ir.Assign):
                assigns.setdefault(stmt.target, []).append(stmt.value)
            elif isinstance(stmt, ir.For):
                loop_vars.add(stmt.var)
        self.varying = set()
        changed = True
        while changed:
            changed = False
            for name, values in assigns.items():
                if name in self.varying or name in loop_vars:
                    continue
                if all(self.expr_varying(v) for v in values):
                    self.varying.add(name)
                    changed = True
        return self.varying

    # ------------------------------------------------- static dtypes (v2)

    def _static_dtype(self, expr: ir.Expr) -> Optional[str]:
        """The NumPy dtype name this expression provably has at runtime
        under *this emitter's* emission strategy, or ``None``.

        Sound because the strategy itself enforces it: every BinOp,
        builtin call, Cast and Select is emitted either wrapped in a
        coercion to ``expr.dtype`` or (elision) only when its operands
        already prove that dtype; loads yield the buffer's element type
        (validated by ``bind_arguments``); thread intrinsics read the
        int32 :class:`~repro.codegen.runtime.Geometry` arrays."""
        if isinstance(expr, ir.Const):
            return expr.dtype.np_dtype
        if isinstance(expr, ir.Var):
            return self._static.get(expr.name)
        if isinstance(expr, ir.BinOp):
            if expr.op in _CMP_FUNCS:
                return "bool"
            return expr.dtype.np_dtype
        if isinstance(expr, ir.UnOp):
            if expr.op == "lnot":
                return "bool"
            return self._static_dtype(expr.operand)  # neg/bnot preserve dtype
        if isinstance(expr, ir.Cast):
            return expr.dtype.np_dtype
        if isinstance(expr, ir.Select):
            return expr.dtype.np_dtype  # rt.select coerces both arms
        if isinstance(expr, ir.Load):
            return expr.array.type.dtype.np_dtype
        if isinstance(expr, ir.Call):
            if expr.func in _INTRINSIC_ATTR:
                return "int32"
            if intrinsics.is_builtin(expr.func):
                return expr.dtype.np_dtype  # cast_result-wrapped
            return None  # device calls: result dtype not guaranteed
        return None

    def _compute_static_dtypes(self, fn: ir.Function) -> Dict[str, str]:
        """Fixpoint over assignments: a local has a proven dtype iff every
        assignment's RHS proves the same dtype (params seed with their
        declared dtype — ``bind_arguments`` casts scalars and validates
        arrays; loop vars are bound as ``np.int32``)."""
        seeds: Dict[str, str] = {}
        for p in fn.params:
            if not p.is_array:
                seeds[p.name] = p.type.dtype.np_dtype
        for stmt in walk_statements(fn.body):
            if isinstance(stmt, ir.For):
                seeds[stmt.var] = "int32"
        known = dict(seeds)
        poison: Set[str] = set()
        self._static = known
        for _ in range(2 * len(known) + 2 + sum(
            1 for s in walk_statements(fn.body) if isinstance(s, ir.Assign)
        )):
            changed = False
            for stmt in walk_statements(fn.body):
                if not isinstance(stmt, ir.Assign) or stmt.target in poison:
                    continue
                d = self._static_dtype(stmt.value)
                cur = known.get(stmt.target)
                if d is None or (cur is not None and cur != d):
                    poison.add(stmt.target)
                    known.pop(stmt.target, None)
                    changed = True
                elif cur is None:
                    known[stmt.target] = d
                    changed = True
            if not changed:
                break
        return known

    # ------------------------------------------------------------- functions

    def emit_function(self, fn: ir.Function) -> str:
        if self.mode == "v2":
            # Exact-semantics constant folding: knob values baked into the
            # IR by the approximation transforms become foldable literals.
            fn, fstats = fold_function(fn)
            self.v2_info["folded"] += fstats.folded
            self.v2_info["reassociated"] += fstats.reassociated
        meta = getattr(fn, "approx", None)
        if self.mode == "v2" and fn.kind == "kernel":
            self.tables = dict(meta.tables) if meta is not None else {}
            self.intervals = compute_intervals(fn)
            self._static = self._compute_static_dtypes(fn)
            self._elide = True
        else:
            self.tables = {}
            self.intervals = {}
            self._static = {}
            self._elide = False
        self.fname = fn.name
        self.param_names = {p.name for p in fn.params}
        self.shared = {}
        total_elems: Dict[str, int] = {}
        for stmt in walk_statements(fn.body):
            if isinstance(stmt, ir.SharedAlloc):
                shape = tuple(stmt.shape)
                self.shared[stmt.name] = int(shape[0])
                total_elems[stmt.name] = int(np.prod(shape))
        self._compute_varying(fn)

        is_kernel = fn.kind == "kernel"
        dynamic = (not is_kernel) or any(
            isinstance(s, ir.Return) for s in walk_statements(fn.body)
        )
        params = ", ".join(f"v_{p.name}" for p in fn.params)
        if is_kernel:
            name = f"_kernel_{fn.name}"
            self.emit(0, f"def {name}(_G, {params}):")
            self.emit(1, "_T = _G.T")
        else:
            for p in fn.params:
                if p.is_array:
                    raise CodegenError(
                        f"{fn.name}: device functions with array parameters "
                        "are not lowered"
                    )
            name = f"_dev_{fn.name}"
            self.emit(0, f"def {name}({params}, _mask, _retm, _T):")
            self.emit(1, "_retm = rt.copy_retm(_retm)")
        if dynamic:
            self.emit(1, "_ret = None")
            self.emit(1, "_retall = False")
            if is_kernel:
                self.emit(1, "_retm = None")
        local_names = sorted(
            {
                s.target
                for s in walk_statements(fn.body)
                if isinstance(s, ir.Assign)
            }
            | {s.var for s in walk_statements(fn.body) if isinstance(s, ir.For)}
            | set(self.shared)
        )
        for local in local_names:
            if local not in self.param_names:
                prefix = "_sh_" if local in self.shared else "v_"
                self.emit(1, f"{prefix}{local} = rt.UNSET")
        self.emit(1, 'with np.errstate(divide="ignore", invalid="ignore", over="ignore"):')
        ctx = _Ctx("_mask" if not is_kernel else None, set(), dynamic)
        self._shared_totals = total_elems
        self.emit_body(fn.body, ctx, 2)
        if not is_kernel:
            self.emit(1, f"return rt.device_result(_ret, {fn.name!r})")
        self.emit(0, "")
        return name

    # ------------------------------------------------------------ statements

    def emit_body(self, body: List[ir.Stmt], ctx: _Ctx, indent: int) -> None:
        if not body:
            self.emit(indent, "pass")
            return
        for i, stmt in enumerate(body):
            self.emit_stmt(stmt, ctx, indent)
            if ctx.dynamic and i + 1 < len(body) and _can_return(stmt):
                # _exec_body re-checks returned_all before each statement;
                # it only changes when a return executed, so one guard after
                # each possibly-returning statement is equivalent.
                self.emit(indent, "if not _retall:")
                indent += 1

    def emit_stmt(self, stmt: ir.Stmt, ctx: _Ctx, indent: int) -> None:
        if isinstance(stmt, ir.Assign):
            self._emit_assign(stmt, ctx, indent)
        elif isinstance(stmt, ir.Store):
            self._emit_store(stmt, ctx, indent)
        elif isinstance(stmt, ir.AtomicRMW):
            self._emit_atomic(stmt, ctx, indent)
        elif isinstance(stmt, ir.If):
            self._emit_if(stmt, ctx, indent)
        elif isinstance(stmt, ir.For):
            self._emit_for(stmt, ctx, indent)
        elif isinstance(stmt, ir.Return):
            self._emit_return(stmt, ctx, indent)
        elif isinstance(stmt, ir.Barrier):
            # Lockstep whole-grid execution makes barriers no-ops, exactly
            # as in the interpreter (which only counts them in the trace).
            self.emit(indent, "pass")
        elif isinstance(stmt, ir.SharedAlloc):
            total = self._shared_totals[stmt.name]
            self.emit(
                indent,
                f"_sh_{stmt.name} = np.zeros(_G.nsb * {total}, "
                f"dtype={self.np_dtype(stmt.dtype)})",
            )
        else:
            raise CodegenError(f"{self.fname}: cannot lower {type(stmt).__name__}")

    def live_expr(self, ctx: _Ctx) -> str:
        mask = ctx.mask if ctx.mask is not None else "None"
        if ctx.dynamic:
            return f"rt.live_mask({mask}, _retm)"
        return mask

    def _emit_assign(self, stmt: ir.Assign, ctx: _Ctx, indent: int) -> None:
        value = self.emit_expr(stmt.value, ctx)
        target = stmt.target
        bound = target in ctx.defined or target in self.param_names
        if ctx.mask is None and not ctx.dynamic:
            self.emit(indent, f"v_{target} = {value}")
        elif bound and not ctx.dynamic:
            self.emit(indent, f"v_{target} = np.where({ctx.mask}, {value}, v_{target})")
        else:
            self.emit(
                indent,
                f"v_{target} = rt.assign(v_{target}, {value}, {self.live_expr(ctx)})",
            )
        ctx.defined.add(target)

    def _array_kind(self, ref: ir.ArrayRef) -> Tuple[bool, str]:
        """(is_shared, buffer expression) for an array reference."""
        if ref.name in self.shared:
            return True, f"_sh_{ref.name}"
        if ref.name in self.param_names:
            return False, f"v_{ref.name}"
        raise CodegenError(f"{self.fname}: unbound array {ref.name!r}")

    def _emit_store(self, stmt: ir.Store, ctx: _Ctx, indent: int) -> None:
        idx = self.emit_expr(stmt.index, ctx)
        value = self.emit_expr(stmt.value, ctx)
        live = self.live_expr(ctx)
        shared, buf = self._array_kind(stmt.array)
        tail = f"{live}, _T, {self.bounds_check}, {self.fname!r}, {stmt.array.name!r})"
        if shared:
            size = self.shared[stmt.array.name]
            self.emit(
                indent,
                f"rt.store_shared({buf}, {size}, {idx}, {value}, _G.sbid, {tail}",
            )
        else:
            self.emit(indent, f"rt.store_global({buf}, {idx}, {value}, {tail}")

    def _emit_atomic(self, stmt: ir.AtomicRMW, ctx: _Ctx, indent: int) -> None:
        idx = self.emit_expr(stmt.index, ctx)
        value = self.emit_expr(stmt.value, ctx)
        live = self.live_expr(ctx)
        shared, buf = self._array_kind(stmt.array)
        tail = (
            f"{live}, _T, {stmt.op!r}, {self.bounds_check}, "
            f"{self.fname!r}, {stmt.array.name!r})"
        )
        if shared:
            size = self.shared[stmt.array.name]
            self.emit(
                indent,
                f"rt.atomic_shared({buf}, {size}, {idx}, {value}, _G.sbid, {tail}",
            )
        else:
            self.emit(indent, f"rt.atomic_global({buf}, {idx}, {value}, {tail}")

    def _emit_if(self, stmt: ir.If, ctx: _Ctx, indent: int) -> None:
        cond = self.tmp()
        self.emit(indent, f"{cond} = {self.emit_expr(stmt.cond, ctx)}")
        if self.expr_varying(stmt.cond):
            self._emit_masked_if(stmt, cond, ctx, indent)
            return
        # Possibly-uniform condition: replicate the interpreter's runtime
        # scalar/array dispatch.  The scalar arm executes the taken body
        # under the *parent* context (no new mask).
        self.emit(indent, f"if np.ndim({cond}) == 0:")
        self.emit(indent + 1, f"if bool({cond}):")
        self.emit_body(stmt.then_body, ctx.copy(), indent + 2)
        if stmt.else_body:
            self.emit(indent + 1, "else:")
            self.emit_body(stmt.else_body, ctx.copy(), indent + 2)
        self.emit(indent, "else:")
        self._emit_masked_if(stmt, cond, ctx, indent + 1)

    def _emit_masked_if(self, stmt: ir.If, cond: str, ctx: _Ctx, indent: int) -> None:
        base = ctx.mask if ctx.mask is not None else "None"
        self.emit(indent, f"{cond} = np.asarray({cond}, dtype=bool)")
        then_mask = self.tmp()
        self.emit(indent, f"{then_mask} = rt.and_mask({cond}, {base})")
        else_mask = None
        if stmt.else_body:
            else_mask = self.tmp()
            self.emit(indent, f"{else_mask} = rt.andnot_mask({cond}, {base})")
        for mask, body in ((then_mask, stmt.then_body), (else_mask, stmt.else_body)):
            if not body:
                continue
            self.emit(indent, f"if rt.any_lanes({mask}):")
            if ctx.dynamic:
                self.emit(indent + 1, "_retall = False")
            self.emit_body(body, ctx.copy(mask=mask), indent + 1)
        if ctx.dynamic:
            # Lanes that returned inside an arm stay inactive from here on.
            self.emit(
                indent,
                f"_retall = _retm is not None and "
                f"rt.live_count({base}, _retm, _T) == 0",
            )

    def _emit_for(self, stmt: ir.For, ctx: _Ctx, indent: int) -> None:
        start, stop, step = self.tmp(), self.tmp(), self.tmp()
        self.emit(
            indent,
            f"{start} = rt.uniform_int({self.emit_expr(stmt.start, ctx)}, "
            f"'loop start', {self.fname!r})",
        )
        self.emit(
            indent,
            f"{stop} = rt.uniform_int({self.emit_expr(stmt.stop, ctx)}, "
            f"'loop stop', {self.fname!r})",
        )
        self.emit(
            indent,
            f"{step} = rt.uniform_int({self.emit_expr(stmt.step, ctx)}, "
            f"'loop step', {self.fname!r})",
        )
        self.emit(indent, f"rt.check_step({step}, {self.fname!r})")
        counter = self.tmp()
        self.emit(indent, f"for {counter} in range({start}, {stop}, {step}):")
        body_ctx = ctx.copy()
        # The interpreter binds the loop variable straight into the env
        # (no mask merge), even under predication.
        self.emit(indent + 1, f"v_{stmt.var} = np.int32({counter})")
        body_ctx.defined.add(stmt.var)
        self.emit_body(stmt.body, body_ctx, indent + 1)
        if ctx.dynamic and _can_return(stmt):
            self.emit(indent + 1, "if _retall: break")

    def _emit_return(self, stmt: ir.Return, ctx: _Ctx, indent: int) -> None:
        value = "None" if stmt.value is None else self.emit_expr(stmt.value, ctx)
        mask = ctx.mask if ctx.mask is not None else "None"
        self.emit(
            indent,
            f"_ret, _retm, _retall = rt.do_return({value}, {mask}, _ret, _retm, _T)",
        )

    # ----------------------------------------------------------- expressions

    def emit_expr(self, expr: ir.Expr, ctx: _Ctx) -> str:
        if isinstance(expr, ir.Const):
            return self.const(expr.value, expr.dtype)
        if isinstance(expr, ir.Var):
            name = expr.name
            if name in ctx.defined or name in self.param_names:
                return f"v_{name}"
            return f"rt.check_defined(v_{name}, {name!r}, {self.fname!r})"
        if isinstance(expr, ir.BinOp):
            return self._emit_binop(expr, ctx)
        if isinstance(expr, ir.UnOp):
            operand = self.emit_expr(expr.operand, ctx)
            if expr.op == "neg":
                return f"(-({operand}))"
            if expr.op == "lnot":
                return f"rt.lnot({operand})"
            return f"(~({operand}))"
        if isinstance(expr, ir.Cast):
            operand = self.emit_expr(expr.operand, ctx)
            if self._elide and self._static_dtype(expr.operand) == expr.dtype.np_dtype:
                # Identity cast: the operand provably already has the
                # target dtype, so cast_value would only copy.
                self.v2_info["cast_elisions"] += 1
                return operand
            return f"rt.cast_value({operand}, {self.np_dtype(expr.dtype)})"
        if isinstance(expr, ir.Select):
            cond = self.emit_expr(expr.cond, ctx)
            a = self.emit_expr(expr.if_true, ctx)
            b = self.emit_expr(expr.if_false, ctx)
            return f"rt.select({cond}, {a}, {b}, {self.np_dtype(expr.dtype)})"
        if isinstance(expr, ir.Load):
            idx = self.emit_expr(expr.index, ctx)
            live = self.live_expr(ctx)
            shared, buf = self._array_kind(expr.array)
            tail = f"{live}, {self.bounds_check}, {self.fname!r}, {expr.array.name!r})"
            if shared:
                size = self.shared[expr.array.name]
                return f"rt.load_shared({buf}, {size}, {idx}, _G.sbid, {tail}"
            entries = self.tables.get(expr.array.name)
            if entries is not None:
                lo, hi = interval_of(expr.index, self.intervals)
                if lo >= 0 and hi <= entries - 1:
                    # Lookup-table gather with a compile-time in-range
                    # proof: no clamp, no live-lane bounds scan.
                    self.v2_info["table_gathers"] += 1
                    return f"rt.load_table({buf}, {idx}, {entries}, {tail}"
            return f"rt.load_global({buf}, {idx}, {tail}"
        if isinstance(expr, ir.Call):
            return self._emit_call(expr, ctx)
        raise CodegenError(f"{self.fname}: cannot lower {type(expr).__name__}")

    def _emit_binop(self, expr: ir.BinOp, ctx: _Ctx) -> str:
        a = self.emit_expr(expr.left, ctx)
        b = self.emit_expr(expr.right, ctx)
        op = expr.op
        if op in _CMP_FUNCS:
            return f"{_CMP_FUNCS[op]}({a}, {b})"
        dtype_preserving = True
        if op == "div":
            inner = (
                f"np.divide({a}, {b})"
                if expr.dtype.is_float
                else f"rt.c_divide_int({a}, {b})"
            )
            dtype_preserving = expr.dtype.is_float  # int path goes via int64
        elif op == "mod":
            inner = (
                f"np.fmod({a}, {b})"
                if expr.dtype.is_float
                else f"rt.c_mod_int({a}, {b})"
            )
            dtype_preserving = expr.dtype.is_float
        else:
            inner = f"{_ARITH_FUNCS[op]}({a}, {b})"
        if (
            dtype_preserving
            and self._elide
            and self._static_dtype(expr.left) == expr.dtype.np_dtype
            and self._static_dtype(expr.right) == expr.dtype.np_dtype
        ):
            # Both operands provably carry the result dtype already, so
            # the ufunc's natural output dtype is expr.dtype and the
            # cast_result wrapper is the identity.
            self.v2_info["cast_elisions"] += 1
            return f"({inner})"
        return f"rt.cast_result({inner}, {self.np_dtype(expr.dtype)})"

    def _emit_call(self, expr: ir.Call, ctx: _Ctx) -> str:
        name = expr.func
        attr = _INTRINSIC_ATTR.get(name)
        if attr is not None:
            return f"_G.{attr}"
        args = [self.emit_expr(a, ctx) for a in expr.args]
        builtin = intrinsics.get(name)
        if builtin is not None:
            call = f"{self.builtin_fn(builtin)}({', '.join(args)})"
            return f"rt.cast_result({call}, {self.np_dtype(expr.dtype)})"
        if name in self.module and self.module[name].kind == "device":
            mask = ctx.mask if ctx.mask is not None else "None"
            retm = "_retm" if ctx.dynamic else "None"
            joined = ", ".join(args + [mask, retm, "_T"])
            return f"_dev_{name}({joined})"
        raise CodegenError(f"{self.fname}: call to unknown function {name!r}")


def _can_return(stmt: ir.Stmt) -> bool:
    if isinstance(stmt, ir.Return):
        return True
    if isinstance(stmt, ir.If):
        return any(_can_return(s) for s in stmt.then_body) or any(
            _can_return(s) for s in stmt.else_body
        )
    if isinstance(stmt, ir.For):
        return any(_can_return(s) for s in stmt.body)
    return False


def _walk_exprs(stmt: ir.Stmt):
    """Every expression node appearing (recursively) in one statement."""
    from ..kernel.visitors import walk

    yield from walk(stmt)


def lower_kernel(
    fn: ir.Function, module: ir.Module, bounds_check: bool = True, mode: str = "v1"
) -> Tuple[str, Dict[str, object], str]:
    """Lower ``fn`` (and its reachable device functions) to source.

    Returns ``(source, exec_globals, entry_name)``; the caller compiles
    the source with these globals and fetches ``entry_name`` from the
    namespace.  ``mode="v2"`` enables the approx-specialized lowering
    (constant folding over baked-in knob literals, proven-in-range
    lookup-table gathers, identity-cast elision) — still bit-exact per
    knob setting; see :func:`lower_kernel_ex` for what it accomplished.
    """
    source, exec_globals, entry, _info = lower_kernel_ex(fn, module, bounds_check, mode)
    return source, exec_globals, entry


def lower_kernel_ex(
    fn: ir.Function, module: ir.Module, bounds_check: bool = True, mode: str = "v1"
) -> Tuple[str, Dict[str, object], str, Dict[str, int]]:
    """:func:`lower_kernel` plus the v2 accomplishment counters
    (``folded``/``reassociated``/``table_gathers``/``cast_elisions``;
    all zero in v1 mode)."""
    if fn.kind != "kernel":
        raise CodegenError(f"{fn.name} is a device function, not a kernel")
    emitter = _Emitter(module, bounds_check, mode)
    for dev in reachable_device_functions(fn, module):
        emitter.emit_function(dev)
    entry = emitter.emit_function(fn)
    source = "\n".join(emitter.lines) + "\n"
    return source, emitter.globals, entry, dict(emitter.v2_info)
