"""Runtime support library for generated kernel code.

Every helper here is the extraction of one code path of
:class:`repro.engine.interpreter._Execution` into a free function, so the
generated source and the interpreter share semantics *by construction*:
masked assignment merging, lane liveness under divergent ``return``,
bounds checking on live lanes only, index clamping, C-style integer
division, and the exact scalar/array casting rules.  The differential
harness (:mod:`repro.codegen.check`) then verifies the equivalence
bit-for-bit on every app kernel.

Generated modules receive this module under the name ``rt``.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..engine.interpreter import _c_divide, _c_mod
from ..engine.launch import Grid
from ..errors import ExecutionError

#: Marker for a local that has not been assigned yet.  The interpreter
#: models this as absence from the frame environment; generated code
#: initializes every local to UNSET so ``assign`` can reproduce the
#: "first write under a mask is a plain bind" rule.
UNSET = object()


# ---------------------------------------------------------------------- masks


def live_mask(mask, retm):
    """Lanes executing right now (``_Execution._live_mask``)."""
    if retm is None:
        return mask
    if mask is None:
        return ~retm
    return mask & ~retm


def live_count(mask, retm, T: int) -> int:
    live = live_mask(mask, retm)
    return T if live is None else int(live.sum())


def and_mask(cond, base):
    """Then-arm mask of a divergent ``if`` (``_exec_if``)."""
    return cond if base is None else (cond & base)


def andnot_mask(cond, base):
    """Else-arm mask of a divergent ``if``."""
    inv = ~cond
    return inv if base is None else (inv & base)


def any_lanes(mask) -> bool:
    """Whether a branch arm has any active lane (``active == 0`` skip)."""
    return bool(mask.any())


# ----------------------------------------------------------------- locals


def check_defined(value, name: str, fname: str):
    if value is UNSET:
        raise ExecutionError(f"{fname}: read of unassigned variable {name!r}")
    return value


def assign(old, value, live):
    """Masked assignment to a local (``_Execution._assign``)."""
    if live is None or old is UNSET:
        return value
    return np.where(live, value, old)


# ------------------------------------------------------------------- casting


def cast_result(value, np_dtype):
    """The result cast every BinOp/builtin applies (``_eval_binop`` tail)."""
    if np.ndim(value) == 0:
        return np_dtype.type(value)
    return np.asarray(value).astype(np_dtype, copy=False)


def cast_value(value, np_dtype):
    """An explicit IR ``Cast`` (well-defined-garbage NaN/Inf -> int)."""
    with np.errstate(invalid="ignore"):
        if np.ndim(value) == 0:
            return np_dtype.type(value)
        return np.asarray(value).astype(np_dtype)


def select(cond, a, b, np_dtype):
    """Branch-free selection (IR ``Select``)."""
    if np.ndim(cond) == 0:
        chosen = a if bool(cond) else b
        if np.ndim(chosen):
            return np.asarray(chosen, dtype=np_dtype)
        return np_dtype.type(chosen)
    return np.where(cond, a, b).astype(np_dtype, copy=False)


def lnot(value):
    """Logical not with the interpreter's scalar/array split."""
    if np.ndim(value):
        return ~np.asarray(value, dtype=bool)
    return not value


def c_divide_int(a, b):
    """C truncation-toward-zero integer division (``_c_divide``)."""
    a64 = np.asarray(a, dtype=np.int64)
    b64 = np.asarray(b, dtype=np.int64)
    q = np.floor_divide(a64, b64)
    r = a64 - q * b64
    fix = (r != 0) & ((a64 < 0) != (b64 < 0))
    return q + fix


def c_mod_int(a, b):
    """C remainder, sign follows the dividend (``_c_mod``)."""
    q = c_divide_int(a, b)
    return np.asarray(a, dtype=np.int64) - q * np.asarray(b, dtype=np.int64)


# keep the float paths importable for completeness / tests
c_divide = _c_divide
c_mod = _c_mod


# ------------------------------------------------------------------- memory


def check_bounds(idx_arr, size, live, fname: str, aname: str) -> None:
    """Raise on out-of-range indices among live lanes (``_check_bounds``)."""
    checked = idx_arr
    if live is not None and np.ndim(idx_arr) != 0:
        checked = idx_arr[live]
    if np.ndim(checked) != 0 and checked.size == 0:
        return
    lo, hi = checked.min(), checked.max()
    if lo < 0 or hi >= size:
        raise ExecutionError(
            f"{fname}: index into {aname!r} out of range "
            f"[{int(lo)}, {int(hi)}] vs size {size}"
        )


def load_global(buf, idx, live, bc: bool, fname: str, aname: str):
    """``array[index]`` on a flat global/constant buffer (``_eval_load``)."""
    idx_arr = np.asarray(idx)
    if bc:
        check_bounds(idx_arr, buf.size, live, fname, aname)
    return buf[np.clip(idx_arr, 0, max(buf.size - 1, 0))]


def load_table(buf, idx, entries, live, bc: bool, fname: str, aname: str):
    """Gather from a lookup table whose index the v2 lowering *proved* to
    lie in ``[0, entries - 1]`` (interval analysis over the memoization
    rewrite's clamp/pack idioms).  The clamp and the live-lane bounds scan
    of :func:`load_global` are skipped — ``take`` is a straight gather.

    The proof is about the IR; the buffer is a runtime argument, so a
    caller binding a table smaller than the proof assumed falls back to
    the exact interpreter path (clamp + optional bounds check)."""
    if buf.size < entries:
        return load_global(buf, idx, live, bc, fname, aname)
    return buf.take(idx)


def load_shared(buf, size, idx, bids, live, bc: bool, fname: str, aname: str):
    """``shared[index]``: per-block flattening ``b*size + i``."""
    idx_arr = np.asarray(idx)
    if bc:
        check_bounds(idx_arr, size, live, fname, aname)
    idx_arr = np.clip(idx_arr, 0, size - 1)
    return buf[bids * np.int64(size) + idx_arr]


def store_global(buf, idx, value, live, T: int, bc: bool, fname: str, aname: str):
    idx_arr = np.asarray(idx)
    if bc:
        check_bounds(idx_arr, buf.size, live, fname, aname)
    flat_idx = np.clip(idx_arr, 0, max(buf.size - 1, 0))
    _masked_store(buf, flat_idx, value, live, T)


def store_shared(
    buf, size, idx, value, bids, live, T: int, bc: bool, fname: str, aname: str
):
    idx_arr = np.asarray(idx)
    if bc:
        check_bounds(idx_arr, size, live, fname, aname)
    idx_arr = np.clip(idx_arr, 0, size - 1)
    flat_idx = bids * np.int64(size) + idx_arr
    _masked_store(buf, flat_idx, value, live, T)


def _masked_store(buf, flat_idx, value, live, T: int) -> None:
    """The store tail of ``_Execution._store`` (trace recording elided)."""
    value = np.asarray(value, dtype=buf.dtype)
    if live is None:
        buf[flat_idx] = value
    else:
        fi = np.broadcast_to(np.asarray(flat_idx), (T,))[live]
        val = np.broadcast_to(value, (T,))[live]
        buf[fi] = val


_ATOMIC_UFUNCS = {
    "add": np.add,
    "min": np.minimum,
    "max": np.maximum,
    "and": np.bitwise_and,
    "or": np.bitwise_or,
    "xor": np.bitwise_xor,
}


def atomic_global(
    buf, idx, value, live, T: int, op: str, bc: bool, fname: str, aname: str
):
    idx_arr = np.asarray(idx)
    if bc:
        check_bounds(idx_arr, buf.size, live, fname, aname)
    flat_idx = np.clip(idx_arr, 0, max(buf.size - 1, 0))
    _masked_atomic(buf, flat_idx, value, live, T, op)


def atomic_shared(
    buf, size, idx, value, bids, live, T: int, op: str, bc: bool, fname: str, aname: str
):
    idx_arr = np.asarray(idx)
    if bc:
        check_bounds(idx_arr, size, live, fname, aname)
    idx_arr = np.clip(idx_arr, 0, size - 1)
    flat_idx = bids * np.int64(size) + idx_arr
    _masked_atomic(buf, flat_idx, value, live, T, op)


def _masked_atomic(buf, flat_idx, value, live, T: int, op: str) -> None:
    """The read-modify-write tail of ``_Execution._atomic``."""
    fi = np.broadcast_to(np.asarray(flat_idx), (T,))
    val = np.broadcast_to(np.asarray(value, dtype=buf.dtype), (T,))
    if live is not None:
        fi, val = fi[live], val[live]
    if op == "inc":
        np.add.at(buf, fi, np.ones_like(val))
    else:
        _ATOMIC_UFUNCS[op].at(buf, fi, val)


# -------------------------------------------------------------------- loops


def uniform_int(value, what: str, fname: str) -> int:
    """Enforce uniform loop bounds (``_uniform_int``)."""
    if np.ndim(value) != 0:
        flat = np.asarray(value).ravel()
        if flat.size and (flat != flat[0]).any():
            raise ExecutionError(f"{fname}: {what} must be uniform across threads")
        return int(flat[0])
    return int(value)


def check_step(step: int, fname: str) -> int:
    if step == 0:
        raise ExecutionError(f"{fname}: zero loop step")
    return step


# ------------------------------------------------------------------ returns


def do_return(value, mask, ret, retm, T: int):
    """One executed ``return`` (``_exec_return``).

    Returns the new ``(ret_val, ret_mask, returned_all)`` triple; callers
    rebind their local state, which matches the interpreter's in-place
    frame updates because generated functions never alias these values.
    """
    live = live_mask(mask, retm)
    if live is None:
        if retm is None:
            retm = np.ones(T, dtype=bool)
        else:
            retm = retm.copy()
            retm[:] = True
        return value, retm, True
    if value is not None:
        if ret is None:
            ret = np.where(live, value, np.zeros_like(value))
        else:
            ret = np.where(live, value, ret)
    retm = live.copy() if retm is None else (retm | live)
    return ret, retm, live_count(mask, retm, T) == 0


def device_result(ret, fname: str):
    if ret is None:
        raise ExecutionError(f"device function {fname} did not return")
    return ret


def copy_retm(retm):
    """Callee-entry copy of the caller's return mask (``_call_device``)."""
    return None if retm is None else retm.copy()


# ----------------------------------------------------------------- geometry


class Geometry:
    """Per-grid thread-id arrays, precomputed once and shared by launches.

    Mirrors the id construction in ``_Execution.__init__``; generated code
    only ever *reads* these arrays (every masked merge allocates a fresh
    array), so sharing one instance across launches is safe.
    """

    __slots__ = (
        "T",
        "gid",
        "tid",
        "bid",
        "gidx",
        "gidy",
        "tidx",
        "tidy",
        "bidx",
        "bidy",
        "bdim",
        "bdimy",
        "gdim",
        "gdimy",
        "nbx",
        "sbid",
        "nsb",
    )

    def __init__(self, grid: Grid) -> None:
        self.T = grid.threads
        linear = np.arange(self.T, dtype=np.int32)
        block_threads = np.int32(grid.block_threads)
        self.gid = linear
        self.tid = linear % block_threads
        self.bid = linear // block_threads
        tx = np.int32(grid.threads_per_block)
        self.tidx = self.tid % tx
        self.tidy = self.tid // tx
        self.bidx = self.bid % np.int32(grid.blocks)
        self.bidy = self.bid // np.int32(grid.blocks)
        self.gidx = self.bidx * tx + self.tidx
        self.gidy = self.bidy * np.int32(grid.threads_per_block_y) + self.tidy
        self.bdim = np.int32(grid.threads_per_block)
        self.bdimy = np.int32(grid.threads_per_block_y)
        self.gdim = np.int32(grid.blocks)
        self.gdimy = np.int32(grid.blocks_y)
        self.nbx = grid.blocks  # shared allocs are sized per x-axis block
        # Shard-local block addressing.  A full-grid geometry *is* the
        # single shard covering every block, so these reduce to the
        # identity and generated code can use them unconditionally.
        self.sbid = self.bid
        self.nsb = grid.blocks

    def shard(self, b0: int, b1: int, block_threads: int) -> "Geometry":
        """The sub-geometry covering blocks ``[b0, b1)``.

        Blocks are contiguous in linear thread order (``bid = linear //
        block_threads``), so every per-thread array is a zero-copy slice
        of the parent's.  Grid-wide scalars (``bdim``/``gdim``/... and
        ``nbx``) keep their full-grid values: intrinsics must report the
        launch geometry, not the shard.  Only the shared-memory
        addressing pair (``sbid``/``nsb``) is rebased so each shard
        allocates exactly its own blocks' shared storage.
        """
        lo, hi = b0 * block_threads, b1 * block_threads
        geo = Geometry.__new__(Geometry)
        geo.T = hi - lo
        geo.gid = self.gid[lo:hi]
        geo.tid = self.tid[lo:hi]
        geo.bid = self.bid[lo:hi]
        geo.gidx = self.gidx[lo:hi]
        geo.gidy = self.gidy[lo:hi]
        geo.tidx = self.tidx[lo:hi]
        geo.tidy = self.tidy[lo:hi]
        geo.bidx = self.bidx[lo:hi]
        geo.bidy = self.bidy[lo:hi]
        geo.bdim = self.bdim
        geo.bdimy = self.bdimy
        geo.gdim = self.gdim
        geo.gdimy = self.gdimy
        geo.nbx = self.nbx
        geo.sbid = geo.bid - np.int32(b0)
        geo.nsb = b1 - b0
        return geo


_GEOMETRY_CACHE: Dict[Grid, Geometry] = {}
_GEOMETRY_CACHE_MAX = 64


def geometry(grid: Grid) -> Geometry:
    geo = _GEOMETRY_CACHE.get(grid)
    if geo is None:
        if len(_GEOMETRY_CACHE) >= _GEOMETRY_CACHE_MAX:
            _GEOMETRY_CACHE.pop(next(iter(_GEOMETRY_CACHE)))
        geo = _GEOMETRY_CACHE[grid] = Geometry(grid)
    return geo
