"""``python -m repro.codegen`` — run the differential harness over all apps."""

from .check import main

if __name__ == "__main__":
    raise SystemExit(main())
