"""Compile-and-cache layer: IR fingerprint -> executable kernel.

One entry per ``(kernel fingerprint, grid-shape class, bounds_check)``.
The grid-shape class is only ``"1d"``/``"2d"``: generated code reads all
thread-id arrays from a :class:`~repro.codegen.runtime.Geometry` object,
so the same callable serves every grid of a class and only the (cheap,
itself cached) geometry differs per launch.
"""

from __future__ import annotations

import linecache
import time
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..errors import CodegenError
from ..kernel import ir
from ..resilience.faults import SITE_COMPILE, maybe_inject
from .fingerprint import fingerprint_kernel
from .lower import lower_kernel
from .runtime import geometry


@dataclass
class CodegenStats:
    """Process-wide codegen counters, surfaced by ``serve.metrics``."""

    compiles: int = 0
    cache_hits: int = 0
    compile_seconds: float = 0.0
    source_bytes: int = 0
    fallbacks: int = 0  # auto-mode launches that fell back to the interpreter

    def snapshot(self) -> Dict[str, object]:
        return {
            "compiles": self.compiles,
            "cache_hits": self.cache_hits,
            "compile_seconds": round(self.compile_seconds, 6),
            "source_bytes": self.source_bytes,
            "fallbacks": self.fallbacks,
        }

    def reset(self) -> None:
        self.compiles = 0
        self.cache_hits = 0
        self.compile_seconds = 0.0
        self.source_bytes = 0
        self.fallbacks = 0


STATS = CodegenStats()


def stats_snapshot() -> Dict[str, object]:
    return STATS.snapshot()


@dataclass
class CompiledKernel:
    """A kernel lowered, compiled and ready to launch."""

    fn_name: str
    param_names: List[str]
    entry: object  # the generated function
    source: str
    fingerprint: str
    grid_class: str
    bounds_check: bool

    def run(self, grid, bound_args: Dict[str, object]) -> None:
        """Execute over ``grid`` with ``bind_arguments`` output."""
        geo = geometry(grid)
        self.entry(geo, *[bound_args[name] for name in self.param_names])


_CACHE: Dict[Tuple[str, str, bool], CompiledKernel] = {}


def get_compiled(
    fn: ir.Function, module: ir.Module, grid, bounds_check: bool = True
) -> CompiledKernel:
    """Fetch (or lower + compile) the callable for one kernel/grid class."""
    # Fault-injection seam: an injected failure here is a CodegenError
    # subclass, so the ``auto`` backend falls back to the interpreter
    # exactly as for a real lowering bug.  Sits before the cache lookup
    # so chaos runs can fault already-compiled kernels.
    maybe_inject(SITE_COMPILE, fn.name, exc=CodegenError)
    fp = fingerprint_kernel(fn, module)
    key = (fp, "2d" if grid.is_2d else "1d", bool(bounds_check))
    hit = _CACHE.get(key)
    if hit is not None:
        STATS.cache_hits += 1
        return hit
    started = time.perf_counter()
    source, exec_globals, entry_name = lower_kernel(fn, module, bounds_check)
    filename = f"<codegen:{fn.name}:{fp[:10]}>"
    try:
        code = compile(source, filename, "exec")
    except SyntaxError as exc:  # pragma: no cover - emitter bug guard
        raise CodegenError(
            f"generated source for {fn.name} failed to compile: {exc}"
        ) from exc
    exec(code, exec_globals)
    # Make generated frames readable in tracebacks and pdb.
    linecache.cache[filename] = (len(source), None, source.splitlines(True), filename)
    compiled = CompiledKernel(
        fn_name=fn.name,
        param_names=[p.name for p in fn.params],
        entry=exec_globals[entry_name],
        source=source,
        fingerprint=fp,
        grid_class=key[1],
        bounds_check=key[2],
    )
    STATS.compiles += 1
    STATS.compile_seconds += time.perf_counter() - started
    STATS.source_bytes += len(source)
    _CACHE[key] = compiled
    return compiled


def clear_cache() -> None:
    """Drop all compiled kernels (tests; does not reset STATS)."""
    _CACHE.clear()


def cache_size() -> int:
    return len(_CACHE)
