"""Compile-and-cache layer: IR fingerprint -> executable kernel.

One entry per ``(kernel fingerprint, grid-shape class, bounds_check)``.
The grid-shape class is only ``"1d"``/``"2d"``: generated code reads all
thread-id arrays from a :class:`~repro.codegen.runtime.Geometry` object,
so the same callable serves every grid of a class and only the (cheap,
itself cached) geometry differs per launch.
"""

from __future__ import annotations

import linecache
import time
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..errors import CodegenError
from ..kernel import ir
from ..obs import trace as obs_trace
from ..obs.registry import get_registry
from ..resilience.faults import SITE_COMPILE, maybe_inject
from .fingerprint import fingerprint_kernel
from .lower import lower_kernel
from .runtime import geometry

#: Registry field -> help text; each becomes ``repro_codegen_<field>``.
_FIELDS = {
    "compiles": "kernels lowered and compiled to NumPy callables",
    "cache_hits": "compiled-kernel cache hits",
    "compile_seconds": "wall time spent lowering and compiling",
    "source_bytes": "bytes of generated source",
    "fallbacks": "auto-mode launches that fell back to the interpreter",
}


class CodegenStats:
    """Process-wide codegen counters, served from the metrics registry.

    The attribute API (``STATS.compiles += 1``, ``snapshot()``,
    ``reset()``) is unchanged; the values now live in registry counters
    (``repro_codegen_*``) so the Prometheus exposition and every snapshot
    read the same store.
    """

    def __init__(self) -> None:
        registry = get_registry()
        object.__setattr__(
            self,
            "_metrics",
            {
                name: registry.counter(f"repro_codegen_{name}", help)
                for name, help in _FIELDS.items()
            },
        )

    def __getattr__(self, name: str):
        try:
            child = self._metrics[name]
        except KeyError:
            raise AttributeError(name) from None
        value = child.value
        return value if name == "compile_seconds" else int(value)

    def __setattr__(self, name: str, value) -> None:
        self._metrics[name].set(value)

    def snapshot(self) -> Dict[str, object]:
        return {
            "compiles": self.compiles,
            "cache_hits": self.cache_hits,
            "compile_seconds": round(self.compile_seconds, 6),
            "source_bytes": self.source_bytes,
            "fallbacks": self.fallbacks,
        }

    def reset(self) -> None:
        for name in _FIELDS:
            self._metrics[name].set(0.0)


STATS = CodegenStats()


def stats_snapshot() -> Dict[str, object]:
    return STATS.snapshot()


@dataclass
class CompiledKernel:
    """A kernel lowered, compiled and ready to launch."""

    fn_name: str
    param_names: List[str]
    entry: object  # the generated function
    source: str
    fingerprint: str
    grid_class: str
    bounds_check: bool

    def run(self, grid, bound_args: Dict[str, object]) -> None:
        """Execute over ``grid`` with ``bind_arguments`` output."""
        geo = geometry(grid)
        self.entry(geo, *[bound_args[name] for name in self.param_names])


_CACHE: Dict[Tuple[str, str, bool], CompiledKernel] = {}


def get_compiled(
    fn: ir.Function, module: ir.Module, grid, bounds_check: bool = True
) -> CompiledKernel:
    """Fetch (or lower + compile) the callable for one kernel/grid class."""
    # Fault-injection seam: an injected failure here is a CodegenError
    # subclass, so the ``auto`` backend falls back to the interpreter
    # exactly as for a real lowering bug.  Sits before the cache lookup
    # so chaos runs can fault already-compiled kernels.
    maybe_inject(SITE_COMPILE, fn.name, exc=CodegenError)
    fp = fingerprint_kernel(fn, module)
    key = (fp, "2d" if grid.is_2d else "1d", bool(bounds_check))
    hit = _CACHE.get(key)
    if hit is not None:
        STATS.cache_hits += 1
        with obs_trace.span(
            "codegen.compile", kernel=fn.name, cache="hit", grid_class=key[1]
        ):
            pass
        return hit
    started = time.perf_counter()
    with obs_trace.span(
        "codegen.compile", kernel=fn.name, cache="miss", grid_class=key[1]
    ):
        source, exec_globals, entry_name = lower_kernel(fn, module, bounds_check)
        filename = f"<codegen:{fn.name}:{fp[:10]}>"
        try:
            code = compile(source, filename, "exec")
        except SyntaxError as exc:  # pragma: no cover - emitter bug guard
            raise CodegenError(
                f"generated source for {fn.name} failed to compile: {exc}"
            ) from exc
        exec(code, exec_globals)
    # Make generated frames readable in tracebacks and pdb.
    linecache.cache[filename] = (len(source), None, source.splitlines(True), filename)
    compiled = CompiledKernel(
        fn_name=fn.name,
        param_names=[p.name for p in fn.params],
        entry=exec_globals[entry_name],
        source=source,
        fingerprint=fp,
        grid_class=key[1],
        bounds_check=key[2],
    )
    STATS.compiles += 1
    STATS.compile_seconds += time.perf_counter() - started
    STATS.source_bytes += len(source)
    _CACHE[key] = compiled
    return compiled


def clear_cache() -> None:
    """Drop all compiled kernels (tests; does not reset STATS)."""
    _CACHE.clear()


def cache_size() -> int:
    return len(_CACHE)
