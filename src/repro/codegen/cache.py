"""Compile-and-cache layer: IR fingerprint -> executable kernel.

One entry per ``(kernel fingerprint, grid-shape class, bounds_check)``.
The grid-shape class is only ``"1d"``/``"2d"``: generated code reads all
thread-id arrays from a :class:`~repro.codegen.runtime.Geometry` object,
so the same callable serves every grid of a class and only the (cheap,
itself cached) geometry differs per launch.
"""

from __future__ import annotations

import linecache
import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..errors import CodegenError
from ..kernel import ir
from ..obs import trace as obs_trace
from ..obs.registry import get_registry
from ..resilience.faults import SITE_COMPILE, maybe_inject
from .fingerprint import fingerprint_kernel
from .lower import lower_kernel_ex
from .runtime import geometry

#: Registry field -> help text; each becomes ``repro_codegen_<field>``.
_FIELDS = {
    "compiles": "kernels lowered and compiled to NumPy callables",
    "cache_hits": "compiled-kernel cache hits",
    "compile_seconds": "wall time spent lowering and compiling",
    "source_bytes": "bytes of generated source",
    "fallbacks": "auto-mode launches that fell back to the interpreter",
    "v2_compiles": "approx-specialized (v2) lowerings compiled",
    "v2_folds": "constant subexpressions folded by v2 lowerings",
    "v2_table_gathers": "lookup-table loads lowered as proven-in-range gathers",
    "v2_cast_elisions": "identity result casts elided by v2 lowerings",
}


def v2_enabled() -> bool:
    """Whether the approx-specialized lowering is on (``REPRO_CODEGEN_V2``,
    default on; set to ``0`` to force every kernel through v1)."""
    return os.environ.get("REPRO_CODEGEN_V2", "1") != "0"


def _lowering_mode(fn: ir.Function) -> str:
    return "v2" if getattr(fn, "approx", None) is not None and v2_enabled() else "v1"


def _detail_string(info: Dict[str, int]) -> str:
    parts = [f"{key}={value}" for key, value in sorted(info.items()) if value]
    return " ".join(parts) if parts else "no specializations applied"


class CodegenStats:
    """Process-wide codegen counters, served from the metrics registry.

    The attribute API (``STATS.compiles += 1``, ``snapshot()``,
    ``reset()``) is unchanged; the values now live in registry counters
    (``repro_codegen_*``) so the Prometheus exposition and every snapshot
    read the same store.
    """

    def __init__(self) -> None:
        registry = get_registry()
        object.__setattr__(
            self,
            "_metrics",
            {
                name: registry.counter(f"repro_codegen_{name}", help)
                for name, help in _FIELDS.items()
            },
        )

    def __getattr__(self, name: str):
        try:
            child = self._metrics[name]
        except KeyError:
            raise AttributeError(name) from None
        value = child.value
        return value if name == "compile_seconds" else int(value)

    def __setattr__(self, name: str, value) -> None:
        self._metrics[name].set(value)

    def snapshot(self) -> Dict[str, object]:
        out: Dict[str, object] = {}
        for name in _FIELDS:
            value = getattr(self, name)
            out[name] = round(value, 6) if name == "compile_seconds" else value
        return out

    def reset(self) -> None:
        for name in _FIELDS:
            self._metrics[name].set(0.0)


STATS = CodegenStats()


def stats_snapshot() -> Dict[str, object]:
    return STATS.snapshot()


@dataclass
class CompiledKernel:
    """A kernel lowered, compiled and ready to launch."""

    fn_name: str
    param_names: List[str]
    entry: object  # the generated function
    source: str
    fingerprint: str
    grid_class: str
    bounds_check: bool
    #: ``"codegen-v1"`` or ``"codegen-v2"`` — which lowering produced this.
    lowering: str = "codegen-v1"
    #: what the v2 lowering accomplished ("" for v1).
    detail: str = ""

    def run(self, grid, bound_args: Dict[str, object]) -> None:
        """Execute over ``grid`` with ``bind_arguments`` output."""
        geo = geometry(grid)
        self.entry(geo, *[bound_args[name] for name in self.param_names])


_CACHE: Dict[Tuple[str, str, bool, str], CompiledKernel] = {}


def get_compiled(
    fn: ir.Function, module: ir.Module, grid, bounds_check: bool = True
) -> CompiledKernel:
    """Fetch (or lower + compile) the callable for one kernel/grid class."""
    # Fault-injection seam: an injected failure here is a CodegenError
    # subclass, so the ``auto`` backend falls back to the interpreter
    # exactly as for a real lowering bug.  Sits before the cache lookup
    # so chaos runs can fault already-compiled kernels.
    maybe_inject(SITE_COMPILE, fn.name, exc=CodegenError)
    fp = fingerprint_kernel(fn, module)
    mode = _lowering_mode(fn)
    key = (fp, "2d" if grid.is_2d else "1d", bool(bounds_check), mode)
    hit = _CACHE.get(key)
    if hit is not None:
        STATS.cache_hits += 1
        with obs_trace.span(
            "codegen.compile", kernel=fn.name, cache="hit", grid_class=key[1]
        ):
            pass
        return hit
    started = time.perf_counter()
    with obs_trace.span(
        "codegen.compile", kernel=fn.name, cache="miss", grid_class=key[1], mode=mode
    ):
        source, exec_globals, entry_name, info = lower_kernel_ex(
            fn, module, bounds_check, mode
        )
        filename = f"<codegen:{fn.name}:{fp[:10]}>"
        try:
            code = compile(source, filename, "exec")
        except SyntaxError as exc:  # pragma: no cover - emitter bug guard
            raise CodegenError(
                f"generated source for {fn.name} failed to compile: {exc}"
            ) from exc
        exec(code, exec_globals)
    # Make generated frames readable in tracebacks and pdb.
    linecache.cache[filename] = (len(source), None, source.splitlines(True), filename)
    compiled = CompiledKernel(
        fn_name=fn.name,
        param_names=[p.name for p in fn.params],
        entry=exec_globals[entry_name],
        source=source,
        fingerprint=fp,
        grid_class=key[1],
        bounds_check=key[2],
        lowering="codegen-v2" if mode == "v2" else "codegen-v1",
        detail=_detail_string(info) if mode == "v2" else "",
    )
    STATS.compiles += 1
    STATS.compile_seconds += time.perf_counter() - started
    STATS.source_bytes += len(source)
    if mode == "v2":
        STATS.v2_compiles += 1
        STATS.v2_folds += info["folded"] + info["reassociated"]
        STATS.v2_table_gathers += info["table_gathers"]
        STATS.v2_cast_elisions += info["cast_elisions"]
    _CACHE[key] = compiled
    return compiled


# Identity-keyed memo for classification results (same pinning rationale
# as the fingerprint memo: IR trees are immutable after construction).
_CLASSIFY_MEMO: Dict[Tuple[int, int, str], Tuple[object, object, Tuple[str, str]]] = {}
_CLASSIFY_MEMO_MAX = 512


def classify_lowering(fn: ir.Function, module: ir.Module) -> Tuple[str, str]:
    """How this kernel will execute under the codegen backend:
    ``("codegen-v2" | "codegen-v1" | "interpreter", detail)``.

    Runs the actual lowering (without exec) so the answer can't drift
    from what a launch would do; results are memoized per (fn, module).
    """
    mode = _lowering_mode(fn)
    key = (id(fn), id(module), mode)
    hit = _CLASSIFY_MEMO.get(key)
    if hit is not None and hit[0] is fn and hit[1] is module:
        return hit[2]
    meta = getattr(fn, "approx", None)
    try:
        _src, _globals, _entry, info = lower_kernel_ex(
            fn, module, bounds_check=True, mode=mode
        )
    except CodegenError as exc:
        result = ("interpreter", f"codegen fallback: {exc}")
    else:
        if mode == "v2":
            result = ("codegen-v2", _detail_string(info))
        elif meta is not None:
            result = ("codegen-v1", "v2 disabled via REPRO_CODEGEN_V2=0")
        else:
            result = ("codegen-v1", "exact lowering (no approx metadata)")
    if len(_CLASSIFY_MEMO) >= _CLASSIFY_MEMO_MAX:
        _CLASSIFY_MEMO.pop(next(iter(_CLASSIFY_MEMO)))
    _CLASSIFY_MEMO[key] = (fn, module, result)
    return result


def clear_cache() -> None:
    """Drop all compiled kernels (tests; does not reset STATS)."""
    _CACHE.clear()


def cache_size() -> int:
    return len(_CACHE)
