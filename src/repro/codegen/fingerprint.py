"""Stable fingerprints of IR functions for the compile cache.

The printer's canonical text is not enough to key compiled code: it elides
the dtype of intermediate expressions, and two kernels that print alike
but promote differently must not share a compiled body.  This serializer
walks the tree emitting every field that affects lowering — node kinds,
operator names, dtypes, constant values, parameter and array types — for
the kernel *and* every device function it can reach.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Set, Tuple

from ..kernel import intrinsics, ir

# Identity-keyed memo: IR trees are never mutated after construction
# (transforms build new Function objects), so one (fn, module) pair always
# hashes to the same digest.  The stored strong references pin the objects,
# which keeps their ids from being reused while an entry is live.
_MEMO: Dict[Tuple[int, int], Tuple[ir.Function, ir.Module, str]] = {}
_MEMO_MAX = 512


def fingerprint_kernel(fn: ir.Function, module: ir.Module) -> str:
    """Hex digest over ``fn`` plus its transitively called device functions."""
    key = (id(fn), id(module))
    hit = _MEMO.get(key)
    if hit is not None and hit[0] is fn and hit[1] is module:
        return hit[2]
    parts: List[str] = []
    for function in [fn] + reachable_device_functions(fn, module):
        _serialize_function(function, parts)
    payload = "\x1f".join(parts).encode("utf-8")
    digest = hashlib.blake2b(payload, digest_size=20).hexdigest()
    if len(_MEMO) >= _MEMO_MAX:
        _MEMO.pop(next(iter(_MEMO)))
    _MEMO[key] = (fn, module, digest)
    return digest


def reachable_device_functions(fn: ir.Function, module: ir.Module) -> List[ir.Function]:
    """Device functions reachable from ``fn``, in deterministic call order."""
    seen: Set[str] = set()
    order: List[ir.Function] = []

    def visit(function: ir.Function) -> None:
        for node in ir_walk(function.body):
            if not isinstance(node, ir.Call):
                continue
            name = node.func
            if name in seen or intrinsics.is_builtin(name):
                continue
            if name in module and module[name].kind == "device":
                seen.add(name)
                callee = module[name]
                order.append(callee)
                visit(callee)

    visit(fn)
    return order


def ir_walk(body):
    """Yield every node in a statement list, depth-first."""
    from ..kernel.visitors import walk

    for stmt in body:
        yield from walk(stmt)


def _serialize_function(fn: ir.Function, out: List[str]) -> None:
    out.append(f"fn:{fn.name}:{fn.kind}")
    meta = getattr(fn, "approx", None)
    if meta is not None:
        # The approx tag drives the v2 lowering (table extents, knob
        # constants), so two IR-identical kernels with different tags must
        # not share compiled code.
        out.append(f"approx:{meta.transform}:{meta.knobs!r}:{meta.tables!r}")
    if fn.return_type is not None:
        out.append(f"ret:{fn.return_type.dtype.name}")
    for p in fn.params:
        if p.is_array:
            out.append(f"p:{p.name}:{p.type.dtype.name}[{p.type.space}]")
        else:
            out.append(f"p:{p.name}:{p.type.dtype.name}")
    _serialize_body(fn.body, out)


def _serialize_body(body, out: List[str]) -> None:
    out.append("{")
    for stmt in body:
        _serialize_stmt(stmt, out)
    out.append("}")


def _serialize_stmt(stmt, out: List[str]) -> None:
    if isinstance(stmt, ir.Assign):
        out.append(f"=:{stmt.target}")
        _serialize_expr(stmt.value, out)
    elif isinstance(stmt, ir.Store):
        out.append(f"st:{stmt.array.name}:{stmt.array.type.dtype.name}"
                   f"[{stmt.array.type.space}]")
        _serialize_expr(stmt.index, out)
        _serialize_expr(stmt.value, out)
    elif isinstance(stmt, ir.AtomicRMW):
        out.append(f"at:{stmt.op}:{stmt.array.name}:{stmt.array.type.dtype.name}"
                   f"[{stmt.array.type.space}]")
        _serialize_expr(stmt.index, out)
        _serialize_expr(stmt.value, out)
    elif isinstance(stmt, ir.If):
        out.append("if")
        _serialize_expr(stmt.cond, out)
        _serialize_body(stmt.then_body, out)
        _serialize_body(stmt.else_body, out)
    elif isinstance(stmt, ir.For):
        out.append(f"for:{stmt.var}")
        _serialize_expr(stmt.start, out)
        _serialize_expr(stmt.stop, out)
        _serialize_expr(stmt.step, out)
        _serialize_body(stmt.body, out)
    elif isinstance(stmt, ir.Return):
        out.append("ret")
        if stmt.value is not None:
            _serialize_expr(stmt.value, out)
    elif isinstance(stmt, ir.Barrier):
        out.append("bar")
    elif isinstance(stmt, ir.SharedAlloc):
        out.append(f"sh:{stmt.name}:{stmt.dtype.name}:{tuple(stmt.shape)!r}")
    else:
        out.append(f"stmt:{type(stmt).__name__}")


def _serialize_expr(expr, out: List[str]) -> None:
    if isinstance(expr, ir.Const):
        out.append(f"c:{expr.dtype.name}:{expr.value!r}")
    elif isinstance(expr, ir.Var):
        out.append(f"v:{expr.name}:{expr.dtype.name}")
    elif isinstance(expr, ir.BinOp):
        out.append(f"b:{expr.op}:{expr.dtype.name}")
        _serialize_expr(expr.left, out)
        _serialize_expr(expr.right, out)
    elif isinstance(expr, ir.UnOp):
        out.append(f"u:{expr.op}:{expr.dtype.name}")
        _serialize_expr(expr.operand, out)
    elif isinstance(expr, ir.Cast):
        out.append(f"cast:{expr.dtype.name}")
        _serialize_expr(expr.operand, out)
    elif isinstance(expr, ir.Select):
        out.append(f"sel:{expr.dtype.name}")
        _serialize_expr(expr.cond, out)
        _serialize_expr(expr.if_true, out)
        _serialize_expr(expr.if_false, out)
    elif isinstance(expr, ir.Load):
        out.append(f"ld:{expr.array.name}:{expr.array.type.dtype.name}"
                   f"[{expr.array.type.space}]")
        _serialize_expr(expr.index, out)
    elif isinstance(expr, ir.Call):
        out.append(f"call:{expr.func}:{expr.dtype.name}")
        for arg in expr.args:
            _serialize_expr(arg, out)
    elif isinstance(expr, ir.ArrayRef):
        out.append(f"a:{expr.name}:{expr.type.dtype.name}[{expr.type.space}]")
    else:
        out.append(f"expr:{type(expr).__name__}")
