"""Compile-time IR optimizations for the v2 (approx-specialized) lowering.

The approximation transforms bake their knob values into the IR as
literals: quantization scales, clamp limits, shifted pack widths, tap
offsets and perforation strides are all :class:`~repro.kernel.ir.Const`
nodes by the time a variant reaches the code generator.  That makes three
optimizations both possible and — because every rule below replays the
*exact* runtime semantics at compile time — bit-exact:

* **Constant folding** (:class:`_Folder`): any arithmetic BinOp, UnOp or
  Cast over all-constant operands is evaluated with the same NumPy
  helpers the generated code would call (``np.add`` + ``cast_result``,
  ``c_divide_int``, ``cast_value``...), so the folded literal is the
  byte the runtime would have produced.
* **Integer add-chain reassociation**: for one integer dtype, ``add`` and
  ``sub`` wrap modulo 2**bits (``cast_result`` truncates every
  intermediate), and modular addition is associative and commutative —
  so constant terms scattered through an index polynomial (unrolled tap
  offsets, stencil redirect deltas) collapse into a single literal.
  Floats never reassociate: float addition is not associative.
* **Interval analysis** (:func:`compute_intervals`): conservative value
  ranges for single-assignment locals, driven by the clamp idioms the
  memoization rewrite emits (``imin``/``imax`` chains, shift-or address
  packing).  The emitter uses a proven-in-range interval to lower a
  lookup-table load as a plain ``np.take`` gather, skipping the clamp
  and bounds check that :func:`~repro.codegen.runtime.load_global` pays.

Nothing here is approximate: every rewrite preserves the interpreter's
bit-exact semantics, which the differential harness re-verifies per
variant (``python -m repro.codegen --approx``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..kernel import ir
from ..kernel.visitors import Transformer, walk_statements
from . import runtime as rt

#: Arithmetic BinOps foldable with plain ufuncs (+ cast_result).
_FOLD_UFUNCS = {
    "add": np.add,
    "sub": np.subtract,
    "mul": np.multiply,
    "and": np.bitwise_and,
    "or": np.bitwise_or,
    "xor": np.bitwise_xor,
    "shl": np.left_shift,
    "shr": np.right_shift,
}


@dataclass
class FoldStats:
    """What the pass did to one function (surfaced in lowering outcomes)."""

    folded: int = 0  # constant subexpressions collapsed to literals
    reassociated: int = 0  # integer add chains with constants collected
    notes: List[str] = field(default_factory=list)

    @property
    def total(self) -> int:
        return self.folded + self.reassociated


def _const_np(expr: ir.Const):
    """The exact NumPy scalar the emitter would bake for this Const."""
    return expr.dtype.to_numpy().type(expr.value)


def _make_const(value, dtype) -> ir.Const:
    """Wrap a NumPy scalar back into a Const carrying a Python value that
    round-trips exactly through ``dtype.to_numpy().type(...)``."""
    if np.issubdtype(np.asarray(value).dtype, np.floating):
        py = float(value)
    elif np.issubdtype(np.asarray(value).dtype, np.bool_):
        py = bool(value)
    else:
        py = int(value)
    return ir.Const(py, dtype)


def _fold_binop(expr: ir.BinOp) -> Optional[ir.Const]:
    """Evaluate a BinOp over two Consts exactly as the runtime would."""
    a, b = _const_np(expr.left), _const_np(expr.right)
    np_dtype = expr.dtype.to_numpy()
    try:
        with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
            if expr.op == "div":
                inner = np.divide(a, b) if expr.dtype.is_float else rt.c_divide_int(a, b)
            elif expr.op == "mod":
                inner = np.fmod(a, b) if expr.dtype.is_float else rt.c_mod_int(a, b)
            elif expr.op in _FOLD_UFUNCS:
                inner = _FOLD_UFUNCS[expr.op](a, b)
            else:
                return None  # comparisons/logic: leave to the emitter
            value = rt.cast_result(inner, np_dtype)
    except Exception:
        return None
    folded = _make_const(value, expr.dtype)
    # Paranoia: only keep folds that round-trip to the identical scalar.
    if _const_np(folded) != value and not (
        np.isnan(_const_np(folded)) and np.isnan(value)
    ):
        return None
    return folded


def _fold_unop(expr: ir.UnOp) -> Optional[ir.Const]:
    a = _const_np(expr.operand)
    try:
        with np.errstate(over="ignore"):
            if expr.op == "neg":
                value = -a
            elif expr.op == "bnot":
                value = ~a
            else:
                return None
    except Exception:
        return None
    if np.asarray(value).dtype != expr.dtype.to_numpy():
        return None
    return _make_const(value, expr.dtype)


def _fold_cast(expr: ir.Cast) -> Optional[ir.Const]:
    a = _const_np(expr.operand)
    try:
        value = rt.cast_value(a, expr.dtype.to_numpy())
    except Exception:  # pragma: no cover - defensive
        return None
    return _make_const(value, expr.dtype)


def _int_range(dtype) -> Optional[Tuple[int, int]]:
    np_dtype = dtype.to_numpy()
    if not np.issubdtype(np_dtype, np.integer):
        return None
    info = np.iinfo(np_dtype)
    return int(info.min), int(info.max)


class _Folder(Transformer):
    """Bottom-up constant folding + integer add-chain reassociation."""

    def __init__(self) -> None:
        self.stats = FoldStats()

    # -- plain folds ---------------------------------------------------------

    def visit_UnOp(self, expr: ir.UnOp):
        if isinstance(expr.operand, ir.Const):
            folded = _fold_unop(expr)
            if folded is not None:
                self.stats.folded += 1
                return folded
        return expr

    def visit_Cast(self, expr: ir.Cast):
        if isinstance(expr.operand, ir.Const):
            folded = _fold_cast(expr)
            if folded is not None:
                self.stats.folded += 1
                return folded
        return expr

    def visit_BinOp(self, expr: ir.BinOp):
        if isinstance(expr.left, ir.Const) and isinstance(expr.right, ir.Const):
            folded = _fold_binop(expr)
            if folded is not None:
                self.stats.folded += 1
                return folded
        reassoc = self._reassociate(expr)
        if reassoc is not None:
            return reassoc
        return expr

    # -- integer add-chain reassociation ------------------------------------

    def _reassociate(self, expr: ir.BinOp) -> Optional[ir.Expr]:
        """Collect the constant terms of one int add/sub chain.

        Valid because every term and every intermediate shares one integer
        dtype whose addition wraps (``cast_result`` truncates after each
        op), and modular addition is associative/commutative.  Terms keep
        their original order; only constants move (to one trailing
        literal), so non-constant evaluation order is untouched.
        """
        if expr.op not in ("add", "sub") or not expr.dtype.is_integer:
            return None
        dtype = expr.dtype
        terms: List[Tuple[ir.Expr, int]] = []  # (term, sign)
        consts: List[Tuple[ir.Const, int]] = []

        def collect(node: ir.Expr, sign: int) -> bool:
            if (
                isinstance(node, ir.BinOp)
                and node.op in ("add", "sub")
                and node.dtype is dtype
            ):
                if not collect(node.left, sign):
                    return False
                return collect(node.right, sign if node.op == "add" else -sign)
            if node.dtype is not dtype:
                return False
            if isinstance(node, ir.Const):
                consts.append((node, sign))
            else:
                terms.append((node, sign))
            return True

        if not collect(expr, 1) or len(consts) < 2 or not terms:
            return None
        # Fold the constants with the runtime's wrapping semantics.
        np_dtype = dtype.to_numpy()
        with np.errstate(over="ignore"):
            acc = np_dtype.type(0)
            for c, sign in consts:
                v = _const_np(c)
                acc = rt.cast_result(
                    np.add(acc, v) if sign > 0 else np.subtract(acc, v), np_dtype
                )
        rebuilt: Optional[ir.Expr] = None
        for term, sign in terms:
            if rebuilt is None:
                if sign > 0:
                    rebuilt = term
                else:
                    rebuilt = ir.BinOp("sub", _make_const(np_dtype.type(0), dtype), term, dtype)
            else:
                rebuilt = ir.BinOp("add" if sign > 0 else "sub", rebuilt, term, dtype)
        if int(acc) != 0:
            rebuilt = ir.BinOp("add", rebuilt, _make_const(acc, dtype), dtype)
        self.stats.reassociated += 1
        return rebuilt


def fold_function(fn: ir.Function) -> Tuple[ir.Function, FoldStats]:
    """Return a folded copy of ``fn`` and what the pass accomplished.

    The returned function drops out-of-band attributes (Transformer
    semantics); callers re-attach the approx tag when they need it."""
    folder = _Folder()
    out = folder.transform_function(fn)
    meta = getattr(fn, "approx", None)
    if meta is not None:
        out.approx = meta
    return out, folder.stats


# ---------------------------------------------------------------------------
# Interval analysis
# ---------------------------------------------------------------------------

#: The "know nothing" interval.
_TOP = (-math.inf, math.inf)


def _widen(value: float) -> float:
    return value


def _iv_add(a, b):
    return a[0] + b[0], a[1] + b[1]


def _iv_sub(a, b):
    return a[0] - b[1], a[1] - b[0]


def _iv_mul(a, b):
    corners = [a[0] * b[0], a[0] * b[1], a[1] * b[0], a[1] * b[1]]
    finite = [c for c in corners if not math.isnan(c)]
    if not finite:
        return _TOP
    return min(finite), max(finite)


def compute_intervals(fn: ir.Function) -> Dict[str, Tuple[float, float]]:
    """Sound value intervals for the single-assignment integer locals.

    Only locals assigned exactly once anywhere in the function are
    tracked: a single static assignment always precedes its uses in the
    linear emission order, and under predication the first write of a
    fresh local binds the full vector (the interpreter's UNSET rule), so
    the RHS interval bounds every lane.  Everything else is ``(-inf,
    +inf)``.  The transfer functions deliberately cover just the idioms
    the approximation rewrites emit — ``imin``/``imax`` clamps, shifted
    or-packing of non-negative fields, small affine arithmetic — and
    return TOP with a dtype-range check everywhere else, so a proven
    interval can never be produced by wrapping arithmetic.
    """
    counts: Dict[str, int] = {}
    for stmt in walk_statements(fn.body):
        if isinstance(stmt, ir.Assign):
            counts[stmt.target] = counts.get(stmt.target, 0) + 1
        elif isinstance(stmt, ir.For):
            # loop vars rebind per iteration; exclude them.
            counts[stmt.var] = counts.get(stmt.var, 0) + 2
    env: Dict[str, Tuple[float, float]] = {}

    def interval(expr: ir.Expr) -> Tuple[float, float]:
        if isinstance(expr, ir.Const) and expr.dtype.is_integer:
            v = int(_const_np(expr))
            return (v, v)
        if isinstance(expr, ir.Var):
            return env.get(expr.name, _TOP)
        if isinstance(expr, ir.Call):
            if expr.func in ("imin", "imax") and len(expr.args) == 2:
                a, b = interval(expr.args[0]), interval(expr.args[1])
                if expr.func == "imin":
                    return (min(a[0], b[0]), min(a[1], b[1]))
                return (max(a[0], b[0]), max(a[1], b[1]))
            return _TOP
        if isinstance(expr, ir.BinOp) and expr.dtype.is_integer:
            rng = _int_range(expr.dtype)
            a, b = interval(expr.left), interval(expr.right)
            if expr.op == "add":
                out = _iv_add(a, b)
            elif expr.op == "sub":
                out = _iv_sub(a, b)
            elif expr.op == "mul":
                out = _iv_mul(a, b)
            elif expr.op == "shl":
                # x << k with constant non-negative k and non-negative x.
                if (
                    isinstance(expr.right, ir.Const)
                    and int(expr.right.value) >= 0
                    and a[0] >= 0
                    and a[1] < math.inf
                ):
                    k = int(expr.right.value)
                    out = (int(a[0]) << k, int(a[1]) << k)
                else:
                    return _TOP
            elif expr.op == "or":
                # For non-negatives, max(x,y) <= x|y <= x+y.
                if a[0] >= 0 and b[0] >= 0:
                    out = (max(a[0], b[0]), a[1] + b[1])
                else:
                    return _TOP
            elif expr.op == "and":
                if a[0] >= 0 and b[0] >= 0:
                    out = (0, min(a[1], b[1]))
                else:
                    return _TOP
            else:
                return _TOP
            # Wrapping guard: a result that could leave the dtype's range
            # wraps at runtime, invalidating the interval arithmetic.
            if rng is None or out[0] < rng[0] or out[1] > rng[1]:
                return _TOP
            return out
        return _TOP

    for stmt in walk_statements(fn.body):
        if isinstance(stmt, ir.Assign) and counts.get(stmt.target) == 1:
            iv = interval(stmt.value)
            if iv != _TOP:
                env[stmt.target] = iv
    return env


def interval_of(
    expr: ir.Expr, env: Dict[str, Tuple[float, float]]
) -> Tuple[float, float]:
    """Interval of one expression under precomputed local intervals."""
    if isinstance(expr, ir.Var):
        return env.get(expr.name, _TOP)
    if isinstance(expr, ir.Const) and expr.dtype.is_integer:
        v = int(_const_np(expr))
        return (v, v)
    if (
        isinstance(expr, ir.BinOp)
        and expr.op == "add"
        and expr.dtype.is_integer
    ):
        rng = _int_range(expr.dtype)
        out = _iv_add(interval_of(expr.left, env), interval_of(expr.right, env))
        if rng is not None and out[0] >= rng[0] and out[1] <= rng[1]:
            return out
    return _TOP
