"""``python -m repro.registry`` — operate on a variant-registry directory.

Subcommands:

* ``inspect DIR`` (default) — stats, keys, Pareto fronts, surrogate
  leave-one-out errors; ``--json`` for machine-readable output.
* ``merge DEST SRC...`` — absorb every point (and sketch) from the
  source registries into DEST.
* ``gc DIR`` — compact to a single fresh segment; by default only each
  key's Pareto front survives (``--keep-all`` keeps dominated points).
* ``ingest DIR TRACE.jsonl`` — fold ``registry_key``-stamped quality
  samples from an exported trace/timeline stream back into the store.

Self-contained checks (used by CI):

* ``--selfcheck`` — for every Table-1 benchmark, tune cold into a fresh
  registry, then warm from it, and verify the warm start reaches a
  TOQ-satisfying choice with at least 50% fewer variant measurements.
* ``--smoke --procs N`` — N concurrent writer processes hammer one
  shared registry; verifies no corruption and no lost points.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .store import VariantRegistry


def _cmd_inspect(args) -> int:
    registry = VariantRegistry(args.dir)
    stats = registry.stats()
    if args.json:
        payload = dict(stats)
        payload["keys_detail"] = {}
        for key in registry.keys():
            front = registry.lookup(key, refresh=False)
            model = registry.fit(key)
            q_err, s_err = model.loo_error() if model.trained else (0.0, 0.0)
            payload["keys_detail"][key] = {
                "points": len(registry.points(key)),
                "front": [p.to_dict() for p in front],
                "surrogate": {
                    "trained": model.trained,
                    "points": len(model),
                    "loo_quality_mae": q_err,
                    "loo_speedup_mae": s_err,
                },
            }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(f"registry {stats['root']}")
    print(
        f"  {stats['keys']} keys, {stats['points']} points, "
        f"{stats['segments']} segments (generation {stats['generation']}, "
        f"{stats['recovered_lines']} recovered lines)"
    )
    for key in registry.keys():
        front = registry.lookup(key, refresh=False)
        total = len(registry.points(key))
        model = registry.fit(key)
        q_err, s_err = model.loo_error() if model.trained else (0.0, 0.0)
        print(f"  {key}")
        print(
            f"    front {len(front)}/{total} points; surrogate "
            f"loo mae quality={q_err:.4f} speedup={s_err:.3f}"
        )
        for point in front:
            print(
                f"      {point.variant:40s} quality={point.quality:.4f} "
                f"speedup={point.speedup:.2f}x samples={point.samples}"
            )
    return 0


def _cmd_merge(args) -> int:
    dest = VariantRegistry(args.dest)
    merged = 0
    for src in args.sources:
        merged += dest.merge_from(VariantRegistry(src))
    print(f"merged {merged} points from {len(args.sources)} registries into {args.dest}")
    return 0


def _cmd_gc(args) -> int:
    registry = VariantRegistry(args.dir)
    before = registry.stats()
    removed = registry.compact(front_only=not args.keep_all)
    after = registry.stats()
    print(
        f"gc {args.dir}: {before['points']} -> {after['points']} points, "
        f"{removed} segments removed (now generation {after['generation']})"
    )
    return 0


def _cmd_ingest(args) -> int:
    registry = VariantRegistry(args.dir)
    entries = []
    with open(args.trace, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                entries.append(json.loads(line))
            except ValueError:
                continue
    absorbed = registry.ingest_timeline(entries)
    print(f"ingested {absorbed} quality observations from {args.trace}")
    return 0


# ---------------------------------------------------------------- selfcheck


def _selfcheck(out=print) -> int:
    """Warm-vs-cold measurement savings across every Table-1 benchmark."""
    import tempfile

    from ..approx.compiler import Paraprox
    from ..apps.registry import APP_CLASSES, make_app
    from ..device import DeviceKind, spec_for
    from ..runtime.tuner import GreedyTuner

    spec = spec_for(DeviceKind.GPU)
    toq = 0.90
    failures: List[str] = []
    cold_total = warm_total = 0
    with tempfile.TemporaryDirectory(prefix="repro-registry-check-") as root:
        for name in APP_CLASSES:
            registry = VariantRegistry(f"{root}/{name}")
            app = make_app(name)
            variants = Paraprox(target_quality=toq).compile(app)
            inputs = app.generate_inputs(seed=app.seed)

            cold = GreedyTuner(spec, toq=toq, registry=registry)
            cold_result = cold.profile(app, variants, inputs)
            warm = GreedyTuner(spec, toq=toq, registry=registry)
            warm_result = warm.profile(app, variants, inputs)

            cold_total += cold.last_measured
            warm_total += warm.last_measured
            budget = max(1, cold.last_measured // 2)
            problems = []
            if warm.last_seed_mode != "warm":
                problems.append(f"seed_mode={warm.last_seed_mode}")
            if warm.last_measured > budget:
                problems.append(
                    f"measured {warm.last_measured} > budget {budget}"
                )
            if warm_result.chosen.quality < toq:
                problems.append(
                    f"warm choice quality {warm_result.chosen.quality:.4f} < {toq}"
                )
            if warm_result.chosen.name != cold_result.chosen.name:
                problems.append(
                    f"warm chose {warm_result.chosen.name}, "
                    f"cold chose {cold_result.chosen.name}"
                )
            status = "ok " if not problems else "FAIL"
            out(
                f"[{status}] {name:12s} cold={cold.last_measured:2d} "
                f"warm={warm.last_measured:2d} chosen={warm_result.chosen.name}"
                + ("" if not problems else f"  <- {'; '.join(problems)}")
            )
            if problems:
                failures.append(name)
    savings = 1.0 - warm_total / max(1, cold_total)
    out(
        f"{len(APP_CLASSES) - len(failures)}/{len(APP_CLASSES)} apps warm-start "
        f"clean; measurements {cold_total} cold -> {warm_total} warm "
        f"({savings:.0%} saved)"
    )
    if savings < 0.50:
        out(f"FAIL: aggregate savings {savings:.0%} < 50%")
        return 1
    return 1 if failures else 0


# ---------------------------------------------------------------- smoke

#: One writer process: append `rounds` batches under its own name, then
#: print how many points it wrote.  Run via ``python -c`` so the smoke
#: test exercises real cross-process locking, not threads.
_SMOKE_WRITER = """
import sys
from repro.registry.pareto import ParetoPoint
from repro.registry.store import VariantRegistry

root, worker, rounds = sys.argv[1], int(sys.argv[2]), int(sys.argv[3])
registry = VariantRegistry(root, segment_bytes=2048)
written = 0
for i in range(rounds):
    points = [
        ParetoPoint(
            variant=f"w{worker}-v{j}",
            quality=0.90 + 0.001 * j,
            speedup=1.0 + 0.1 * j + 0.01 * worker,
            knobs={"rate": j},
        )
        for j in range(4)
    ]
    registry.record_many(f"smoke/key-{i % 3}", points)
    written += len(points)
print(written)
"""


def _smoke(procs: int, rounds: int, root: Optional[str], out=print) -> int:
    import os
    import subprocess
    import tempfile

    env = dict(os.environ)
    src = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")

    def run(directory: str) -> int:
        workers = [
            subprocess.Popen(
                [
                    sys.executable, "-c", _SMOKE_WRITER,
                    directory, str(i), str(rounds),
                ],
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                env=env,
                text=True,
            )
            for i in range(procs)
        ]
        failures = 0
        for worker in workers:
            stdout, stderr = worker.communicate(timeout=120)
            if worker.returncode != 0:
                out(f"writer failed: {stderr.strip()}")
                failures += 1
        if failures:
            return 1
        registry = VariantRegistry(directory)
        stats = registry.stats()
        expected_variants = procs * 4  # distinct (worker, j) names per key
        out(
            f"smoke: {procs} writers x {rounds} rounds -> {stats['keys']} keys, "
            f"{stats['points']} points, {stats['segments']} segments, "
            f"{stats['recovered_lines']} recovered lines"
        )
        ok = (
            stats["recovered_lines"] == 0
            and stats["keys"] == min(3, rounds)
            and all(
                len(registry.points(key)) == expected_variants
                for key in registry.keys()
            )
        )
        if not ok:
            out("FAIL: store state does not match what the writers wrote")
            return 1
        out("smoke OK: concurrent writers, no corruption, no lost points")
        return 0

    if root is not None:
        return run(root)
    with tempfile.TemporaryDirectory(prefix="repro-registry-smoke-") as tmp:
        return run(tmp)


# ---------------------------------------------------------------- entry


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if "--selfcheck" in argv:
        return _selfcheck()

    parser = argparse.ArgumentParser(
        prog="python -m repro.registry",
        description="Inspect and maintain a cross-session variant registry.",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="concurrent-writer smoke test (use with --procs/--dir)",
    )
    parser.add_argument(
        "--procs", type=int, default=2, help="smoke writer processes"
    )
    parser.add_argument(
        "--rounds", type=int, default=8, help="smoke write rounds per process"
    )
    parser.add_argument(
        "--dir", default=None, help="registry directory for --smoke"
    )
    sub = parser.add_subparsers(dest="command")

    p_inspect = sub.add_parser("inspect", help="show keys, fronts, surrogates")
    p_inspect.add_argument("dir")
    p_inspect.add_argument("--json", action="store_true")
    p_inspect.set_defaults(func=_cmd_inspect)

    p_merge = sub.add_parser("merge", help="absorb source registries into dest")
    p_merge.add_argument("dest")
    p_merge.add_argument("sources", nargs="+")
    p_merge.set_defaults(func=_cmd_merge)

    p_gc = sub.add_parser("gc", help="compact; prune dominated points")
    p_gc.add_argument("dir")
    p_gc.add_argument(
        "--keep-all", action="store_true",
        help="compact segments but keep dominated points",
    )
    p_gc.set_defaults(func=_cmd_gc)

    p_ingest = sub.add_parser(
        "ingest", help="fold exported timeline quality samples into the store"
    )
    p_ingest.add_argument("dir")
    p_ingest.add_argument("trace")
    p_ingest.set_defaults(func=_cmd_ingest)

    # Bare `python -m repro.registry DIR` means inspect.
    if argv and not argv[0].startswith("-") and argv[0] not in (
        "inspect", "merge", "gc", "ingest"
    ):
        argv = ["inspect", *argv]
    args = parser.parse_args(argv)
    if args.smoke:
        return _smoke(args.procs, args.rounds, args.dir)
    if not hasattr(args, "func"):
        parser.print_help()
        return 2
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
