"""Registry keys: kernel fingerprint x device fingerprint x input sketch.

Tuning knowledge transfers only between contexts that would measure the
same thing: the same kernel IR, the same modelled device, and inputs
drawn from the same distribution.  The first two reuse the fingerprints
the compiled-variant and profile caches already key on.  The third is the
new piece: a *distribution sketch* of the inputs.

Discretizing noisy sample statistics into buckets can never be stable —
whatever the bucket width, some distribution sits on a boundary and
splits keys between seeds.  So the sketch is kept **continuous**: per
input, a structural part that must match exactly (name, dtype, rank,
log2-bucketed size) plus smooth summary coordinates (log2 of the stddev,
a signed log-compressed mean-in-stddev-units).  The registry stores each
key's sketch vector and resolves lookups by *proximity*
(:func:`sketch_distance` under :data:`DEFAULT_TOLERANCE`): fresh draws
from one generator land within tolerance of the stored key, while a
0..255 image sits eight units from a 0..1 image and never matches.  The
byte-exact :func:`~repro.apps.base._input_fingerprint` the ProfileCache
uses is the within-process counterpart; the sketch is its cross-session
generalization.
"""

from __future__ import annotations

import hashlib
import math
from typing import Dict, List, Tuple

import numpy as np

#: Bump when the sketch definition changes; old keys simply stop
#: matching (their structural strings embed the version) and their
#: fronts age out through garbage collection.
SKETCH_VERSION = 2

#: Largest :func:`sketch_distance` at which two sketches are considered
#: draws from the same distribution.  Coordinates are in log2-ish units,
#: so 1.0 means "within about a factor of two on every axis".
DEFAULT_TOLERANCE = 1.0

#: One sketch entry: (structural identity, smooth coordinates).
SketchEntry = Tuple[str, List[float]]
SketchVector = List[SketchEntry]


def _log_center(mean: float, std: float) -> float:
    """Signed log-compressed location: sign(mean) * log2(1 + |mean|/std).

    Expressing the mean in stddev units makes the coordinate scale-free;
    the log compression keeps narrow peaks far from zero (temperature
    fields at 300 +- 2) from amplifying seed noise into huge distances.
    """
    ratio = abs(mean) / std
    return math.copysign(math.log2(1.0 + ratio), mean)


def _array_entry(name: str, value: np.ndarray) -> SketchEntry:
    if value.size == 0:
        return (f"{name}:{value.dtype}:{value.ndim}d:empty", [])
    data = value.astype(np.float64, copy=False)
    mean = float(np.mean(data))
    std = float(np.std(data))
    size_bucket = int(math.log2(value.size))
    structural = f"{name}:{value.dtype}:{value.ndim}d:2^{size_bucket}"
    if not math.isfinite(std) or std <= 1e-12:
        # A constant array: its single value is the only coordinate.
        return (structural + ":const", [_scalar_coordinate(mean)])
    return (structural, [math.log2(std), _log_center(mean, std)])


def _scalar_coordinate(value: float) -> float:
    return math.copysign(math.log2(1.0 + abs(value)), value)


def input_sketch_vector(inputs: Dict[str, object]) -> SketchVector:
    """The comparable sketch: structural strings plus smooth coordinates."""
    entries: SketchVector = [(f"v{SKETCH_VERSION}", [])]
    for key in sorted(inputs):
        value = inputs[key]
        if isinstance(value, np.ndarray):
            entries.append(_array_entry(key, value))
        elif isinstance(value, float) and math.isfinite(value):
            entries.append((f"{key}:float", [_scalar_coordinate(value)]))
        else:
            entries.append((f"{key}={value!r}", []))
    return entries


def sketch_distance(a: SketchVector, b: SketchVector) -> float:
    """Chebyshev distance between two sketches; inf on structural mismatch."""
    if len(a) != len(b):
        return float("inf")
    worst = 0.0
    for (sa, ca), (sb, cb) in zip(a, b):
        if sa != sb or len(ca) != len(cb):
            return float("inf")
        for va, vb in zip(ca, cb):
            worst = max(worst, abs(va - vb))
    return worst


def sketch_to_json(vector: SketchVector) -> list:
    return [[s, list(c)] for s, c in vector]


def sketch_from_json(data) -> SketchVector:
    if not isinstance(data, list):
        raise ValueError(f"sketch must be a list, got {type(data).__name__}")
    out: SketchVector = []
    for item in data:
        structural, coords = item
        out.append((str(structural), [float(v) for v in coords]))
    return out


def input_sketch(inputs: Dict[str, object]) -> str:
    """A short digest naming a *new* key's sketch.

    Only the structural parts and coarsely rounded coordinates go into
    the digest — it is an identifier, not the matcher.  Proximity over
    the stored vectors (:func:`sketch_distance`) is what resolves
    lookups, so boundary wobble here costs nothing.
    """
    parts = []
    for structural, coords in input_sketch_vector(inputs):
        rounded = ",".join(f"{round(c)}" for c in coords)
        parts.append(f"{structural}[{rounded}]")
    payload = "|".join(parts).encode("utf-8")
    return hashlib.blake2b(payload, digest_size=10).hexdigest()


def device_fingerprint(spec) -> str:
    """Human-readable device identity (kind plus model name)."""
    return f"{spec.kind.value}:{spec.name}".replace("/", "_").replace(" ", "_")


def kernel_digest(app) -> str:
    """Digest of the app's kernel identity (printed IR, or app shape for
    multi-kernel pipelines) — same source as the variant-cache key."""
    from ..serve.cache import app_fingerprint

    payload = app_fingerprint(app).encode("utf-8")
    return hashlib.blake2b(payload, digest_size=10).hexdigest()


def key_prefix(app, spec) -> str:
    """Everything but the sketch: ``<app>:<kernel>/<device>``.

    The app name prefixes the kernel digest purely for human-readable
    CLI listings; the digest alone already pins the identity.
    """
    return (
        f"{getattr(app, 'name', type(app).__name__)}:{kernel_digest(app)}"
        f"/{device_fingerprint(spec)}"
    )


def registry_key(app, spec, inputs: Dict[str, object]) -> str:
    """The canonical key a fresh (app, device, input set) would create.

    Prefer :meth:`VariantRegistry.resolve_key`, which snaps to an
    existing key whose stored sketch is within tolerance before minting
    this one.
    """
    return f"{key_prefix(app, spec)}/{input_sketch(inputs)}"
