"""Cross-session variant registry with model-based design-space exploration.

The greedy tuner (paper §3.5) walks one path through the knob space per
session and forgets it at exit.  This package makes that knowledge
durable and shared, following autoAx: measurements are characterized
into per-(kernel, device, input-sketch) Pareto fronts plus lightweight
surrogates, persisted in a crash-safe append-only store that any number
of serving workers can read and write concurrently.  Warm tuning then
starts from the front's TOQ-feasible knee and refines locally instead of
re-measuring the whole variant ladder — recalibration becomes a lookup.

Public surface:

* :class:`VariantRegistry` — the store (``repro.registry.store``);
* :class:`ParetoPoint`, :func:`pareto_front`, :func:`knee` — front
  machinery (``repro.registry.pareto``);
* :class:`Surrogate` — knob-space quality/speedup models
  (``repro.registry.surrogate``);
* :func:`registry_key`, :func:`input_sketch` — key derivation
  (``repro.registry.sketch``);
* ``python -m repro.registry`` — inspect / merge / gc / ingest /
  selfcheck / smoke CLI (``repro.registry.__main__``).

See ``docs/REGISTRY.md`` for the file format, the locking model and the
environment variables.
"""

from .pareto import ParetoPoint, dominates, feasible, knee, pareto_front
from .sketch import device_fingerprint, input_sketch, kernel_digest, registry_key
from .store import VariantRegistry, resolve_registry
from .surrogate import Surrogate, fit_surrogate

__all__ = [
    "VariantRegistry",
    "resolve_registry",
    "ParetoPoint",
    "pareto_front",
    "dominates",
    "feasible",
    "knee",
    "Surrogate",
    "fit_surrogate",
    "registry_key",
    "input_sketch",
    "device_fingerprint",
    "kernel_digest",
]
