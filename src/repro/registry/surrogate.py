"""Lightweight quality/speedup surrogates over the knob space.

autoAx-style design-space exploration needs a cheap predictor: given a
variant's knob values, estimate where it lands on the quality/speedup
plane without running it.  With the handful of points a registry key
holds (one per variant the Pareto pruning kept, plus timeline
observations folded in), anything heavier than distance-weighted
regression would overfit — so that is exactly what this is: a Gaussian-
kernel k-NN over a normalized knob-feature space, refit in microseconds
under a ``registry.fit`` span.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..obs import trace as obs_trace
from .pareto import ParetoPoint


def _numeric(value) -> Optional[float]:
    if isinstance(value, bool):
        return float(value)
    if isinstance(value, (int, float)):
        return float(value)
    return None


class Surrogate:
    """Distance-weighted regressor from knob dicts to (quality, speedup).

    Features are the union of knob names over the training points.
    Numeric knobs contribute a range-normalized absolute difference to
    the distance; categorical knobs contribute 0 (equal) or 1 (not).
    Prediction is the similarity-weighted mean over training points with
    bandwidth ``h`` in normalized-distance units.
    """

    def __init__(self, bandwidth: float = 0.35) -> None:
        self.bandwidth = bandwidth
        self._points: List[ParetoPoint] = []
        self._spans: Dict[str, Tuple[float, float]] = {}

    # -- fitting -------------------------------------------------------------

    def fit(self, points: Iterable[ParetoPoint]) -> "Surrogate":
        self._points = [p for p in points if p.knobs]
        spans: Dict[str, Tuple[float, float]] = {}
        for point in self._points:
            for name, value in point.knobs.items():
                v = _numeric(value)
                if v is None:
                    continue
                lo, hi = spans.get(name, (v, v))
                spans[name] = (min(lo, v), max(hi, v))
        self._spans = spans
        return self

    @property
    def trained(self) -> bool:
        return bool(self._points)

    def __len__(self) -> int:
        return len(self._points)

    # -- prediction ----------------------------------------------------------

    def _distance(self, a: Dict[str, object], b: Dict[str, object]) -> float:
        names = set(a) | set(b)
        if not names:
            return 0.0
        total = 0.0
        for name in names:
            va, vb = a.get(name), b.get(name)
            na, nb = _numeric(va), _numeric(vb)
            if na is not None and nb is not None:
                lo, hi = self._spans.get(name, (min(na, nb), max(na, nb)))
                scale = (hi - lo) or 1.0
                total += ((na - nb) / scale) ** 2
            else:
                total += 0.0 if va == vb else 1.0
        return math.sqrt(total / len(names))

    def predict(self, knobs: Dict[str, object]) -> Tuple[float, float]:
        """Estimated (quality, speedup) for a variant with these knobs.

        Raises ValueError when the surrogate has no training points; the
        registry guards this by falling back to front lookups.
        """
        if not self._points:
            raise ValueError("surrogate has no training points")
        weights, qualities, speedups = [], [], []
        for point in self._points:
            d = self._distance(knobs, dict(point.knobs))
            w = math.exp(-((d / self.bandwidth) ** 2)) * point.samples
            weights.append(w)
            qualities.append(point.quality)
            speedups.append(point.speedup)
        total = sum(weights)
        if total <= 0.0:
            # Everything is infinitely far: fall back to the plain mean.
            n = len(self._points)
            return sum(qualities) / n, sum(speedups) / n
        quality = sum(w * q for w, q in zip(weights, qualities)) / total
        speedup = sum(w * s for w, s in zip(weights, speedups)) / total
        return quality, speedup

    # -- diagnostics ---------------------------------------------------------

    def loo_error(self) -> Tuple[float, float]:
        """Mean absolute leave-one-out error on (quality, speedup).

        The CLI prints this next to each key so an operator can see
        whether the model is trustworthy before leaning on it; (0, 0)
        when there are too few points to hold one out.
        """
        if len(self._points) < 2:
            return 0.0, 0.0
        held = list(self._points)
        q_err = s_err = 0.0
        for i, point in enumerate(held):
            self._points = held[:i] + held[i + 1 :]
            q, s = self.predict(dict(point.knobs))
            q_err += abs(q - point.quality)
            s_err += abs(s - point.speedup)
        self._points = held
        n = len(held)
        return q_err / n, s_err / n


def fit_surrogate(
    points: Sequence[ParetoPoint], bandwidth: float = 0.35
) -> Surrogate:
    """Fit a surrogate under a ``registry.fit`` span (the observable unit
    the obs layer tracks)."""
    with obs_trace.span("registry.fit", points=len(points)) as span:
        model = Surrogate(bandwidth=bandwidth).fit(points)
        span.set(trained=model.trained)
    return model
