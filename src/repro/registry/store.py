"""The cross-session variant registry: a crash-safe on-disk tuning store.

One registry directory holds everything a fleet of serving workers has
learned about a knob space, keyed by ``(kernel fingerprint, device
fingerprint, input-distribution sketch)`` (:mod:`repro.registry.sketch`).
Per key it keeps the by-variant merged measurement points whose Pareto
front (:mod:`repro.registry.pareto`) seeds warm tuning, plus enough raw
evidence to fit surrogates (:mod:`repro.registry.surrogate`).

Durability model — **versioned append-only segments**:

* All state lives in ``seg-<NNNNNN>.jsonl`` files, one JSON record per
  line, replayed in segment order at load.  Writers only ever append;
  a torn final line (crash mid-write) is detected and dropped, and a
  corrupt line abandons the rest of *that segment only* — the store
  rebuilds from the last good record of the last good generation.
* The active segment rotates at ``segment_bytes``; compaction
  (:meth:`VariantRegistry.compact`) writes the consolidated state into a
  fresh segment beginning with a ``truncate`` record (so replay ignores
  everything older even if deleting the old segments is interrupted),
  then removes the superseded files.
* Cross-process safety: every append and every load holds an
  ``fcntl.flock`` on ``<root>/.lock`` (exclusive for writers, shared for
  readers), so the process-pool fleet can share one registry directory.
  In-process, a ``threading.Lock`` serializes the same paths.

``root=None`` keeps the registry purely in memory — the zero-IO mode
sessions use when no registry directory is configured.

Environment overrides (all optional):

* ``REPRO_REGISTRY_DIR`` — default directory ``resolve_registry`` opens
  when a session asks for ``registry="auto"``.
* ``REPRO_REGISTRY_MARGIN`` — TOQ safety margin for knee selection
  (default 0.005): warm starts only trust front points clearing
  ``toq + margin``.
* ``REPRO_REGISTRY_MIN_POINTS`` — minimum front points before a warm
  start is attempted (default 2).
* ``REPRO_REGISTRY_SEGMENT_BYTES`` — active-segment rotation threshold
  (default 1 MiB).
* ``REPRO_REGISTRY_SKETCH_TOL`` — input-sketch match tolerance in log2
  units (default 1.0): how far a fresh input draw's sketch may sit from
  a stored key's sketch and still reuse its front.
"""

from __future__ import annotations

import io
import json
import os
import re
import threading
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ..errors import SerializationError
from ..obs import trace as obs_trace
from .pareto import ParetoPoint, knee, merge_points, pareto_front
from .sketch import (
    DEFAULT_TOLERANCE,
    input_sketch_vector,
    key_prefix,
    registry_key,
    sketch_distance,
    sketch_from_json,
    sketch_to_json,
)
from .surrogate import Surrogate, fit_surrogate

try:  # pragma: no cover - always present on the POSIX hosts we target
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback (no-op locks)
    fcntl = None

#: On-disk record format version.
FORMAT = 1

_SEGMENT_RE = re.compile(r"^seg-(\d{6})\.jsonl$")

DEFAULT_SEGMENT_BYTES = 1 << 20
DEFAULT_MARGIN = 0.005
DEFAULT_MIN_POINTS = 2


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(name)
    if not raw:
        return default
    try:
        return float(raw)
    except ValueError:
        return default


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name)
    if not raw:
        return default
    try:
        return int(raw)
    except ValueError:
        return default


class _Metrics:
    """Lazily-registered ``repro_registry_*`` metric families."""

    _instance = None

    def __init__(self) -> None:
        from ..obs.registry import get_registry

        registry = get_registry()
        self.lookups = registry.counter(
            "repro_registry_lookups_total",
            "registry front lookups",
            labelnames=("result",),
        )
        self.writes = registry.counter(
            "repro_registry_writes_total", "points appended to the registry"
        )
        self.warmstarts = registry.counter(
            "repro_registry_warmstarts_total",
            "tuner seedings by mode",
            labelnames=("mode",),
        )
        self.recovered = registry.counter(
            "repro_registry_recovered_lines_total",
            "corrupt or torn segment lines dropped at load",
        )
        self.keys = registry.gauge(
            "repro_registry_keys", "distinct keys held in memory"
        )
        self.points = registry.gauge(
            "repro_registry_points", "merged points held in memory"
        )
        self.fit_seconds = registry.histogram(
            "repro_registry_fit_seconds", "surrogate fit wall time"
        )

    @classmethod
    def get(cls) -> "_Metrics":
        if cls._instance is None:
            cls._instance = cls()
        return cls._instance


class _FileLock:
    """``flock`` on ``<root>/.lock``; a no-op when rootless or non-POSIX."""

    def __init__(self, root: Optional[Path]) -> None:
        self.path = root / ".lock" if root is not None else None
        self._fh: Optional[io.IOBase] = None

    def acquire(self, shared: bool = False) -> None:
        if self.path is None or fcntl is None:
            return
        self._fh = self.path.open("a+b")
        fcntl.flock(
            self._fh.fileno(), fcntl.LOCK_SH if shared else fcntl.LOCK_EX
        )

    def release(self) -> None:
        if self._fh is None:
            return
        if fcntl is not None:
            fcntl.flock(self._fh.fileno(), fcntl.LOCK_UN)
        self._fh.close()
        self._fh = None


class VariantRegistry:
    """The shared store of per-key Pareto fronts and surrogate evidence.

    Args:
        root: registry directory (created if missing); ``None`` for a
            purely in-memory registry.
        segment_bytes: active-segment rotation threshold.
        margin: TOQ safety margin for knee selection.
        min_points: front points required before warm starts engage.
        fsync: fsync every append (off by default; the append-only
            format already confines a crash to the torn final line).
    """

    def __init__(
        self,
        root: Optional[object] = None,
        segment_bytes: Optional[int] = None,
        margin: Optional[float] = None,
        min_points: Optional[int] = None,
        fsync: bool = False,
    ) -> None:
        self.root = Path(root) if root is not None else None
        self.segment_bytes = (
            segment_bytes
            if segment_bytes is not None
            else _env_int("REPRO_REGISTRY_SEGMENT_BYTES", DEFAULT_SEGMENT_BYTES)
        )
        self.margin = (
            margin
            if margin is not None
            else _env_float("REPRO_REGISTRY_MARGIN", DEFAULT_MARGIN)
        )
        self.min_points = (
            min_points
            if min_points is not None
            else _env_int("REPRO_REGISTRY_MIN_POINTS", DEFAULT_MIN_POINTS)
        )
        self.tolerance = _env_float(
            "REPRO_REGISTRY_SKETCH_TOL", DEFAULT_TOLERANCE
        )
        self.fsync = fsync
        self._state: Dict[str, Dict[str, ParetoPoint]] = {}
        self._sketches: Dict[str, list] = {}  # key -> stored sketch vector
        self._pending_sketches: Dict[str, list] = {}  # minted, not yet appended
        self._offsets: Dict[str, int] = {}  # segment name -> bytes consumed
        self._poisoned: set = set()  # segments with an unparseable tail
        self._lock = threading.Lock()
        self._flock = _FileLock(self.root)
        self._version = 0  # bumped on every state change (surrogate memo)
        self._fit_memo: Dict[str, Tuple[int, Surrogate]] = {}
        self.recovered_lines = 0
        if self.root is not None:
            self.root.mkdir(parents=True, exist_ok=True)
            with self._lock:
                self._flock.acquire(shared=True)
                try:
                    self._replay()
                finally:
                    self._flock.release()

    # -- keys ------------------------------------------------------------------

    def key_for(self, app, spec, inputs) -> str:
        """The canonical key a fresh (app, device, input set) would mint.

        Prefer :meth:`resolve_key`, which snaps to an existing key whose
        stored sketch is within tolerance before minting a new one.
        """
        return registry_key(app, spec, inputs)

    def resolve_key(self, app, spec, inputs) -> str:
        """The key this (app, device, input set) should tune under.

        Sample moments wobble between draws of the same distribution, so
        exact sketch digests cannot be the matcher.  Instead every key
        stores its continuous sketch vector; resolution finds the
        nearest stored key with the same kernel/device prefix and reuses
        it when within :attr:`tolerance` (Chebyshev, log2-ish units).
        Only genuinely new distributions mint new keys.
        """
        self.refresh()
        prefix = key_prefix(app, spec) + "/"
        vector = input_sketch_vector(inputs)
        best_key, best_distance = None, float("inf")
        with self._lock:
            for key, stored in self._sketches.items():
                if not key.startswith(prefix):
                    continue
                distance = sketch_distance(vector, stored)
                if distance < best_distance:
                    best_key, best_distance = key, distance
        if best_key is not None and best_distance <= self.tolerance:
            return best_key
        key = registry_key(app, spec, inputs)
        with self._lock:
            if key not in self._sketches:
                self._pending_sketches[key] = sketch_to_json(vector)
        return key

    def keys(self) -> List[str]:
        with self._lock:
            return sorted(self._state)

    def __len__(self) -> int:
        with self._lock:
            return len(self._state)

    # -- segment machinery -----------------------------------------------------

    def _segments(self) -> List[Path]:
        if self.root is None:
            return []
        found = []
        for path in self.root.iterdir():
            if _SEGMENT_RE.match(path.name):
                found.append(path)
        return sorted(found)

    @staticmethod
    def _segment_seq(path: Path) -> int:
        return int(_SEGMENT_RE.match(path.name).group(1))

    def generation(self) -> int:
        """The current segment generation (0 for a fresh/memory store)."""
        segments = self._segments()
        return self._segment_seq(segments[-1]) if segments else 0

    def _replay(self) -> None:
        """Rebuild (or incrementally extend) memory state from segments.

        Called under both locks.  Segments already consumed are resumed
        from their recorded byte offset; a previously-seen segment that
        vanished (compaction by another process) forces a full rebuild.
        """
        segments = self._segments()
        names = {p.name for p in segments}
        if any(name not in names for name in self._offsets):
            self._state.clear()
            self._offsets.clear()
            self._poisoned.clear()
            self._fit_memo.clear()
        for path in segments:
            self._replay_segment(path)
        self._publish_gauges()

    def _replay_segment(self, path: Path) -> None:
        offset = self._offsets.get(path.name, 0)
        try:
            size = path.stat().st_size
        except OSError:
            return
        if size <= offset:
            return
        generation = self._segment_seq(path)
        with path.open("rb") as fh:
            fh.seek(offset)
            consumed = offset
            for raw in fh:
                if not raw.endswith(b"\n"):
                    # Torn final line: a writer crashed (or is) mid-append.
                    # Stop here; the offset lets a later replay resume once
                    # the line is completed.
                    self.recovered_lines += 1
                    _Metrics.get().recovered.inc()
                    break
                consumed += len(raw)
                line = raw.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line.decode("utf-8"))
                    self._apply(record, generation)
                except (ValueError, SerializationError, KeyError, TypeError):
                    # A corrupt line poisons the rest of its segment (we
                    # cannot trust framing past it) but not the store:
                    # later segments still replay.
                    self.recovered_lines += 1
                    _Metrics.get().recovered.inc()
                    self._poisoned.add(path.name)
                    consumed = size
                    break
        self._offsets[path.name] = consumed

    def _apply(self, record: dict, generation: int) -> None:
        op = record.get("op", "point")
        if op == "truncate":
            # A compacted segment starts from nothing: everything the
            # older segments said is superseded.
            self._state.clear()
            self._sketches.clear()
            self._fit_memo.clear()
        elif op == "sketch":
            self._sketches[str(record["key"])] = [
                (str(s), [float(v) for v in c])
                for s, c in record["sketch"]
            ]
        elif op == "point":
            point = ParetoPoint.from_dict(record["point"])
            if point.generation < generation:
                point = ParetoPoint.from_dict(
                    {**point.to_dict(), "generation": generation}
                )
            merge_points(
                self._state.setdefault(str(record["key"]), {}), [point]
            )
        else:
            raise SerializationError(f"unknown registry op {op!r}")
        self._version += 1

    def _active_segment(self) -> Path:
        segments = self._segments()
        if not segments:
            return self.root / "seg-000001.jsonl"
        active = segments[-1]
        try:
            size = active.stat().st_size
        except OSError:
            return active
        # Rotate when full — and also when the segment has a tail replay
        # could not consume (a torn line from a crashed writer, or framing
        # poisoned by a corrupt record).  Appending after such a tail
        # would glue the new record onto the unreadable bytes and lose
        # it; a fresh segment is readable by every replayer.  Called
        # after ``_replay`` under the exclusive lock, so the offset is
        # current.
        unreadable_tail = (
            active.name in self._poisoned
            or self._offsets.get(active.name, 0) != size
        )
        if size >= self.segment_bytes or unreadable_tail:
            return self.root / f"seg-{self._segment_seq(active) + 1:06d}.jsonl"
        return active

    def _append(self, records: List[dict]) -> None:
        """Append records to the active segment (called under both locks)."""
        if self.root is None:
            return
        path = self._active_segment()
        payload = "".join(
            json.dumps(r, sort_keys=True, separators=(",", ":")) + "\n"
            for r in records
        )
        with path.open("a", encoding="utf-8") as fh:
            fh.write(payload)
            fh.flush()
            if self.fsync:
                os.fsync(fh.fileno())
        self._offsets[path.name] = (
            self._offsets.get(path.name, 0) + len(payload.encode("utf-8"))
        )

    def _publish_gauges(self) -> None:
        metrics = _Metrics.get()
        metrics.keys.set(len(self._state))
        metrics.points.set(sum(len(v) for v in self._state.values()))

    # -- writes ----------------------------------------------------------------

    def record(self, key: str, point: ParetoPoint) -> None:
        """Merge one measurement point and append it to the log."""
        self.record_many(key, [point])

    def record_many(self, key: str, points: List[ParetoPoint]) -> None:
        """Record a batch under one lock acquisition (a tuning write-back)."""
        if not points:
            return
        metrics = _Metrics.get()
        with self._lock:
            self._flock.acquire()
            try:
                self._replay()  # fold in other writers before merging ours
                generation = max(1, self.generation())
                stamped = [
                    ParetoPoint.from_dict(
                        {**p.to_dict(), "generation": generation}
                    )
                    for p in points
                ]
                merge_points(self._state.setdefault(key, {}), stamped)
                records: List[dict] = []
                sketch = self._pending_sketches.pop(key, None)
                if sketch is not None and key not in self._sketches:
                    # First write under a freshly minted key: persist its
                    # sketch vector so future sessions can proximity-match.
                    self._sketches[key] = sketch_from_json(sketch)
                    records.append(
                        {"v": FORMAT, "op": "sketch", "key": key, "sketch": sketch}
                    )
                records.extend(
                    {"v": FORMAT, "op": "point", "key": key, "point": p.to_dict()}
                    for p in stamped
                )
                self._append(records)
                self._version += 1
                self._fit_memo.pop(key, None)
                metrics.writes.inc(len(stamped))
                self._publish_gauges()
            finally:
                self._flock.release()

    def record_observation(
        self,
        key: str,
        variant: str,
        quality: float,
        speedup: Optional[float] = None,
    ) -> bool:
        """Fold one served-quality observation (e.g. a drift sample) into
        the variant's point.  Timelines carry no cycle counts, so the
        stored speedup is reused unless a fresh one is given.  Returns
        False when the variant has no point yet (nothing to refine)."""
        with self._lock:
            held = self._state.get(key, {}).get(variant)
        if held is None:
            return False
        observation = ParetoPoint(
            variant=variant,
            quality=float(quality),
            speedup=float(speedup) if speedup is not None else held.speedup,
            cycles=0.0,
            knobs=dict(held.knobs),
            identity=held.identity,
            samples=1,
        )
        self.record(key, observation)
        return True

    def ingest_timeline(self, entries: List[dict]) -> int:
        """Fold quality-timeline entries (``registry_key``-stamped quality
        samples) back into the store — the obs-export-to-training-data
        path.  Returns the number of observations absorbed."""
        absorbed = 0
        for entry in entries:
            if entry.get("kind") != "quality_sample":
                continue
            key = entry.get("registry_key")
            variant = entry.get("variant")
            quality = entry.get("quality")
            if not key or not variant or variant == "exact":
                continue
            if not isinstance(quality, (int, float)):
                continue
            if self.record_observation(
                str(key), str(variant), float(quality),
                speedup=entry.get("speedup"),
            ):
                absorbed += 1
        return absorbed

    # -- reads -----------------------------------------------------------------

    def refresh(self) -> None:
        """Fold in whatever other processes appended since the last read."""
        if self.root is None:
            return
        with self._lock:
            self._flock.acquire(shared=True)
            try:
                self._replay()
            finally:
                self._flock.release()

    def points(self, key: str) -> List[ParetoPoint]:
        """Every merged point held for ``key`` (surrogate training data)."""
        with self._lock:
            return list(self._state.get(key, {}).values())

    def lookup(self, key: str, refresh: bool = True) -> List[ParetoPoint]:
        """The Pareto front for ``key`` (empty when unknown).

        Reads through to disk first (cheap stat-based tail replay) so a
        fleet worker sees what its peers just learned.
        """
        with obs_trace.span("registry.lookup", key=key) as span:
            if refresh:
                self.refresh()
            front = pareto_front(self.points(key))
            result = "hit" if front else "miss"
            span.set(result=result, points=len(front))
            _Metrics.get().lookups.labels(result=result).inc()
        return front

    def knee_for(self, key: str, toq: float) -> Optional[ParetoPoint]:
        """The TOQ-feasible knee of ``key``'s front, margin applied."""
        return knee(self.lookup(key), toq, self.margin)

    def fit(self, key: str) -> Surrogate:
        """The surrogate for ``key``, memoized per store version."""
        import time

        with self._lock:
            memo = self._fit_memo.get(key)
            if memo is not None and memo[0] == self._version:
                return memo[1]
            points = list(self._state.get(key, {}).values())
            version = self._version
        started = time.perf_counter()
        model = fit_surrogate(points)
        _Metrics.get().fit_seconds.observe(time.perf_counter() - started)
        with self._lock:
            self._fit_memo[key] = (version, model)
        return model

    def stats(self) -> dict:
        """A JSON-friendly snapshot for ``metrics_snapshot()`` and the CLI."""
        with self._lock:
            return {
                "root": str(self.root) if self.root is not None else None,
                "keys": len(self._state),
                "points": sum(len(v) for v in self._state.values()),
                "segments": len(self._segments()),
                "generation": self.generation(),
                "recovered_lines": self.recovered_lines,
                "margin": self.margin,
                "min_points": self.min_points,
            }

    # -- maintenance -----------------------------------------------------------

    def merge_from(self, other: "VariantRegistry") -> int:
        """Absorb every point another registry holds; returns points merged."""
        other.refresh()
        merged = 0
        with obs_trace.span("registry.merge", source=str(other.root)):
            for key in other.keys():
                points = other.points(key)
                with other._lock:
                    sketch = other._sketches.get(key)
                if sketch is not None:
                    with self._lock:
                        if key not in self._sketches:
                            self._pending_sketches[key] = sketch_to_json(sketch)
                self.record_many(key, points)
                merged += len(points)
        return merged

    def compact(self, front_only: bool = False) -> int:
        """Rewrite the store as one fresh segment; returns segments removed.

        ``front_only=True`` is garbage collection: dominated points are
        dropped and only each key's Pareto front survives.  The new
        segment starts with a ``truncate`` record, so the rewrite is
        correct even if deleting the superseded segments is interrupted.
        """
        if self.root is None:
            with self._lock:
                if front_only:
                    for key in list(self._state):
                        front = pareto_front(self._state[key].values())
                        self._state[key] = {p.variant: p for p in front}
                    self._version += 1
                    self._fit_memo.clear()
            return 0
        with obs_trace.span("registry.gc", front_only=front_only) as span:
            with self._lock:
                self._flock.acquire()
                try:
                    self._replay()
                    old_segments = self._segments()
                    generation = self.generation() + 1
                    records: List[dict] = [{"v": FORMAT, "op": "truncate"}]
                    for key in sorted(self._sketches):
                        records.append(
                            {
                                "v": FORMAT,
                                "op": "sketch",
                                "key": key,
                                "sketch": sketch_to_json(self._sketches[key]),
                            }
                        )
                    for key in sorted(self._state):
                        held = self._state[key].values()
                        keep = pareto_front(held) if front_only else sorted(
                            held, key=lambda p: p.variant
                        )
                        if front_only:
                            self._state[key] = {p.variant: p for p in keep}
                        for point in keep:
                            records.append(
                                {
                                    "v": FORMAT,
                                    "op": "point",
                                    "key": key,
                                    "point": point.to_dict(),
                                }
                            )
                    path = self.root / f"seg-{generation:06d}.jsonl"
                    tmp = path.with_suffix(".tmp")
                    with tmp.open("w", encoding="utf-8") as fh:
                        for record in records:
                            fh.write(
                                json.dumps(
                                    record, sort_keys=True, separators=(",", ":")
                                )
                                + "\n"
                            )
                        fh.flush()
                        os.fsync(fh.fileno())
                    tmp.replace(path)
                    for old in old_segments:
                        old.unlink(missing_ok=True)
                        self._offsets.pop(old.name, None)
                        self._poisoned.discard(old.name)
                    self._offsets[path.name] = path.stat().st_size
                    self._version += 1
                    self._fit_memo.clear()
                    self._publish_gauges()
                    span.set(segments_removed=len(old_segments))
                    return len(old_segments)
                finally:
                    self._flock.release()


def resolve_registry(registry) -> Optional[VariantRegistry]:
    """Coerce a session's ``registry=`` argument into a store.

    Accepts a ready :class:`VariantRegistry`, a directory path, ``None``
    (registry disabled), or ``"auto"`` (open ``REPRO_REGISTRY_DIR`` when
    set, else disabled).
    """
    if registry is None:
        return None
    if isinstance(registry, VariantRegistry):
        return registry
    if registry == "auto":
        root = os.environ.get("REPRO_REGISTRY_DIR")
        return VariantRegistry(root) if root else None
    return VariantRegistry(registry)
