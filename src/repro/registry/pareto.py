"""Pareto fronts over (quality, speedup) variant measurements.

The registry never stores the raw design space — only the points worth
keeping: for each (kernel, device, input-sketch) key, the set of variants
no other variant dominates on both axes, following autoAx's observation
that search over the front is as good as search over the space at a
fraction of the cost.  Points are merged by variant name with running
means, so repeated observations of the same variant sharpen one point
instead of growing the store.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional

from ..errors import SerializationError


@dataclass(frozen=True)
class ParetoPoint:
    """One characterized variant: where it lands on the quality/speedup
    plane, under which knob values, and how much evidence backs it.

    Attributes:
        variant: the variant's stable name (``gaussian__stencil_row_d1``).
        quality: mean measured output quality in [0, 1].
        speedup: mean modelled speedup over the exact program.
        cycles: mean modelled cycles (0.0 when unknown, e.g. timeline
            observations carry no cycle counts).
        knobs: the knob values the variant encodes, JSON-plain.
        identity: content identity of the variant (kernel-IR fingerprint
            via :func:`repro.parallel.profiler.variant_identity`), so two
            differently-configured variants sharing a name never merge.
        samples: measurements folded into the running means.
        generation: registry segment generation that last touched this
            point (used by garbage collection).
    """

    variant: str
    quality: float
    speedup: float
    cycles: float = 0.0
    knobs: Dict[str, object] = field(default_factory=dict)
    identity: str = ""
    samples: int = 1
    generation: int = 0

    def merged_with(self, other: "ParetoPoint") -> "ParetoPoint":
        """Fold ``other``'s evidence into this point (running means).

        Cycles of 0.0 mean "unknown" and never dilute a known mean.
        """
        n = self.samples + other.samples
        w_self = self.samples / n
        w_other = other.samples / n
        if self.cycles and other.cycles:
            cycles = self.cycles * w_self + other.cycles * w_other
        else:
            cycles = self.cycles or other.cycles
        return replace(
            self,
            quality=self.quality * w_self + other.quality * w_other,
            speedup=self.speedup * w_self + other.speedup * w_other,
            cycles=cycles,
            knobs=dict(other.knobs) if other.knobs else dict(self.knobs),
            identity=other.identity or self.identity,
            samples=n,
            generation=max(self.generation, other.generation),
        )

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "variant": self.variant,
            "quality": float(self.quality),
            "speedup": float(self.speedup),
            "cycles": float(self.cycles),
            "knobs": dict(self.knobs),
            "identity": self.identity,
            "samples": int(self.samples),
            "generation": int(self.generation),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ParetoPoint":
        if not isinstance(data, dict):
            raise SerializationError(
                f"ParetoPoint.from_dict expects a dict, got {type(data).__name__}"
            )
        missing = [k for k in ("variant", "quality", "speedup") if k not in data]
        if missing:
            raise SerializationError(
                f"ParetoPoint.from_dict: missing keys {missing}"
            )
        bad = [
            k
            for k in ("quality", "speedup")
            if not isinstance(data[k], (int, float))
            or isinstance(data[k], bool)
        ]
        if bad:
            raise SerializationError(
                f"ParetoPoint.from_dict: mistyped keys {bad}: {data!r}"
            )
        knobs = data.get("knobs", {})
        if not isinstance(knobs, dict):
            raise SerializationError(
                f"ParetoPoint.from_dict: knobs must be a dict, got {knobs!r}"
            )
        return cls(
            variant=str(data["variant"]),
            quality=float(data["quality"]),
            speedup=float(data["speedup"]),
            cycles=float(data.get("cycles", 0.0) or 0.0),
            knobs=knobs,
            identity=str(data.get("identity", "")),
            samples=max(1, int(data.get("samples", 1))),
            generation=int(data.get("generation", 0)),
        )


def dominates(a: ParetoPoint, b: ParetoPoint) -> bool:
    """True when ``a`` is at least as good as ``b`` on both axes and
    strictly better on one."""
    return (
        a.quality >= b.quality
        and a.speedup >= b.speedup
        and (a.quality > b.quality or a.speedup > b.speedup)
    )


def pareto_front(points: Iterable[ParetoPoint]) -> List[ParetoPoint]:
    """The non-dominated subset, sorted by descending quality.

    Equal (quality, speedup) pairs keep the better-evidenced point.  The
    sort order matches :meth:`TuningResult.frontier` so front walks read
    like tuning frontiers.
    """
    pool = sorted(
        points, key=lambda p: (-p.quality, -p.speedup, -p.samples, p.variant)
    )
    front: List[ParetoPoint] = []
    best_speedup = float("-inf")
    for point in pool:
        if point.speedup > best_speedup:
            front.append(point)
            best_speedup = point.speedup
    return front


def feasible(
    front: Iterable[ParetoPoint], toq: float, margin: float = 0.0
) -> List[ParetoPoint]:
    """Front points whose recorded quality clears the TOQ plus margin."""
    bar = toq + margin
    return [p for p in front if p.quality >= bar]


def knee(
    front: Iterable[ParetoPoint], toq: float, margin: float = 0.0
) -> Optional[ParetoPoint]:
    """The TOQ-feasible knee: the fastest point still clearing the target.

    This is where greedy tuning would have ended up, found by lookup
    instead of walking the whole ladder; None when nothing on the front
    clears the bar (the caller falls back to cold tuning or the exact
    program).
    """
    candidates = feasible(front, toq, margin)
    if not candidates:
        return None
    return min(candidates, key=lambda p: (-p.speedup, -p.quality, p.variant))


def merge_points(
    existing: Dict[str, ParetoPoint], incoming: Iterable[ParetoPoint]
) -> Dict[str, ParetoPoint]:
    """Merge ``incoming`` into a by-variant map (running-mean semantics).

    A point whose content ``identity`` differs from the stored one is a
    *replacement* (the variant's kernel changed), not more evidence.
    """
    for point in incoming:
        held = existing.get(point.variant)
        if held is None:
            existing[point.variant] = point
        elif point.identity and held.identity and point.identity != held.identity:
            existing[point.variant] = point
        else:
            existing[point.variant] = held.merged_with(point)
    return existing
