"""Stencil/partition detection (paper §3.2.2).

The detector looks for a constant number of affine loads from the same
array whose indices share the shape ``(f + i) * w + (g + j)``: the affine
analysis recovers the tile offsets, and a tile with at least
:data:`MIN_TILE` distinct accesses marks the kernel as a stencil (or
partition, when the tile's anchor advances by the tile extent per thread
rather than by one element).
"""

from __future__ import annotations

from typing import Optional

from ..analysis.affine import extract_load_polynomials, infer_tile
from ..kernel import ir
from .base import Pattern, StencilMatch

#: Minimum distinct same-array accesses that constitute a tile.
MIN_TILE = 3


def detect_stencil(fn: ir.Function, module: ir.Module = None) -> Optional[StencilMatch]:
    """Return a StencilMatch if ``fn`` reads at least one array as tiles."""
    if fn.kind != "kernel":
        return None
    accesses = extract_load_polynomials(fn)
    tiles = []
    partition = False
    for name, acc in accesses.items():
        distinct = {p.terms for p in acc.forms}
        if len(distinct) < MIN_TILE:
            continue
        tile = infer_tile(name, acc.forms)
        if tile is None or tile.size < MIN_TILE:
            continue
        tiles.append(tile)
        partition = partition or _is_partition(acc.forms, tile)
    if not tiles:
        return None
    return StencilMatch(
        pattern=Pattern.PARTITION if partition else Pattern.STENCIL,
        kernel=fn.name,
        tiles=tiles,
    )


def _is_partition(forms, tile) -> bool:
    """Partition heuristic: the anchor polynomial scales a thread-derived
    symbol by (at least) the tile extent, i.e. tiles do not overlap between
    neighbouring threads.  Stencil anchors advance by 1 per thread."""
    base = forms[0]
    extent = max(tile.cols, 1)
    for mono, coeff in base.nonconst_terms:
        if any(s.startswith("%") for s in mono) and abs(coeff) >= extent > 1:
            return True
    return False
