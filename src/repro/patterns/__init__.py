"""Detection of the six data-parallel patterns Paraprox targets."""

from .base import (
    MapMatch,
    Pattern,
    PatternMatch,
    ReductionMatch,
    ScanMatch,
    StencilMatch,
)
from .detector import DetectionResult, PatternDetector
from .map_detect import detect_map
from .reduction_detect import detect_reduction
from .scan_detect import detect_scan, mark_scan, register_template, signature
from .stencil_detect import detect_stencil

__all__ = [
    "Pattern",
    "PatternMatch",
    "MapMatch",
    "StencilMatch",
    "ReductionMatch",
    "ScanMatch",
    "PatternDetector",
    "DetectionResult",
    "detect_map",
    "detect_stencil",
    "detect_reduction",
    "detect_scan",
    "mark_scan",
    "register_template",
    "signature",
]
