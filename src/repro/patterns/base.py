"""Pattern taxonomy and match records (paper §2, Fig 1).

Paraprox targets six data-parallel patterns; a detector produces one
:class:`PatternMatch` per occurrence, and each approximation optimization
consumes the match kind it specialises in:

=================  =================================
Pattern            Optimization (paper §3)
=================  =================================
Map                approximate memoization (§3.1)
Scatter/Gather     approximate memoization (§3.1)
Stencil            tile replication (§3.2)
Partition          tile replication (§3.2)
Reduction          sampling + adjustment (§3.3)
Scan               subarray substitution (§3.4)
=================  =================================
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from ..analysis.affine import TileGeometry
from ..analysis.reductions import ReductionLoop
from ..kernel import ir


class Pattern(enum.Enum):
    """The six data-parallel patterns of paper Fig 1."""

    MAP = "map"
    SCATTER_GATHER = "scatter_gather"
    REDUCTION = "reduction"
    SCAN = "scan"
    STENCIL = "stencil"
    PARTITION = "partition"


@dataclass
class PatternMatch:
    """Base record: a pattern found in ``kernel``."""

    pattern: Pattern
    kernel: str


@dataclass
class MapMatch(PatternMatch):
    """A map or scatter/gather kernel: it calls pure, compute-heavy device
    functions that qualify for approximate memoization."""

    #: names of pure device functions worth memoizing, outermost first
    candidates: List[str] = field(default_factory=list)
    #: pure functions rejected by the Eq.-1 profitability test
    unprofitable: List[str] = field(default_factory=list)


@dataclass
class StencilMatch(PatternMatch):
    """A stencil/partition kernel and the tile geometry of each array."""

    tiles: List[TileGeometry] = field(default_factory=list)

    @property
    def tile(self) -> TileGeometry:
        return max(self.tiles, key=lambda t: t.size)


@dataclass
class ReductionMatch(PatternMatch):
    """A kernel with one or more reduction loops."""

    loops: List[ReductionLoop] = field(default_factory=list)


@dataclass
class ScanMatch(PatternMatch):
    """A kernel recognised as the first phase of a three-phase scan."""

    #: how the match was established: "template" or "pragma"
    source: str = "template"
