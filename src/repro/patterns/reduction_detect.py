"""Reduction detection — a thin kernel-level wrapper over the loop analysis
of :mod:`repro.analysis.reductions` (paper §3.3.2)."""

from __future__ import annotations

from typing import Optional

from ..analysis.reductions import find_reduction_loops
from ..kernel import ir
from .base import Pattern, ReductionMatch


def detect_reduction(
    fn: ir.Function, module: ir.Module = None
) -> Optional[ReductionMatch]:
    """Return a ReductionMatch if ``fn`` contains reduction loops."""
    if fn.kind != "kernel":
        return None
    loops = find_reduction_loops(fn)
    if not loops:
        return None
    return ReductionMatch(pattern=Pattern.REDUCTION, kernel=fn.name, loops=loops)
