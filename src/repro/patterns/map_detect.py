"""Map and scatter/gather detection (paper §3.1.2).

A kernel exhibits the map (or scatter/gather) pattern when its per-thread
work is a call to a *pure* device function — one with no global state, no
thread-ID dependence and no I/O — that the Eq.-1 latency estimate says is
expensive enough to beat a lookup-table read.  The distinction between map
and scatter/gather is the shape of the surrounding memory accesses: map
kernels read and write at thread-linear indices, scatter/gather kernels at
data-dependent ones.  Both receive the same memoization optimization, so
the detector reports the access shape but candidates are shared.
"""

from __future__ import annotations

from typing import List, Optional, Set

from ..analysis.latency import LatencyTable, cycles_needed, is_memoization_profitable
from ..analysis.purity import is_pure
from ..kernel import ir
from ..kernel.visitors import walk
from .base import MapMatch, Pattern


def _called_device_functions(fn: ir.Function, module: ir.Module) -> List[str]:
    seen: Set[str] = set()
    ordered: List[str] = []
    for node in walk(fn):
        if isinstance(node, ir.Call) and node.func in module:
            if module[node.func].kind == "device" and node.func not in seen:
                seen.add(node.func)
                ordered.append(node.func)
    return ordered


def _is_data_dependent_index(index: ir.Expr, defs) -> bool:
    """An index computed from loaded data marks a scatter/gather access.

    Locals are chased through their (single-assignment) definitions, so
    ``j = perm[i]; u[j]`` registers as a gather."""
    for n in walk(index):
        if isinstance(n, ir.Load):
            return True
        if isinstance(n, ir.Var) and n.name in defs:
            chased = defs.pop(n.name)  # pop guards against def cycles
            dependent = _is_data_dependent_index(chased, defs)
            defs[n.name] = chased
            if dependent:
                return True
    return False


def _outermost(names: List[str], module: ir.Module) -> List[str]:
    """Drop candidates that are (transitively) called by another candidate:
    memoizing the caller subsumes the callee (BlackScholesBody subsumes
    Cnd)."""
    called_by_candidate: Set[str] = set()
    for name in names:
        for node in walk(module[name]):
            if isinstance(node, ir.Call) and node.func in names:
                called_by_candidate.add(node.func)
    return [n for n in names if n not in called_by_candidate]


def detect_map(
    fn: ir.Function, module: ir.Module, table: LatencyTable
) -> Optional[MapMatch]:
    """Return a MapMatch if ``fn`` calls memoizable device functions."""
    if fn.kind != "kernel":
        return None
    device_fns = _called_device_functions(fn, module)
    pure = [name for name in device_fns if is_pure(module[name], module)]
    if not pure:
        return None
    profitable = [
        name for name in pure if is_memoization_profitable(module[name], table, module)
    ]
    unprofitable = [n for n in pure if n not in profitable]
    candidates = _outermost(profitable, module)
    if not candidates:
        return None
    candidates.sort(
        key=lambda n: cycles_needed(module[n], table, module), reverse=True
    )

    from ..analysis.affine import _single_assignment_defs

    defs = _single_assignment_defs(fn)
    scatter_gather = False
    for node in walk(fn):
        if isinstance(node, (ir.Load, ir.Store)) and _is_data_dependent_index(
            node.index, defs
        ):
            scatter_gather = True

    return MapMatch(
        pattern=Pattern.SCATTER_GATHER if scatter_gather else Pattern.MAP,
        kernel=fn.name,
        candidates=candidates,
        unprofitable=unprofitable,
    )
