"""Pattern detection orchestrator (the *Pattern Detection* box of paper
Fig 2 / Fig 10).

Runs every detector over every kernel of a module and reports all matches.
A kernel can exhibit several patterns at once — Convolution Separable is
both stencil and reduction in the paper (Table 1) — and the optimizer
downstream generates approximate variants for each.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..analysis.latency import GPU_LATENCIES, LatencyTable
from ..kernel import ir
from ..kernel.frontend import KernelFn
from .base import PatternMatch
from .map_detect import detect_map
from .reduction_detect import detect_reduction
from .scan_detect import detect_scan
from .stencil_detect import detect_stencil


@dataclass
class DetectionResult:
    """All pattern matches found in one module, per kernel."""

    matches: Dict[str, List[PatternMatch]] = field(default_factory=dict)

    def for_kernel(self, name: str) -> List[PatternMatch]:
        return self.matches.get(name, [])

    def all_matches(self) -> List[PatternMatch]:
        return [m for ms in self.matches.values() for m in ms]

    def patterns(self) -> List[str]:
        return sorted({m.pattern.value for m in self.all_matches()})


class PatternDetector:
    """Detects all six data-parallel patterns in kernels of a module.

    Args:
        latency_table: the target's instruction latency table, used by the
            map detector's Eq.-1 profitability test.  Defaults to the GPU
            table.
    """

    def __init__(self, latency_table: LatencyTable = GPU_LATENCIES) -> None:
        self.latency_table = latency_table

    def detect_kernel(self, fn: ir.Function, module: ir.Module) -> List[PatternMatch]:
        """All matches for one kernel, in optimization priority order."""
        matches: List[PatternMatch] = []
        scan = detect_scan(fn, module)
        if scan is not None:
            # A scan kernel's internal accumulations are part of the scan
            # template; do not additionally classify them as reductions.
            return [scan]
        for found in (
            detect_map(fn, module, self.latency_table),
            detect_stencil(fn, module),
            detect_reduction(fn, module),
        ):
            if found is not None:
                matches.append(found)
        return matches

    def detect(self, target) -> DetectionResult:
        """Detect patterns in a KernelFn or a whole Module."""
        if isinstance(target, KernelFn):
            module = target.module
        elif isinstance(target, ir.Module):
            module = target
        else:
            raise TypeError(f"cannot detect patterns in {type(target).__name__}")
        result = DetectionResult()
        for fn in module.kernels():
            result.matches[fn.name] = self.detect_kernel(fn, module)
        return result
