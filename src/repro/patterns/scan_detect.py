"""Scan detection by AST template matching (paper §3.4.2).

"Because of its complicated implementation, detecting a scan pattern is
generally difficult.  A programmer can mark scan patterns for the compiler
using pragmas, or the compiler can use template matching to find scan
kernels...  Paraprox uses the second approach by performing a recursive
post order traversal of the abstract syntax tree of the kernel and
comparing it with the template."

We implement exactly that: :func:`signature` canonicalises a kernel body
into a post-order token string with variable names alpha-renamed in order
of first appearance and integer constants erased (subarray sizes differ
between template and subject), and a registry of known scan-phase-I
signatures is compared against each kernel.  The pragma escape hatch is
:func:`mark_scan`.

The paper's §5 admits this technique is brittle against code variation;
that brittleness is inherited faithfully.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from ..kernel import ir
from ..kernel.frontend import KernelFn
from .base import Pattern, ScanMatch

#: kernels explicitly marked by the programmer (pragma equivalent)
_PRAGMA_MARKED: set = set()

#: registered template signatures: signature -> template name
_TEMPLATES: Dict[str, str] = {}


def signature(fn: ir.Function) -> str:
    """Canonical post-order token string of a function body."""
    names: Dict[str, str] = {}

    def rename(name: str) -> str:
        if name not in names:
            names[name] = f"v{len(names)}"
        return names[name]

    tokens: List[str] = []

    def expr(e: ir.Expr) -> None:
        if isinstance(e, ir.Const):
            tokens.append("c")  # value-erased
        elif isinstance(e, ir.Var):
            tokens.append(rename(e.name))
        elif isinstance(e, ir.ArrayRef):
            tokens.append(rename(e.name))
        elif isinstance(e, ir.BinOp):
            expr(e.left)
            expr(e.right)
            tokens.append(e.op)
        elif isinstance(e, ir.UnOp):
            expr(e.operand)
            tokens.append(e.op)
        elif isinstance(e, ir.Cast):
            expr(e.operand)
            tokens.append("cast")
        elif isinstance(e, ir.Select):
            expr(e.cond)
            expr(e.if_true)
            expr(e.if_false)
            tokens.append("select")
        elif isinstance(e, ir.Load):
            expr(e.array)
            expr(e.index)
            tokens.append("load")
        elif isinstance(e, ir.Call):
            for a in e.args:
                expr(a)
            tokens.append(f"call:{e.func}" if e.func in ir.THREAD_INTRINSICS else "call")
        else:  # pragma: no cover
            raise TypeError(type(e).__name__)

    def stmt(s: ir.Stmt) -> None:
        if isinstance(s, ir.Assign):
            expr(s.value)
            tokens.append(f"assign:{rename(s.target)}")
        elif isinstance(s, ir.Store):
            expr(s.array)
            expr(s.index)
            expr(s.value)
            tokens.append("store")
        elif isinstance(s, ir.AtomicRMW):
            expr(s.array)
            expr(s.index)
            expr(s.value)
            tokens.append(f"atomic:{s.op}")
        elif isinstance(s, ir.If):
            expr(s.cond)
            for b in s.then_body:
                stmt(b)
            tokens.append("then")
            for b in s.else_body:
                stmt(b)
            tokens.append("if")
        elif isinstance(s, ir.For):
            expr(s.start)
            expr(s.stop)
            expr(s.step)
            for b in s.body:
                stmt(b)
            tokens.append(f"for:{rename(s.var)}")
        elif isinstance(s, ir.Return):
            if s.value is not None:
                expr(s.value)
            tokens.append("return")
        elif isinstance(s, ir.Barrier):
            tokens.append("barrier")
        elif isinstance(s, ir.SharedAlloc):
            tokens.append(f"shared:{rename(s.name)}")
        else:  # pragma: no cover
            raise TypeError(type(s).__name__)

    for s in fn.body:
        stmt(s)
    return " ".join(tokens)


def register_template(kernel: Union[KernelFn, ir.Function], name: str = None) -> None:
    """Register a known scan phase-I implementation as a match template."""
    fn = kernel.fn if isinstance(kernel, KernelFn) else kernel
    _TEMPLATES[signature(fn)] = name or fn.name


def mark_scan(kernel: Union[KernelFn, ir.Function]) -> None:
    """Programmer pragma: assert that ``kernel`` implements a scan phase."""
    fn = kernel.fn if isinstance(kernel, KernelFn) else kernel
    _PRAGMA_MARKED.add(fn.name)


def clear_registry() -> None:
    """Forget all templates and pragmas (test isolation)."""
    _TEMPLATES.clear()
    _PRAGMA_MARKED.clear()


def detect_scan(fn: ir.Function, module: ir.Module = None) -> Optional[ScanMatch]:
    """Return a ScanMatch if ``fn`` is pragma-marked or matches a template."""
    if fn.kind != "kernel":
        return None
    if fn.name in _PRAGMA_MARKED:
        return ScanMatch(pattern=Pattern.SCAN, kernel=fn.name, source="pragma")
    if signature(fn) in _TEMPLATES:
        return ScanMatch(pattern=Pattern.SCAN, kernel=fn.name, source="template")
    return None
