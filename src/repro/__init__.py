"""Paraprox reproduction: pattern-based approximation for data-parallel programs.

The package reimplements the full Paraprox system from the ASPLOS 2014
paper — kernel frontend, pattern detection, the four approximation
transforms, the TOQ-driven runtime tuner, a GPU/CPU device cost model, the
13 benchmark applications, and the experiment harness that regenerates
every results table and figure.

Quick start::

    from repro import Paraprox, DeviceKind
    from repro.apps.blackscholes import BlackScholesApp

    app = BlackScholesApp(scale=0.1)
    result = Paraprox(target_quality=0.90).optimize(app, DeviceKind.GPU)
    print(result.chosen.name, result.speedup, result.quality)
"""

__version__ = "1.1.0"

from ._options import LaunchOptions, current_options, options
from .approx.base import VariantSet
from .approx.compiler import Paraprox, ParaproxConfig
from .device import CORE_I7, GTX560, CostModel, DeviceKind, DeviceSpec
from .engine import Grid, launch
from .kernel import device, kernel
from .patterns import Pattern, PatternDetector
from .registry import VariantRegistry
from .runtime import GreedyTuner, QualityMetric
from .serve import ApproxSession, MonitorConfig, ServeFrontend  # noqa: E501

__all__ = [
    "Paraprox",
    "ParaproxConfig",
    "VariantSet",
    "LaunchOptions",
    "options",
    "current_options",
    "ApproxSession",
    "ServeFrontend",
    "MonitorConfig",
    "DeviceKind",
    "DeviceSpec",
    "CostModel",
    "GTX560",
    "CORE_I7",
    "Grid",
    "launch",
    "kernel",
    "device",
    "Pattern",
    "PatternDetector",
    "GreedyTuner",
    "QualityMetric",
    "VariantRegistry",
    "__version__",
]
