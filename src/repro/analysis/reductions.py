"""Reduction-loop recognition (paper §3.3.2).

A loop is a reduction loop when

* it contains an *accumulative instruction* ``a = a op b`` whose operator
  is associative and commutative (add, mul, min, max, and, or, xor), and
* the reduction variable ``a`` is neither read nor modified by any other
  instruction inside the loop;

or when it contains one of the reduction-capable atomic operations
(``atomic_add``/``min``/``max``/``inc``/``and``/``or``/``xor``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..kernel import ir
from ..kernel.visitors import walk


@dataclass
class ReductionLoop:
    """One recognised reduction loop inside a kernel.

    A loop may reduce into several variables at once (e.g. a weighted sum
    and its normalising weight total); perforation must then adjust *every*
    additive variable or ratios of the results would be scaled by the
    skipping rate.
    """

    loop: ir.For
    #: (variable name, operator) per accumulative instruction; empty for
    #: atomic-only loops
    targets: List[Tuple[str, str]]
    #: True when recognised through an atomic RMW rather than ``a = a op b``
    via_atomic: bool

    @property
    def variable(self) -> Optional[str]:
        """First reduction variable (None for atomic-only loops)."""
        return self.targets[0][0] if self.targets else None

    @property
    def op(self) -> str:
        """First reduction operator."""
        return self.targets[0][1] if self.targets else "add"

    @property
    def is_additive(self) -> bool:
        """Additive reductions get the x-N adjustment code (§3.3.3)."""
        return all(op == "add" for _v, op in self.targets) if self.targets else False


def _accumulative_target(stmt: ir.Assign) -> Optional[str]:
    """If ``stmt`` is ``a = a op b`` (or ``a = b op a`` for commutative op),
    return ``op``; else None."""
    v = stmt.value
    if not isinstance(v, ir.BinOp) or v.op not in ir.REDUCTION_OPS:
        return None
    left_is_self = isinstance(v.left, ir.Var) and v.left.name == stmt.target
    right_is_self = isinstance(v.right, ir.Var) and v.right.name == stmt.target
    if left_is_self or right_is_self:
        return v.op
    # min/max spelled as fmin(a, b) etc.
    return None


def _accumulative_call(stmt: ir.Assign) -> Optional[str]:
    """Recognise ``a = fmin(a, b)`` / ``fmax`` / ``imin`` / ``imax``."""
    v = stmt.value
    if not isinstance(v, ir.Call) or v.func not in ("fmin", "fmax", "imin", "imax"):
        return None
    if any(isinstance(arg, ir.Var) and arg.name == stmt.target for arg in v.args):
        return "min" if "min" in v.func else "max"
    return None


def _index_tied_to_var(expr: ir.Expr, var: str, defs, depth: int = 0) -> bool:
    """True if ``expr`` depends on ``var`` through pure index arithmetic
    (loads cut the dependence: a value *read from memory at* an induction-
    dependent address is data, not structure)."""
    if depth > 16:
        return True  # be conservative on deep def chains
    if isinstance(expr, ir.Var):
        if expr.name == var:
            return True
        if expr.name in defs:
            chased = defs.pop(expr.name)  # pop guards against cycles
            tied = _index_tied_to_var(chased, var, defs, depth + 1)
            defs[expr.name] = chased
            return tied
        return False
    if isinstance(expr, ir.Load):
        return False
    if isinstance(expr, ir.Const):
        return False
    if isinstance(expr, ir.BinOp):
        return _index_tied_to_var(expr.left, var, defs, depth + 1) or _index_tied_to_var(
            expr.right, var, defs, depth + 1
        )
    if isinstance(expr, (ir.UnOp, ir.Cast)):
        return _index_tied_to_var(expr.operand, var, defs, depth + 1)
    if isinstance(expr, ir.Select):
        return any(
            _index_tied_to_var(e, var, defs, depth + 1)
            for e in (expr.cond, expr.if_true, expr.if_false)
        )
    if isinstance(expr, ir.Call):
        return any(_index_tied_to_var(a, var, defs, depth + 1) for a in expr.args)
    return False


def _reads_of(name: str, node: ir.Node) -> int:
    return sum(
        1 for n in walk(node) if isinstance(n, ir.Var) and n.name == name
    )


def _shallow_statements(body: List[ir.Stmt]) -> List[ir.Stmt]:
    """Statements of a loop body, recursing through If arms but *not* into
    nested For loops: an accumulation inside a nested loop belongs to that
    loop (the innermost enclosing loop is the one perforation targets, as
    in the paper's matmul where the dot-product loop — not the tile loop —
    is the reduction)."""
    out: List[ir.Stmt] = []
    for stmt in body:
        out.append(stmt)
        if isinstance(stmt, ir.If):
            out.extend(_shallow_statements(stmt.then_body))
            out.extend(_shallow_statements(stmt.else_body))
    return out


def analyze_loop(loop: ir.For) -> Optional[ReductionLoop]:
    """Classify one ``For`` loop; returns a ReductionLoop or None.

    Only accumulations/atomics *directly* in this loop (not inside nested
    loops) count; correctness conditions are still checked against the
    whole body.
    """
    from ..kernel.visitors import walk_statements

    shallow = _shallow_statements(loop.body)
    # Atomic-based reduction (paper: loops containing reduction-capable
    # atomics are reduction loops).  An atomic whose *cell* is selected by
    # the induction variable is excluded: skipping iterations would leave
    # specific cells deterministically unwritten — the very failure mode
    # §4.4.1 shows for map-like loops.  Data-dependent cells (the index
    # goes through a load) sample the data instead, which is sound.
    defs: dict = {}
    for stmt in _shallow_statements(loop.body):
        if isinstance(stmt, ir.Assign):
            defs[stmt.target] = stmt.value
    for stmt in shallow:
        if isinstance(stmt, ir.AtomicRMW) and not _index_tied_to_var(
            stmt.index, loop.var, defs
        ):
            return ReductionLoop(loop=loop, targets=[], via_atomic=True)

    candidates = []
    all_stmts = list(walk_statements(loop.body))
    for stmt in shallow:
        # The accumulation may sit under a guard (``if idx < n: acc += ...``).
        if isinstance(stmt, ir.Assign):
            op = _accumulative_target(stmt) or _accumulative_call(stmt)
            if op is not None:
                candidates.append((stmt, op))
    targets: List[Tuple[str, str]] = []
    for stmt, op in candidates:
        var = stmt.target
        # The reduction variable must not be read or written by any *other*
        # instruction in the loop.
        ok = True
        for other in all_stmts:
            if other is stmt or isinstance(other, (ir.If, ir.For)):
                continue  # If/For children are visited as their own stmts
            for n in walk(other):
                if isinstance(n, ir.Var) and n.name == var:
                    ok = False
                if isinstance(n, ir.Assign) and n.target == var:
                    ok = False
        # Guards and loop headers must not read the reduction variable.
        for other in all_stmts:
            if isinstance(other, ir.If) and _reads_of(var, other.cond):
                ok = False
            if isinstance(other, ir.For) and any(
                _reads_of(var, e) for e in (other.start, other.stop, other.step)
            ):
                ok = False
        # Within the accumulative statement itself, exactly one self-read.
        if _reads_of(var, stmt.value) != 1:
            ok = False
        if ok:
            targets.append((var, op))
    if targets:
        return ReductionLoop(loop=loop, targets=targets, via_atomic=False)
    return None


def find_reduction_loops(fn: ir.Function) -> List[ReductionLoop]:
    """All reduction loops in ``fn``, each accumulation attributed to its
    innermost enclosing loop; a loop that both nests reduction loops and
    accumulates directly (e.g. KDE's reference loop around the feature-
    distance loop) is reported alongside its children."""
    found: List[ReductionLoop] = []

    def visit(body: List[ir.Stmt]) -> None:
        for stmt in body:
            if isinstance(stmt, ir.For):
                visit(stmt.body)
                hit = analyze_loop(stmt)
                if hit is not None:
                    found.append(hit)
            elif isinstance(stmt, ir.If):
                visit(stmt.then_body)
                visit(stmt.else_body)

    visit(fn.body)
    return found
