"""Pure-function analysis (paper §3.1.2).

A function is a candidate for approximate memoization only if it is *pure*
and thread-agnostic.  Concretely (quoting the paper's conditions), it must
not contain

* global/shared memory accesses (loads, stores),
* atomic operations,
* computations involving thread or block IDs,
* calls to impure functions (I/O such as ``printf``, ``clock``),

and its output must depend only on its scalar inputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from ..kernel import intrinsics, ir
from ..kernel.visitors import walk


@dataclass
class PurityReport:
    """Why a function is or is not pure.

    ``violations`` lists human-readable reasons; empty means pure.
    """

    function: str
    violations: List[str] = field(default_factory=list)

    @property
    def is_pure(self) -> bool:
        return not self.violations


def analyze_purity(fn: ir.Function, module: ir.Module) -> PurityReport:
    """Check ``fn`` against the paper's purity conditions.

    Calls to other device functions recurse: calling an impure function is
    itself a violation.
    """
    report = PurityReport(fn.name)
    for node in walk(fn):
        if isinstance(node, (ir.Load, ir.Store)):
            report.violations.append(
                f"accesses array {node.array.name!r} ({node.array.type.space} memory)"
            )
        elif isinstance(node, ir.AtomicRMW):
            report.violations.append(f"atomic {node.op} on {node.array.name!r}")
        elif isinstance(node, ir.SharedAlloc):
            report.violations.append(f"allocates shared memory {node.name!r}")
        elif isinstance(node, ir.Call):
            if node.func in ir.THREAD_INTRINSICS:
                report.violations.append(f"depends on {node.func}()")
            elif intrinsics.is_impure(node.func):
                report.violations.append(f"calls impure builtin {node.func}()")
            elif not intrinsics.is_builtin(node.func) and node.func in module:
                callee = analyze_purity(module[node.func], module)
                if not callee.is_pure:
                    report.violations.append(
                        f"calls impure function {node.func}() "
                        f"({'; '.join(callee.violations)})"
                    )
    if any(p.is_array for p in fn.params):
        report.violations.append("takes array parameters")
    return report


def is_pure(fn: ir.Function, module: ir.Module) -> bool:
    """True if ``fn`` satisfies all of the paper's purity conditions."""
    return analyze_purity(fn, module).is_pure


def pure_device_functions(module: ir.Module) -> List[ir.Function]:
    """All device functions in ``module`` that pass the purity analysis."""
    return [f for f in module.device_functions() if is_pure(f, module)]
