"""Static analyses shared by the pattern detectors and transforms."""

from .affine import TileGeometry, extract_load_polynomials, infer_tile
from .latency import (
    CPU_LATENCIES,
    GPU_LATENCIES,
    LatencyTable,
    cycles_needed,
    is_memoization_profitable,
)
from .purity import PurityReport, analyze_purity, is_pure, pure_device_functions
from .reductions import ReductionLoop, find_reduction_loops

__all__ = [
    "TileGeometry",
    "extract_load_polynomials",
    "infer_tile",
    "LatencyTable",
    "GPU_LATENCIES",
    "CPU_LATENCIES",
    "cycles_needed",
    "is_memoization_profitable",
    "PurityReport",
    "analyze_purity",
    "is_pure",
    "pure_device_functions",
    "ReductionLoop",
    "find_reduction_loops",
]
