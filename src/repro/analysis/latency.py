"""Instruction latency tables and static cost estimation (paper Eq. 1).

Paraprox decides whether a pure function is worth memoizing by summing the
latencies of its instructions::

    cycles_needed = sum(latency(inst) for inst in f)          (Eq. 1)

and applying the rule of §3.1.2: a function benefits from memoization when
``cycles_needed`` is at least one order of magnitude greater than the L1
read latency.  The paper measured GPU latencies with the Wong et al.
microbenchmarks; we encode effective per-instruction issue costs for a
GTX-560-class GPU (SFU transcendentals cheap, float division a slow
subroutine, atomics expensive) and a Core-i7-class CPU (cheap ALU and
atomics, expensive libm transcendentals), which preserves every qualitative
asymmetry §4.3 of the paper reports.

The same tables drive the dynamic cost model in
:mod:`repro.device.costmodel`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..kernel import intrinsics, ir
from ..kernel.types import DType

#: How many times larger than the L1 read latency a function's
#: ``cycles_needed`` must be for memoization to be profitable (§3.1.2:
#: "at least one order of magnitude greater than the L1 read latency").
PROFITABILITY_FACTOR = 10.0

#: Assumed trip count for loops whose bounds are not compile-time constants.
DEFAULT_TRIP_COUNT = 16


@dataclass(frozen=True)
class LatencyTable:
    """Per-instruction-class costs (cycles) for one machine."""

    name: str
    classes: Dict[str, float] = field(default_factory=dict)
    #: read latencies per memory space
    l1: float = 18.0
    shared: float = 8.0
    constant: float = 8.0
    global_mem: float = 180.0

    def of_class(self, latency_class: str) -> float:
        try:
            return self.classes[latency_class]
        except KeyError:
            raise KeyError(
                f"{self.name}: no latency for class {latency_class!r}; "
                f"known: {sorted(self.classes)}"
            )

    def memory(self, space: str, cached: bool = True) -> float:
        if space == "shared":
            return self.shared
        if space == "constant":
            return self.constant
        return self.l1 if cached else self.global_mem


#: GTX-560-class GPU: SFU makes exp/log/sin cheap; float division expands
#: to a slow subroutine (Wong et al., cited in §4.4.2); atomics serialize.
GPU_LATENCIES = LatencyTable(
    name="gpu",
    classes={
        "alu": 4.0,
        "fmul": 4.0,
        "imul": 6.0,
        "fdiv": 60.0,
        "idiv": 60.0,
        "sqrt": 12.0,
        "sfu": 8.0,
        "trans": 40.0,
        "libcall": 80.0,
        "call": 4.0,
        "branch": 4.0,
        "atomic": 64.0,
        "barrier": 8.0,
    },
    l1=18.0,
    shared=8.0,
    constant=12.0,
    global_mem=180.0,
)

#: Core-i7-class CPU under a vectorizing OpenCL compiler: SIMD+SVML makes
#: transcendentals moderately priced (12-25 effective cycles per element,
#: not a full scalar libm call); atomics are cache-line ping-pongs but far
#: cheaper than a many-thread GPU collision.
CPU_LATENCIES = LatencyTable(
    name="cpu",
    classes={
        "alu": 1.0,
        "fmul": 2.0,
        "imul": 3.0,
        "fdiv": 14.0,
        "idiv": 18.0,
        "sqrt": 7.0,
        "sfu": 12.0,
        "trans": 12.0,
        "libcall": 25.0,
        "call": 8.0,
        "branch": 2.0,
        "atomic": 25.0,
        "barrier": 0.0,
    },
    l1=4.0,
    shared=4.0,
    constant=4.0,
    global_mem=120.0,
)


def _static_trip_count(loop: ir.For) -> int:
    if (
        isinstance(loop.start, ir.Const)
        and isinstance(loop.stop, ir.Const)
        and isinstance(loop.step, ir.Const)
        and loop.step.value
    ):
        span = int(loop.stop.value) - int(loop.start.value)
        step = int(loop.step.value)
        return max(0, -(-span // step)) if step > 0 else 0
    return DEFAULT_TRIP_COUNT


def _binop_class(op: str, dtype: DType) -> str:
    if op in ("div", "mod"):
        return "fdiv" if dtype.is_float else "idiv"
    if op == "mul":
        return "fmul" if dtype.is_float else "imul"
    return "alu"


def cycles_needed(
    fn: ir.Function, table: LatencyTable, module: ir.Module = None
) -> float:
    """Static estimate of one invocation's cost in cycles (paper Eq. 1).

    Device-function calls include the callee's cycles (the paper's cost of
    BlackScholesBody includes its two Cnd() calls); loops multiply their
    body by the static trip count (or a default when bounds are dynamic);
    ``if`` arms are both charged, the conservative choice for predicated
    execution.
    """
    module = module or ir.Module()
    return _body_cycles(fn.body, table, module)


def _body_cycles(body, table: LatencyTable, module: ir.Module) -> float:
    total = 0.0
    for stmt in body:
        total += _stmt_cycles(stmt, table, module)
    return total


def _stmt_cycles(stmt: ir.Stmt, table: LatencyTable, module: ir.Module) -> float:
    if isinstance(stmt, ir.Assign):
        return _expr_cycles(stmt.value, table, module)
    if isinstance(stmt, ir.Store):
        return (
            _expr_cycles(stmt.index, table, module)
            + _expr_cycles(stmt.value, table, module)
            + table.memory(stmt.array.type.space)
        )
    if isinstance(stmt, ir.AtomicRMW):
        return (
            _expr_cycles(stmt.index, table, module)
            + _expr_cycles(stmt.value, table, module)
            + table.of_class("atomic")
        )
    if isinstance(stmt, ir.If):
        return (
            _expr_cycles(stmt.cond, table, module)
            + table.of_class("branch")
            + _body_cycles(stmt.then_body, table, module)
            + _body_cycles(stmt.else_body, table, module)
        )
    if isinstance(stmt, ir.For):
        header = (
            _expr_cycles(stmt.start, table, module)
            + _expr_cycles(stmt.stop, table, module)
            + _expr_cycles(stmt.step, table, module)
        )
        trip = _static_trip_count(stmt)
        per_iter = table.of_class("branch") + _body_cycles(stmt.body, table, module)
        return header + trip * per_iter
    if isinstance(stmt, ir.Return):
        if stmt.value is None:
            return 0.0
        return _expr_cycles(stmt.value, table, module)
    if isinstance(stmt, ir.Barrier):
        return table.of_class("barrier")
    if isinstance(stmt, ir.SharedAlloc):
        return 0.0
    raise TypeError(f"unknown statement {type(stmt).__name__}")


def _expr_cycles(expr: ir.Expr, table: LatencyTable, module: ir.Module) -> float:
    if isinstance(expr, (ir.Const, ir.Var, ir.ArrayRef)):
        return 0.0
    if isinstance(expr, ir.BinOp):
        return (
            table.of_class(_binop_class(expr.op, expr.dtype))
            + _expr_cycles(expr.left, table, module)
            + _expr_cycles(expr.right, table, module)
        )
    if isinstance(expr, ir.UnOp):
        return table.of_class("alu") + _expr_cycles(expr.operand, table, module)
    if isinstance(expr, ir.Cast):
        return table.of_class("alu") + _expr_cycles(expr.operand, table, module)
    if isinstance(expr, ir.Select):
        return (
            table.of_class("alu")
            + _expr_cycles(expr.cond, table, module)
            + _expr_cycles(expr.if_true, table, module)
            + _expr_cycles(expr.if_false, table, module)
        )
    if isinstance(expr, ir.Load):
        return _expr_cycles(expr.index, table, module) + table.memory(
            expr.array.type.space
        )
    if isinstance(expr, ir.Call):
        args = sum(_expr_cycles(a, table, module) for a in expr.args)
        if expr.func in ir.THREAD_INTRINSICS:
            return args + table.of_class("alu")
        builtin = intrinsics.get(expr.func)
        if builtin is not None:
            return args + table.of_class(builtin.latency_class)
        if expr.func in module:
            return (
                args
                + table.of_class("call")
                + cycles_needed(module[expr.func], table, module)
            )
        return args + table.of_class("call")
    raise TypeError(f"unknown expression {type(expr).__name__}")


def is_memoization_profitable(
    fn: ir.Function, table: LatencyTable, module: ir.Module = None
) -> bool:
    """The §3.1.2 rule: profitable iff cycles_needed >= 10x the L1 latency."""
    return cycles_needed(fn, table, module) >= PROFITABILITY_FACTOR * table.l1
