"""Affine array-access analysis for stencil/partition detection (§3.2.2).

The paper detects stencil and partition patterns by finding "a constant
number of affine accesses to the same array" with indices of the shape
``(f + i) * w + (g + j)`` where ``f``, ``g`` and ``w`` are loop-invariant
and ``i``, ``j`` are hand-unrolled constants or induction variables of
constant-trip loops.

We recover that structure by lowering every load index to a *polynomial*
over the kernel's scalar symbols (locals that cannot be inlined stay
opaque, e.g. ``x = gid % w`` contributes the symbol ``x``), after

* inlining single-assignment locals (copy propagation), and
* unrolling enclosing constant-trip loops by substituting each induction
  value (bounded by :data:`MAX_UNROLL` combined iterations).

Two accesses belong to the same tile iff their polynomials differ only by
a constant and/or a constant multiple of a single *stride* symbol — the
tile width ``w``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..kernel import ir
from ..kernel.visitors import walk_statements

#: Upper bound on combined unrolled iterations considered per access.
MAX_UNROLL = 1024

#: Monomial: sorted tuple of symbol names (with multiplicity); () = constant.
Monomial = Tuple[str, ...]


@dataclass(frozen=True)
class Poly:
    """An integer polynomial over kernel scalars: {monomial: coefficient}."""

    terms: Tuple[Tuple[Monomial, int], ...]

    @staticmethod
    def constant(value: int) -> "Poly":
        return Poly(((("",) * 0, int(value)),)) if value else Poly(())

    @staticmethod
    def symbol(name: str) -> "Poly":
        return Poly((((name,), 1),))

    def as_dict(self) -> Dict[Monomial, int]:
        return dict(self.terms)

    @staticmethod
    def _from_dict(d: Dict[Monomial, int]) -> "Poly":
        items = tuple(sorted((m, c) for m, c in d.items() if c != 0))
        return Poly(items)

    def __add__(self, other: "Poly") -> "Poly":
        d = self.as_dict()
        for m, c in other.terms:
            d[m] = d.get(m, 0) + c
        return Poly._from_dict(d)

    def __sub__(self, other: "Poly") -> "Poly":
        d = self.as_dict()
        for m, c in other.terms:
            d[m] = d.get(m, 0) - c
        return Poly._from_dict(d)

    def __neg__(self) -> "Poly":
        return Poly(tuple((m, -c) for m, c in self.terms))

    def __mul__(self, other: "Poly") -> "Poly":
        d: Dict[Monomial, int] = {}
        for m1, c1 in self.terms:
            for m2, c2 in other.terms:
                m = tuple(sorted(m1 + m2))
                d[m] = d.get(m, 0) + c1 * c2
        return Poly._from_dict(d)

    @property
    def const(self) -> int:
        for m, c in self.terms:
            if m == ():
                return c
        return 0

    @property
    def nonconst_terms(self) -> Tuple[Tuple[Monomial, int], ...]:
        return tuple((m, c) for m, c in self.terms if m != ())

    def is_constant(self) -> bool:
        return not self.nonconst_terms

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if not self.terms:
            return "0"
        parts = []
        for m, c in self.terms:
            parts.append(str(c) if m == () else f"{c}*{'*'.join(m)}")
        return " + ".join(parts)


@dataclass
class ArrayAccesses:
    """All analysable load index polynomials for one array in one kernel."""

    array: str
    forms: List[Poly] = field(default_factory=list)
    #: Loads whose index could not be expressed as a polynomial.
    opaque_loads: int = 0


def _single_assignment_defs(fn: ir.Function) -> Dict[str, ir.Expr]:
    """Locals assigned exactly once in the whole function -> their RHS."""
    counts: Dict[str, int] = {}
    rhs: Dict[str, ir.Expr] = {}
    for stmt in walk_statements(fn.body):
        if isinstance(stmt, ir.Assign):
            counts[stmt.target] = counts.get(stmt.target, 0) + 1
            rhs[stmt.target] = stmt.value
        elif isinstance(stmt, ir.For):
            counts[stmt.var] = counts.get(stmt.var, 0) + 2  # never inline
    return {name: rhs[name] for name, n in counts.items() if n == 1}


def _to_poly(
    expr: ir.Expr,
    defs: Dict[str, ir.Expr],
    bindings: Dict[str, int],
    depth: int = 0,
) -> Optional[Poly]:
    """Lower an integer expression to a polynomial, or None if non-affine
    structure (division, modulo, loads, calls...) appears *above* the
    symbol level.  Non-affine sub-expressions reached through a variable
    stay opaque as that variable's symbol."""
    if depth > 32:
        return None
    if isinstance(expr, ir.Const):
        return Poly.constant(int(expr.value))
    if isinstance(expr, ir.Var):
        if expr.name in bindings:
            return Poly.constant(bindings[expr.name])
        if expr.name in defs:
            inlined = _to_poly(defs[expr.name], defs, bindings, depth + 1)
            if inlined is not None:
                return inlined
        return Poly.symbol(expr.name)
    if isinstance(expr, ir.Cast):
        return _to_poly(expr.operand, defs, bindings, depth + 1)
    if isinstance(expr, ir.UnOp) and expr.op == "neg":
        inner = _to_poly(expr.operand, defs, bindings, depth + 1)
        return None if inner is None else -inner
    if isinstance(expr, ir.BinOp):
        left = _to_poly(expr.left, defs, bindings, depth + 1)
        right = _to_poly(expr.right, defs, bindings, depth + 1)
        if left is None or right is None:
            return None
        if expr.op == "add":
            return left + right
        if expr.op == "sub":
            return left - right
        if expr.op == "mul":
            return left * right
        if expr.op == "shl" and right.is_constant():
            return left * Poly.constant(1 << right.const)
        return None
    if isinstance(expr, ir.Call) and expr.func in ir.THREAD_INTRINSICS:
        return Poly.symbol(f"%{expr.func}")
    return None


def _loop_values(loop: ir.For) -> Optional[List[int]]:
    if (
        isinstance(loop.start, ir.Const)
        and isinstance(loop.stop, ir.Const)
        and isinstance(loop.step, ir.Const)
        and int(loop.step.value) != 0
    ):
        values = list(
            range(int(loop.start.value), int(loop.stop.value), int(loop.step.value))
        )
        return values or None
    return None


def _collect(
    body: List[ir.Stmt],
    defs: Dict[str, ir.Expr],
    bindings: Dict[str, int],
    out: Dict[str, ArrayAccesses],
) -> None:
    for stmt in body:
        if isinstance(stmt, ir.For):
            values = _loop_values(stmt)
            if values is not None and len(values) <= MAX_UNROLL:
                for v in values:
                    inner = dict(bindings)
                    inner[stmt.var] = v
                    _collect(stmt.body, defs, inner, out)
            else:
                _collect(stmt.body, defs, bindings, out)
            continue
        if isinstance(stmt, ir.If):
            _collect(stmt.then_body, defs, bindings, out)
            _collect(stmt.else_body, defs, bindings, out)
            continue
        for node in _loads_in_stmt(stmt):
            acc = out.setdefault(node.array.name, ArrayAccesses(node.array.name))
            poly = _to_poly(node.index, defs, bindings)
            if poly is None:
                acc.opaque_loads += 1
            else:
                acc.forms.append(poly)


def _loads_in_stmt(stmt: ir.Stmt) -> List[ir.Load]:
    from ..kernel.visitors import walk

    loads = []
    exprs: List[ir.Expr] = []
    if isinstance(stmt, ir.Assign):
        exprs = [stmt.value]
    elif isinstance(stmt, ir.Store):
        exprs = [stmt.index, stmt.value]
    elif isinstance(stmt, ir.AtomicRMW):
        exprs = [stmt.index, stmt.value]
    elif isinstance(stmt, ir.Return) and stmt.value is not None:
        exprs = [stmt.value]
    for e in exprs:
        loads.extend(n for n in walk(e) if isinstance(n, ir.Load))
    return loads


def extract_load_polynomials(fn: ir.Function) -> Dict[str, ArrayAccesses]:
    """Map each array read by ``fn`` to the polynomials of its load indices,
    with constant-trip loops unrolled and single-assignment locals inlined."""
    defs = _single_assignment_defs(fn)
    out: Dict[str, ArrayAccesses] = {}
    _collect(fn.body, defs, {}, out)
    return out


@dataclass
class TileGeometry:
    """The tile a set of same-array accesses covers.

    ``offsets`` is the list of (row, col) offsets relative to the tile's
    top-left access; ``width_symbol`` is the stride monomial separating
    rows (None for 1-D tiles); ``rows``/``cols`` are the tile dimensions.
    """

    array: str
    offsets: List[Tuple[int, int]]
    rows: int
    cols: int
    width_symbol: Optional[Monomial]
    #: literal row pitch when the width is a compile-time constant
    pitch: Optional[int] = None
    #: polynomial of the tile's (0, 0) element (top-left access)
    base: Optional[Poly] = None

    @property
    def size(self) -> int:
        return len(self.offsets)

    @property
    def dims(self) -> int:
        return 1 if self.rows == 1 else 2


def group_tile_forms(forms: List[Poly]) -> List[List[Poly]]:
    """Cluster polynomials into tile groups: two forms belong together iff
    their difference is ``c * W + d`` for one stride monomial ``W`` shared
    by the whole group.  Accesses from other program regions (e.g. the
    pass-through load in a border branch) land in their own group instead
    of poisoning the tile."""
    groups: List[dict] = []  # {"rep": Poly, "width": Monomial|None, "forms": []}
    for form in forms:
        placed = False
        for g in groups:
            diff = form - g["rep"]
            extra = diff.nonconst_terms
            if not extra:
                g["forms"].append(form)
                placed = True
                break
            if len(extra) == 1:
                mono, _coeff = extra[0]
                if g["width"] is None or g["width"] == mono:
                    g["width"] = mono
                    g["forms"].append(form)
                    placed = True
                    break
        if not placed:
            groups.append({"rep": form, "width": None, "forms": [form]})
    return [g["forms"] for g in sorted(groups, key=lambda g: -len(g["forms"]))]


def infer_tile(array: str, forms: List[Poly]) -> Optional[TileGeometry]:
    """Infer tile geometry from load polynomials of one array.

    The forms are first clustered (:func:`group_tile_forms`) and the
    largest cluster is interpreted as the tile; within it, all pairwise
    differences are ``dr * W + dc`` for a single stride monomial ``W``
    (symbolic width) plus integer constants.  Widths that are literal
    constants fold into ``dc`` and are split heuristically by
    :func:`_split_constant_grid`.
    """
    if len(forms) < 2:
        return None
    group = group_tile_forms(forms)[0]
    if len(group) < 2:
        return None
    anchor = group[0]
    row_col: List[Tuple[int, int]] = []
    width: Optional[Monomial] = None
    for form in group:
        diff = form - anchor
        dr, dc = 0, diff.const
        extra = diff.nonconst_terms
        if len(extra) == 1:
            mono, coeff = extra[0]
            if width is None:
                width = mono
            elif mono != width:  # pragma: no cover - excluded by grouping
                return None
            dr = coeff
        row_col.append((dr, dc))
    if width is None:
        return _split_constant_grid(array, group, [dc for _dr, dc in row_col])
    rows_set = sorted({r for r, _c in row_col})
    cols_set = sorted({c for _r, c in row_col})
    min_r, min_c = rows_set[0], cols_set[0]
    # The (0, 0) corner of the tile, which need not be an actual access
    # (cross-shaped tiles): anchor + min_r * W + min_c.
    base = (
        anchor
        + Poly._from_dict({width: min_r})
        + Poly.constant(min_c)
    )
    offsets = sorted((r - min_r, c - min_c) for r, c in set(row_col))
    return TileGeometry(
        array=array,
        offsets=offsets,
        rows=rows_set[-1] - min_r + 1,
        cols=cols_set[-1] - min_c + 1,
        width_symbol=width,
        base=base,
    )


def _split_constant_grid(
    array: str, group: List[Poly], deltas: List[int]
) -> Optional[TileGeometry]:
    """Handle tiles whose width is a literal: offsets like
    {-w-1..-w+1, -1..1, w-1..w+1} for constant w.

    Heuristic: candidate widths are gaps much larger than the small
    intra-row deltas; a candidate is accepted if offsets split into rows
    of identical column patterns.
    """
    uniq = sorted(set(deltas))
    lo = uniq[0]
    base = min(group, key=lambda f: f.const)
    rel = [d - lo for d in uniq]
    span = rel[-1]
    if span == 0:
        return None
    gaps = [b - a for a, b in zip(rel, rel[1:])]
    small = [g for g in gaps if g > 0]
    if not small:
        return None
    if len(set(gaps)) == 1:
        # Arithmetic progression: a 1-D tile.  Unit stride reads a row;
        # stride-g reads a column with row pitch g.
        gap = gaps[0]
        n = len(rel)
        if gap == 1:
            offsets = sorted((0, d) for d in rel)
            return TileGeometry(
                array=array, offsets=offsets, rows=1, cols=n,
                width_symbol=None, base=base,
            )
        offsets = sorted((d // gap, 0) for d in rel)
        return TileGeometry(
            array=array, offsets=offsets, rows=n, cols=1, width_symbol=None,
            pitch=gap, base=base,
        )
    max_small = max(min(small), 1)
    candidates = sorted(
        {g for g in rel if g > 4 * max_small and g > 1}, reverse=False
    )
    for w in candidates:
        grid = {(d // w, d % w) for d in rel}
        rows = sorted({r for r, _c in grid})
        cols_by_row = {r: tuple(sorted(c for rr, c in grid if rr == r)) for r in rows}
        patterns = set(cols_by_row.values())
        if len(patterns) == 1 and len(rows) > 1:
            cols = patterns.pop()
            offsets = sorted((r - rows[0], c - cols[0]) for r, c in grid)
            return TileGeometry(
                array=array,
                offsets=offsets,
                rows=rows[-1] - rows[0] + 1,
                cols=cols[-1] - cols[0] + 1,
                width_symbol=None,
                pitch=w,
                base=base,
            )
    # 1-D tile: contiguous-ish constant offsets.
    offsets = sorted((0, d) for d in rel)
    return TileGeometry(
        array=array, offsets=offsets, rows=1, cols=span + 1,
        width_symbol=None, base=base,
    )
