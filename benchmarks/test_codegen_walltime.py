"""Wall-clock check for the codegen backend on the serving hot path.

Two hundred launches of the blackscholes kernel — the paper's flagship
map/memoization workload — must run at least ``REPRO_CODEGEN_MIN_SPEEDUP``
times faster (default 2x) through compiled NumPy callables than through
per-launch interpretation.  Compilation is warmed outside the timed
region: a serving session compiles once and then launches from the cache,
and that steady state is what this benchmark models.
"""

import os
import time

import numpy as np

import kernel_zoo as zoo
from repro.engine import Grid

N = 1024
LAUNCHES = 200
MIN_SPEEDUP = float(os.environ.get("REPRO_CODEGEN_MIN_SPEEDUP", "2.0"))


def _args():
    rng = np.random.default_rng(0)
    return [
        np.zeros(N, np.float32),
        (rng.random(N, dtype=np.float32) * 100 + 1),
        (rng.random(N, dtype=np.float32) * 100 + 1),
        (rng.random(N, dtype=np.float32) + 0.1),
        np.float32(0.02),
        np.float32(0.3),
        np.int32(N),
    ]


def _time_launches(backend: str) -> float:
    from repro.engine import launch

    grid = Grid.for_elements(N)
    args = _args()
    launch(zoo.black_scholes, grid, args, backend=backend)  # warm compile/caches
    best = float("inf")
    for _repeat in range(3):
        started = time.perf_counter()
        for _ in range(LAUNCHES):
            launch(zoo.black_scholes, grid, args, backend=backend)
        best = min(best, time.perf_counter() - started)
    return best


def test_codegen_beats_interpretation_on_repeated_launches():
    from conftest import write_bench_summary

    interp = _time_launches("interp")
    codegen = _time_launches("codegen")
    speedup = interp / codegen
    print(
        f"\n{LAUNCHES} blackscholes launches (n={N}): "
        f"interp {interp:.3f}s, codegen {codegen:.3f}s, {speedup:.2f}x"
    )
    write_bench_summary(
        "codegen_walltime",
        speedup=speedup,
        interp_walltime_s=interp,
        codegen_walltime_s=codegen,
        launches=LAUNCHES,
        floor=MIN_SPEEDUP,
    )
    assert speedup >= MIN_SPEEDUP, (
        f"codegen speedup {speedup:.2f}x below the required "
        f"{MIN_SPEEDUP:.2f}x (override with REPRO_CODEGEN_MIN_SPEEDUP)"
    )
