"""Ablation benches: what each design choice contributes."""

from conftest import once

from repro.experiments import ablations


def test_benchmark_bit_tuning_ablation(benchmark):
    result = once(benchmark, ablations.bit_tuning_ablation)
    print()
    print(result.to_text())
    for row in result.rows:
        # Hill climbing never loses to the naive split and materially wins
        # at least somewhere.
        assert row["tuned_quality"] >= row["equal_quality"] - 1e-9
    gains = [r["tuned_quality"] - r["equal_quality"] for r in result.rows]
    assert max(gains) > 0.01


def test_benchmark_adjustment_ablation(benchmark):
    result = once(benchmark, ablations.adjustment_ablation)
    print()
    print(result.to_text())
    adjusted = [r for r in result.rows if r["configuration"] == "adjusted"]
    naive = [r for r in result.rows if r["configuration"] == "unadjusted"]
    # The x-N fold-back keeps the estimator essentially unbiased; without
    # it a skip-N sum is low by roughly (N-1)/N.
    assert all(abs(r["relative_bias"]) < 0.02 for r in adjusted)
    assert all(r["relative_bias"] < -0.4 for r in naive)


def test_benchmark_cse_ablation(benchmark):
    result = once(benchmark, ablations.cse_ablation)
    print()
    print(result.to_text())
    exact = result.row_for("configuration", "exact")
    no_cse = result.row_for("configuration", "replicated, no CSE")
    with_cse = result.row_for("configuration", "replicated + CSE")
    # Without CSE the redirected loads still issue: same load count as
    # exact, no load-side win.  With CSE the interior drops to one load.
    assert no_cse["img_loads"] == exact["img_loads"]
    assert with_cse["img_loads"] < exact["img_loads"] / 4
    assert with_cse["speedup"] > no_cse["speedup"]


def test_benchmark_phase_choice_ablation(benchmark):
    result = once(benchmark, ablations.phase_choice_ablation)
    print()
    print(result.to_text())
    p1 = [r for r in result.rows if r["phase"] == 1]
    p3 = [r for r in result.rows if r["phase"] == 3]
    assert p1 and p3
    # Phase I owns the work AND averages over thousands of homogeneous
    # chunks: perforating it approaches the skipping rate at negligible
    # error.  Phase III's loop is ten heterogeneous block sums: skipping
    # them buys nothing and hurts badly — exactly why the runtime must
    # pick the phase (§3.3.2).
    assert max(r["speedup"] for r in p1) > 1.8
    assert all(r["relative_error"] < 0.01 for r in p1)
    assert all(r["speedup"] < 1.1 for r in p3)
    assert min(r["relative_error"] for r in p3) > max(
        r["relative_error"] for r in p1
    )


def test_benchmark_noise_ablation(benchmark):
    result = once(benchmark, ablations.noise_ablation)
    print()
    print(result.to_text())
    natural = result.row_for("input", "natural image")
    noise = result.row_for("input", "white noise")
    # On natural images the stencil optimization is chosen; on white noise
    # every stencil variant violates the TOQ and the runtime stays exact.
    assert natural["speedup"] > 1.2 and "stencil" in natural["chosen"]
    assert noise["chosen"] == "exact" and noise["speedup"] == 1.0
