"""Fig 11: headline speedups, all 13 apps, GPU and CPU, TOQ = 90 %.

Shape assertions mirror the paper's claims: an average speedup in the
2-4x band on both devices, every app at or above TOQ quality, nearly
every app accelerated, plus the per-app qualitative claims of §4.3 that
are clear-cut (map apps prefer the CPU when tables thrash its cheaper
cache hierarchy; Gamma Correction exceeds 3x on the GPU).

Wall-clock benchmarks time the tuned approximate kernel against the exact
kernel for one representative app per optimization so `--benchmark-only`
shows genuine interpreter-level speedups, not only modelled cycles.
"""

import numpy as np
import pytest
from conftest import once

from repro import DeviceKind, Paraprox
from repro.apps.blackscholes import BlackScholesApp
from repro.apps.gaussian import MeanFilterApp


def test_benchmark_fig11_pipeline(benchmark, fig11_result):
    result = once(benchmark, lambda: fig11_result)
    print()
    print(result.to_text())

    gpu = result.column("gpu_speedup")
    cpu = result.column("cpu_speedup")
    # Paper: 2.7x GPU / 2.5x CPU average.  We assert the band, not the digit.
    assert 2.0 <= float(np.mean(gpu)) <= 4.0
    assert 2.0 <= float(np.mean(cpu)) <= 4.5
    # Every application meets the TOQ.
    assert all(q >= 0.90 - 1e-9 for q in result.column("gpu_quality"))
    assert all(q >= 0.90 - 1e-9 for q in result.column("cpu_quality"))
    # Approximation helps everywhere (>= 1x) and is substantial for most.
    assert all(s >= 1.0 for s in gpu + cpu)
    assert sum(s > 1.2 for s in gpu) >= 11

    # §4.3 qualitative claims.
    bs = result.row_for("application", "BlackScholes")
    assert bs["cpu_speedup"] > bs["gpu_speedup"]  # "better results on CPU"
    qr = result.row_for("application", "Quasirandom Generator")
    assert qr["cpu_speedup"] > qr["gpu_speedup"]
    gamma = result.row_for("application", "Gamma Correction")
    assert gamma["gpu_speedup"] > 3.0  # ">3x speedup on the GPU"
    assert gamma["gpu_quality"] > 0.90


@pytest.fixture(scope="module")
def tuned_blackscholes():
    app = BlackScholesApp()
    paraprox = Paraprox(target_quality=0.90)
    tuning = paraprox.optimize(app, DeviceKind.GPU)
    assert tuning.chosen.variant is not None
    inputs = app.generate_inputs(42)
    return app, tuning.chosen.variant, inputs


def test_benchmark_blackscholes_exact_walltime(benchmark, tuned_blackscholes):
    app, _variant, inputs = tuned_blackscholes
    benchmark(lambda: app.run_exact(inputs))


def test_benchmark_blackscholes_memoized_walltime(benchmark, tuned_blackscholes):
    app, variant, inputs = tuned_blackscholes
    benchmark(lambda: app.run_variant(variant, inputs))


@pytest.fixture(scope="module")
def tuned_meanfilter():
    app = MeanFilterApp()
    paraprox = Paraprox(target_quality=0.90)
    tuning = paraprox.optimize(app, DeviceKind.GPU)
    assert tuning.chosen.variant is not None
    inputs = app.generate_inputs(42)
    return app, tuning.chosen.variant, inputs


def test_benchmark_meanfilter_exact_walltime(benchmark, tuned_meanfilter):
    app, _variant, inputs = tuned_meanfilter
    benchmark(lambda: app.run_exact(inputs))


def test_benchmark_meanfilter_stencil_walltime(benchmark, tuned_meanfilter):
    app, variant, inputs = tuned_meanfilter
    benchmark(lambda: app.run_variant(variant, inputs))
