"""Fig 16: lookup-table placement in constant/shared/global memory."""

from conftest import once


def test_benchmark_fig16(benchmark, fig16_result):
    result = once(benchmark, lambda: fig16_result)
    print()
    print(result.to_text())

    rows = sorted(result.rows, key=lambda r: r["table_entries"])
    small, large = rows[0], rows[-1]

    # Paper: "using constant memory never gives optimal results".
    for row in rows:
        best = max(row["constant"], row["shared"], row["global"])
        assert row["constant"] < best, row["table_entries"]

    # Region 1: small tables — shared and global are close.
    assert abs(small["shared"] - small["global"]) / small["global"] < 0.15

    # Region 2: some middle size favours shared over global.
    assert any(
        row["shared"] > row["global"] for row in rows[1:-1]
    ), "shared never wins the middle region"

    # Region 3: the largest table favours global (shared staging overhead).
    assert large["global"] > large["shared"]

    # Constant memory collapses once the table exceeds the broadcast cache.
    assert large["constant"] < 0.5 * large["global"]
