"""Scale-sensitivity bench: the reproduction's conclusions must not depend
on the scaled-down default input sizes."""

from collections import defaultdict

from conftest import once

from repro.experiments import scale_study


def test_benchmark_scale_study(benchmark):
    result = once(benchmark, scale_study.run)
    print()
    print(result.to_text())

    by_app = defaultdict(list)
    for row in result.rows:
        by_app[row["application"]].append(row)

    for app, rows in by_app.items():
        # The chosen optimization *family* is scale-invariant.
        assert len({r["family"] for r in rows}) == 1, app
        assert rows[0]["family"] != "other", app
        # The TOQ holds at every scale.
        assert all(r["quality"] >= 0.90 - 1e-9 for r in rows), app
        # Speedups stay within a factor ~2.5 band across a 16x scale range
        # (knob depth may shift — e.g. matmul skips deeper when a larger K
        # keeps quality above the TOQ — but the conclusion stands).
        speedups = [r["speedup"] for r in rows]
        assert max(speedups) / min(speedups) < 2.5, app
        assert min(speedups) > 1.2, app
