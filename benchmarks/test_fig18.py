"""Fig 18: cascading error in scan patterns."""

from conftest import once

from repro.experiments import fig18


def test_benchmark_fig18(benchmark):
    result = once(benchmark, fig18.run)
    print()
    print(result.to_text())

    qualities = result.column("quality")
    # Quality improves monotonically as the corruption moves towards the
    # end of the input...
    assert all(b >= a - 1e-6 for a, b in zip(qualities, qualities[1:]))
    # ...spanning the paper's ~67% (front) to ~99% (back) range.
    assert 0.55 <= qualities[0] <= 0.78
    assert qualities[-1] >= 0.98
