"""Fig 14: naive loop perforation vs pattern-based optimization."""

import numpy as np
from conftest import once


def test_benchmark_fig14(benchmark, fig14_result):
    result = once(benchmark, lambda: fig14_result)
    print()
    print(result.to_text())

    naive = np.array(result.column("reduction_only_speedup"), dtype=float)
    pattern = np.array(result.column("pattern_based_speedup"), dtype=float)

    # The paper's point: pattern-specific optimizations beat one-size-fits-
    # all perforation by roughly 2x on apps without reduction patterns.
    assert pattern.mean() > 1.8 * naive.mean()
    # Naive perforation never wins on any of these apps...
    assert all(p >= n for p, n in zip(pattern, naive))
    # ...and both settings still respect the TOQ (perforated kernels whose
    # quality collapses fall back to exact, speedup 1.0).
    assert all(q >= 0.90 - 1e-9 for q in result.column("reduction_only_quality"))
    assert all(q >= 0.90 - 1e-9 for q in result.column("pattern_based_quality"))
    # The scan benchmark demonstrates the cascading-error fallback: naive
    # perforation of Phase I is rejected.
    cumhist = result.row_for("application", "Cumulative Histogram")
    assert cumhist["reduction_only_speedup"] == 1.0
    assert cumhist["pattern_based_speedup"] > 1.2
