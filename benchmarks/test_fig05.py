"""Fig 5: adjacent-pixel difference distribution."""

from conftest import once

from repro.experiments import fig05


def test_benchmark_fig05(benchmark):
    result = once(benchmark, fig05.run)
    print()
    print(result.to_text())

    bands = result.column("natural_images_pct")
    # Paper: more than 70% of pixels differ <10% from their neighbours.
    assert bands[0] > 70.0
    # The distribution is heavily front-loaded, like the paper's histogram.
    assert bands[0] + bands[1] > 90.0
    # The ablation shows the assumption is a property of natural images,
    # not of the metric: white noise puts almost nothing in the first band.
    noise = result.column("white_noise_pct")
    assert noise[0] < 5.0
