"""Fig 17: table size vs uncoalesced-access serialization and speedup."""

import numpy as np
from conftest import once


def test_benchmark_fig17(benchmark, fig17_result):
    result = once(benchmark, lambda: fig17_result)
    print()
    print(result.to_text())

    entries = result.column("table_entries")
    overhead = result.column("serialization_overhead_pct")
    speedup = result.column("speedup")
    tpw = result.column("transactions_per_warp")

    # Serialization overhead grows monotonically with table size...
    assert all(b >= a - 1e-9 for a, b in zip(overhead, overhead[1:]))
    # ...because warps touch ever more distinct segments...
    assert all(b >= a - 1e-9 for a, b in zip(tpw, tpw[1:]))
    assert tpw[0] <= 2.0 and tpw[-1] > 24.0
    # ...and speedup falls correspondingly (paper Fig 17's two curves).
    assert all(b <= a + 1e-9 for a, b in zip(speedup, speedup[1:]))
    assert speedup[0] > 2.5 * speedup[-1]
    # Pearson correlation of the two series is strongly negative.
    corr = np.corrcoef(overhead, speedup)[0, 1]
    assert corr < -0.6
