"""Table 1: application characteristics and pattern detection coverage."""

from conftest import once

from repro.experiments import table1


def _result():
    return table1.run()


def test_benchmark_table1(benchmark):
    result = once(benchmark, _result)
    print()
    print(result.to_text())
    assert len(result.rows) == 13

    # Every paper-listed pattern must be covered by detection, allowing the
    # documented label equivalence (partition and stencil share one
    # detector and one optimization, paper §3.2).
    equivalent = {"partition": {"partition", "stencil"}, "stencil": {"stencil", "partition"}}
    for row in result.rows:
        detected = set(row["detected_patterns"].split("+"))
        for wanted in row["paper_patterns"].split("+"):
            allowed = equivalent.get(wanted, {wanted})
            assert detected & allowed, (
                f"{row['application']}: paper pattern {wanted} not detected "
                f"(got {detected})"
            )
