"""Wall-clock cost of the observability layer on a served app.

Two bounds, both on a memoization-served blackscholes session:

* **disabled** — with tracing off, an instrumented seam costs one module
  attribute check returning the shared no-op span.  Two timed runs of
  identical code cannot resolve a 1 % difference above host noise, so
  the bound is operationalised deterministically: the measured per-seam
  no-op cost times a generous spans-per-launch budget must stay under
  ``REPRO_OBS_MAX_DISABLED_OVERHEAD`` (default 1.01 = 1 %) of the
  measured launch time.
* **enabled** — full tracing (spans + timeline into the in-memory ring)
  must keep served launches within ``REPRO_OBS_MAX_OVERHEAD`` (default
  1.03 = 3 %) of the untraced time, best-of-N against best-of-N.  The
  floor is env-overridable for noisy CI hosts, mirroring
  ``REPRO_RESILIENCE_MAX_OVERHEAD``.
"""

import os
import time

from repro.apps.registry import make_app
from repro.obs import trace as obs_trace
from repro.serve import ApproxSession

LAUNCHES = 20
REPEATS = 5
#: Upper bound on instrumented seams one served launch crosses (root span,
#: rungs, compile-cache probe, backend launch, shards, quality check ...).
SPANS_PER_LAUNCH = 32

MAX_DISABLED = float(os.environ.get("REPRO_OBS_MAX_DISABLED_OVERHEAD", "1.01"))
MAX_ENABLED = float(os.environ.get("REPRO_OBS_MAX_OVERHEAD", "1.03"))


def _session():
    app = make_app("blackscholes", seed=0)
    session = ApproxSession(app, target_quality=0.90)
    session.tune()  # pay compile+tune outside the timed region
    return app, session


def _time_launches(app, session) -> float:
    inputs = app.generate_inputs(seed=app.seed)
    session.launch(inputs)  # warm caches and pools
    best = float("inf")
    for _repeat in range(REPEATS):
        started = time.perf_counter()
        for _ in range(LAUNCHES):
            session.launch(inputs)
        best = min(best, time.perf_counter() - started)
    return best / LAUNCHES


def test_disabled_noop_path_is_bounded():
    was_enabled = obs_trace.enabled()
    obs_trace.disable()
    try:
        app, session = _session()
        launch_seconds = _time_launches(app, session)

        n = 200_000
        started = time.perf_counter()
        for _ in range(n):
            with obs_trace.span("bench.noop", kernel="k"):
                pass
        per_span = (time.perf_counter() - started) / n

        overhead = 1.0 + (per_span * SPANS_PER_LAUNCH) / launch_seconds
        print(
            f"\nnoop span {per_span * 1e9:.0f}ns x {SPANS_PER_LAUNCH} seams, "
            f"launch {launch_seconds * 1e3:.3f}ms -> {overhead:.4f}x"
        )
        from conftest import write_bench_summary

        write_bench_summary(
            "obs_overhead",
            disabled_overhead=overhead,
            noop_span_ns=per_span * 1e9,
            launch_walltime_s=launch_seconds,
            disabled_ceiling=MAX_DISABLED,
        )
        assert overhead <= MAX_DISABLED, (
            f"disabled-path overhead {overhead:.4f}x above the allowed "
            f"{MAX_DISABLED:.4f}x (override with REPRO_OBS_MAX_DISABLED_OVERHEAD)"
        )
    finally:
        if was_enabled:
            obs_trace.enable()


def test_enabled_tracing_overhead_is_bounded():
    was_enabled = obs_trace.enabled()
    obs_trace.disable()
    try:
        app, session = _session()
        untraced = _time_launches(app, session)
        obs_trace.enable()  # in-memory ring, no file I/O in the bound
        traced = _time_launches(app, session)
        obs_trace.drain_records()
        overhead = traced / untraced
        print(
            f"\n{LAUNCHES} blackscholes launches: untraced {untraced * 1e3:.3f}ms, "
            f"traced {traced * 1e3:.3f}ms, overhead {overhead:.3f}x"
        )
        from conftest import write_bench_summary

        write_bench_summary(
            "obs_overhead",
            enabled_overhead=overhead,
            untraced_walltime_s=untraced,
            traced_walltime_s=traced,
            enabled_ceiling=MAX_ENABLED,
        )
        assert overhead <= MAX_ENABLED, (
            f"enabled-tracing overhead {overhead:.3f}x above the allowed "
            f"{MAX_ENABLED:.3f}x (override with REPRO_OBS_MAX_OVERHEAD)"
        )
    finally:
        obs_trace.disable()
        obs_trace.drain_records()
        if was_enabled:
            obs_trace.enable()


def _launch_times(app, session, launches=100):
    """Per-launch wall times (seconds), warmed."""
    inputs = app.generate_inputs(seed=app.seed)
    session.launch(inputs)
    times = []
    for _ in range(launches):
        started = time.perf_counter()
        session.launch(inputs)
        times.append(time.perf_counter() - started)
    return times


def _p99(times) -> float:
    ranked = sorted(times)
    return ranked[min(len(ranked) - 1, int(len(ranked) * 0.99))]


MAX_PROFILED = float(
    os.environ.get("REPRO_OBS_PROFILE_MAX_OVERHEAD", "1.03")
)
MAX_P99_SHIFT = float(os.environ.get("REPRO_OBS_HTTP_MAX_P99_SHIFT", "1.05"))


def test_profiler_overhead_is_bounded():
    """Sampling at the default 10ms interval must stay within the same
    3% envelope as tracing: threads pay nothing between samples."""
    from repro.obs.profile import DEFAULT_INTERVAL_S, SamplingProfiler
    from repro.obs.registry import MetricsRegistry

    was_enabled = obs_trace.enabled()
    obs_trace.disable()
    try:
        app, session = _session()
        baseline = _time_launches(app, session)
        profiler = SamplingProfiler(
            interval_s=DEFAULT_INTERVAL_S, registry=MetricsRegistry()
        )
        with profiler:
            profiled = _time_launches(app, session)
        overhead = profiled / baseline
        print(
            f"\n{LAUNCHES} launches: bare {baseline * 1e3:.3f}ms, "
            f"profiled {profiled * 1e3:.3f}ms "
            f"({profiler.sample_count()} samples), overhead {overhead:.3f}x"
        )
        from conftest import write_bench_summary

        write_bench_summary(
            "obs_overhead",
            profiler_overhead=overhead,
            profiler_samples=profiler.sample_count(),
            profiler_ceiling=MAX_PROFILED,
        )
        assert overhead <= MAX_PROFILED, (
            f"profiler overhead {overhead:.3f}x above the allowed "
            f"{MAX_PROFILED:.3f}x (override with REPRO_OBS_PROFILE_MAX_OVERHEAD)"
        )
    finally:
        if was_enabled:
            obs_trace.enable()


def test_http_scrape_under_load_keeps_p99_bounded():
    """A scraper hammering /metrics must not shift launch p99 beyond 5%:
    the endpoint renders on its own daemon threads and the registry's
    per-family locks are held only for snapshot reads."""
    import threading
    import urllib.request

    from repro.obs.http import ObsHTTPServer

    was_enabled = obs_trace.enabled()
    obs_trace.disable()
    try:
        app, session = _session()
        quiet = _launch_times(app, session)
        with ObsHTTPServer(port=0) as server:
            url = f"http://127.0.0.1:{server.port}/metrics"
            stop = threading.Event()
            scrapes = [0]

            def _scrape():
                while not stop.is_set():
                    with urllib.request.urlopen(url, timeout=5) as response:
                        response.read()
                    scrapes[0] += 1
                    time.sleep(0.001)

            scraper = threading.Thread(target=_scrape, daemon=True)
            scraper.start()
            try:
                scraped = _launch_times(app, session)
            finally:
                stop.set()
                scraper.join(timeout=5)
        assert scrapes[0] > 0, "the scraper never completed a fetch"
        shift = _p99(scraped) / _p99(quiet)
        print(
            f"\nlaunch p99: quiet {_p99(quiet) * 1e3:.3f}ms, under "
            f"{scrapes[0]} scrapes {_p99(scraped) * 1e3:.3f}ms "
            f"-> {shift:.3f}x"
        )
        from conftest import write_bench_summary

        write_bench_summary(
            "obs_overhead",
            http_p99_shift=shift,
            http_scrapes=scrapes[0],
            http_p99_ceiling=MAX_P99_SHIFT,
        )
        assert shift <= MAX_P99_SHIFT, (
            f"launch p99 shifted {shift:.3f}x under scraping, above the "
            f"allowed {MAX_P99_SHIFT:.3f}x (override with "
            f"REPRO_OBS_HTTP_MAX_P99_SHIFT)"
        )
    finally:
        if was_enabled:
            obs_trace.enable()
