"""Wall-clock cost of the observability layer on a served app.

Two bounds, both on a memoization-served blackscholes session:

* **disabled** — with tracing off, an instrumented seam costs one module
  attribute check returning the shared no-op span.  Two timed runs of
  identical code cannot resolve a 1 % difference above host noise, so
  the bound is operationalised deterministically: the measured per-seam
  no-op cost times a generous spans-per-launch budget must stay under
  ``REPRO_OBS_MAX_DISABLED_OVERHEAD`` (default 1.01 = 1 %) of the
  measured launch time.
* **enabled** — full tracing (spans + timeline into the in-memory ring)
  must keep served launches within ``REPRO_OBS_MAX_OVERHEAD`` (default
  1.03 = 3 %) of the untraced time, best-of-N against best-of-N.  The
  floor is env-overridable for noisy CI hosts, mirroring
  ``REPRO_RESILIENCE_MAX_OVERHEAD``.
"""

import os
import time

from repro.apps.registry import make_app
from repro.obs import trace as obs_trace
from repro.serve import ApproxSession

LAUNCHES = 20
REPEATS = 5
#: Upper bound on instrumented seams one served launch crosses (root span,
#: rungs, compile-cache probe, backend launch, shards, quality check ...).
SPANS_PER_LAUNCH = 32

MAX_DISABLED = float(os.environ.get("REPRO_OBS_MAX_DISABLED_OVERHEAD", "1.01"))
MAX_ENABLED = float(os.environ.get("REPRO_OBS_MAX_OVERHEAD", "1.03"))


def _session():
    app = make_app("blackscholes", seed=0)
    session = ApproxSession(app, target_quality=0.90)
    session.tune()  # pay compile+tune outside the timed region
    return app, session


def _time_launches(app, session) -> float:
    inputs = app.generate_inputs(seed=app.seed)
    session.launch(inputs)  # warm caches and pools
    best = float("inf")
    for _repeat in range(REPEATS):
        started = time.perf_counter()
        for _ in range(LAUNCHES):
            session.launch(inputs)
        best = min(best, time.perf_counter() - started)
    return best / LAUNCHES


def test_disabled_noop_path_is_bounded():
    was_enabled = obs_trace.enabled()
    obs_trace.disable()
    try:
        app, session = _session()
        launch_seconds = _time_launches(app, session)

        n = 200_000
        started = time.perf_counter()
        for _ in range(n):
            with obs_trace.span("bench.noop", kernel="k"):
                pass
        per_span = (time.perf_counter() - started) / n

        overhead = 1.0 + (per_span * SPANS_PER_LAUNCH) / launch_seconds
        print(
            f"\nnoop span {per_span * 1e9:.0f}ns x {SPANS_PER_LAUNCH} seams, "
            f"launch {launch_seconds * 1e3:.3f}ms -> {overhead:.4f}x"
        )
        from conftest import write_bench_summary

        write_bench_summary(
            "obs_overhead",
            disabled_overhead=overhead,
            noop_span_ns=per_span * 1e9,
            launch_walltime_s=launch_seconds,
            disabled_ceiling=MAX_DISABLED,
        )
        assert overhead <= MAX_DISABLED, (
            f"disabled-path overhead {overhead:.4f}x above the allowed "
            f"{MAX_DISABLED:.4f}x (override with REPRO_OBS_MAX_DISABLED_OVERHEAD)"
        )
    finally:
        if was_enabled:
            obs_trace.enable()


def test_enabled_tracing_overhead_is_bounded():
    was_enabled = obs_trace.enabled()
    obs_trace.disable()
    try:
        app, session = _session()
        untraced = _time_launches(app, session)
        obs_trace.enable()  # in-memory ring, no file I/O in the bound
        traced = _time_launches(app, session)
        obs_trace.drain_records()
        overhead = traced / untraced
        print(
            f"\n{LAUNCHES} blackscholes launches: untraced {untraced * 1e3:.3f}ms, "
            f"traced {traced * 1e3:.3f}ms, overhead {overhead:.3f}x"
        )
        from conftest import write_bench_summary

        write_bench_summary(
            "obs_overhead",
            enabled_overhead=overhead,
            untraced_walltime_s=untraced,
            traced_walltime_s=traced,
            enabled_ceiling=MAX_ENABLED,
        )
        assert overhead <= MAX_ENABLED, (
            f"enabled-tracing overhead {overhead:.3f}x above the allowed "
            f"{MAX_ENABLED:.3f}x (override with REPRO_OBS_MAX_OVERHEAD)"
        )
    finally:
        obs_trace.disable()
        obs_trace.drain_records()
        if was_enabled:
            obs_trace.enable()
