"""Fig 15: nearest vs linear memoization for the four case-study functions."""

from collections import defaultdict

from conftest import once


def test_benchmark_fig15(benchmark, fig15_result):
    result = once(benchmark, lambda: fig15_result)
    print()
    print(result.to_text())

    by_key = defaultdict(dict)
    for row in result.rows:
        by_key[(row["function"], row["table_entries"])][row["mode"]] = row

    for (func, entries), modes in by_key.items():
        nearest, linear = modes["nearest"], modes["linear"]
        # Paper: "for all four functions, nearest provides better speedups
        # than linear at the cost of greater quality loss".
        assert nearest["speedup"] > linear["speedup"], (func, entries)
        # Linear is at least as accurate, up to float noise once both
        # schemes have saturated (>99.9% quality).
        saturated = min(linear["quality"], nearest["quality"]) > 0.999
        tolerance = 1e-3 if saturated else 1e-6
        assert linear["quality"] >= nearest["quality"] - tolerance, (func, entries)

    # Linear is the route to very high quality (~99%).
    for func in ("Bass", "Credit", "Gompertz"):
        linear_best = max(
            (r for r in result.rows if r["function"] == func and r["mode"] == "linear"),
            key=lambda r: r["quality"],
        )
        assert linear_best["quality"] > 0.99, func

    # Paper: Gompertz achieves the lowest speedup (cheap SFU exponentials),
    # Bass and Credit the highest (float division subroutines).
    def peak(func):
        return max(
            r["speedup"]
            for r in result.rows
            if r["function"] == func and r["mode"] == "nearest"
        )

    assert peak("Gompertz") < peak("lgamma") < peak("Bass") < peak("Credit")
