"""Wall-clock and measurement-count checks for the variant registry.

Two claims back ``repro.registry``:

* **Warm starts are cheap** — tuning seeded from a populated registry
  must reach a TOQ-satisfying choice with at least
  ``REPRO_REGISTRY_MIN_SAVINGS`` (default 0.5 = 50%) fewer variant
  measurements than the cold sweep, across a representative app set
  (the full 13-app sweep is ``python -m repro.registry --selfcheck``).
* **Disabled is free** — with ``registry=None`` the serving path pays
  only is-None guards.  Two timed runs of identical code cannot resolve
  1 % above host noise, so the bound is operationalised
  deterministically (mirroring the obs disabled-path bench): the
  measured per-guard cost times a generous guards-per-launch budget must
  stay under ``REPRO_REGISTRY_MAX_DISABLED_OVERHEAD`` (default 1.01)
  of the measured launch time.
"""

import os
import tempfile
import time

from repro.apps.registry import make_app
from repro.approx.compiler import Paraprox
from repro.device import DeviceKind, spec_for
from repro.registry import VariantRegistry
from repro.runtime.tuner import GreedyTuner
from repro.serve import ApproxSession

MIN_SAVINGS = float(os.environ.get("REPRO_REGISTRY_MIN_SAVINGS", "0.5"))
MAX_DISABLED = float(
    os.environ.get("REPRO_REGISTRY_MAX_DISABLED_OVERHEAD", "1.01")
)

#: Registry seams one disabled launch crosses (tune-path checks plus the
#: drift-reaction guard), with headroom.
GUARDS_PER_LAUNCH = 8

APPS = ("gaussian", "matmul", "cumhist")
LAUNCHES = 20
REPEATS = 5


def test_warm_start_halves_variant_measurements():
    from conftest import write_bench_summary

    spec = spec_for(DeviceKind.GPU)
    cold_total = warm_total = 0
    cold_walltime = warm_walltime = 0.0
    with tempfile.TemporaryDirectory(prefix="repro-bench-registry-") as root:
        for name in APPS:
            registry = VariantRegistry(f"{root}/{name}")
            app = make_app(name)
            variants = Paraprox(target_quality=0.90).compile(app)
            inputs = app.generate_inputs(seed=app.seed)

            cold = GreedyTuner(spec, toq=0.90, registry=registry)
            started = time.perf_counter()
            cold_result = cold.profile(app, variants, inputs)
            cold_walltime += time.perf_counter() - started

            warm = GreedyTuner(spec, toq=0.90, registry=registry)
            started = time.perf_counter()
            warm_result = warm.profile(app, variants, inputs)
            warm_walltime += time.perf_counter() - started

            assert warm.last_seed_mode == "warm", (
                f"{name}: warm tune fell back to {warm.last_seed_mode}"
            )
            assert warm_result.chosen.quality >= 0.90
            assert warm_result.chosen.name == cold_result.chosen.name
            cold_total += cold.last_measured
            warm_total += warm.last_measured

    savings = 1.0 - warm_total / max(1, cold_total)
    print(
        f"\nwarm start over {len(APPS)} apps: {cold_total} cold -> "
        f"{warm_total} warm measurements ({savings:.0%} saved); "
        f"tune walltime {cold_walltime:.3f}s -> {warm_walltime:.3f}s"
    )
    write_bench_summary(
        "registry_warmstart",
        measurement_savings=savings,
        cold_measurements=cold_total,
        warm_measurements=warm_total,
        cold_tune_walltime_s=cold_walltime,
        warm_tune_walltime_s=warm_walltime,
        savings_floor=MIN_SAVINGS,
    )
    assert savings >= MIN_SAVINGS, (
        f"warm-start savings {savings:.0%} below the required "
        f"{MIN_SAVINGS:.0%} (override with REPRO_REGISTRY_MIN_SAVINGS)"
    )


def test_registry_disabled_launch_overhead_is_bounded():
    from conftest import write_bench_summary

    app = make_app("blackscholes", seed=0)
    session = ApproxSession(app, target_quality=0.90, registry=None)
    assert session.registry is None
    session.tune()
    inputs = app.generate_inputs(seed=app.seed)
    session.launch(inputs)  # warm caches and pools
    best = float("inf")
    for _repeat in range(REPEATS):
        started = time.perf_counter()
        for _ in range(LAUNCHES):
            session.launch(inputs)
        best = min(best, time.perf_counter() - started)
    launch_seconds = best / LAUNCHES

    n = 200_000
    registry = session.registry
    key = session._registry_key
    started = time.perf_counter()
    hits = 0
    for _ in range(n):
        if registry is not None and key is not None:
            hits += 1
    per_guard = (time.perf_counter() - started) / n
    assert hits == 0

    overhead = 1.0 + (per_guard * GUARDS_PER_LAUNCH) / launch_seconds
    print(
        f"\nregistry guard {per_guard * 1e9:.0f}ns x {GUARDS_PER_LAUNCH} "
        f"seams, launch {launch_seconds * 1e3:.3f}ms -> {overhead:.4f}x"
    )
    write_bench_summary(
        "registry_warmstart",
        disabled_overhead=overhead,
        guard_ns=per_guard * 1e9,
        launch_walltime_s=launch_seconds,
        disabled_ceiling=MAX_DISABLED,
    )
    assert overhead <= MAX_DISABLED, (
        f"registry-disabled overhead {overhead:.4f}x above the allowed "
        f"{MAX_DISABLED:.4f}x (override with "
        f"REPRO_REGISTRY_MAX_DISABLED_OVERHEAD)"
    )
