"""Genuine wall-clock benchmarks: exact vs tuned-approximate interpretation
for one representative application per optimization family.

The paper-shape speedups elsewhere are modelled cycles; these benches show
the approximations also pay off for the *interpreter itself* (fewer NumPy
operations executed), which is the honest wall-clock claim this
reproduction can make.
"""

import pytest

from repro import DeviceKind, Paraprox
from repro.apps.cumhist import CumulativeHistogramApp
from repro.apps.denoise import ImageDenoisingApp
from repro.apps.gamma import GammaCorrectionApp
from repro.apps.gaussian import GaussianFilterApp


def _tuned(app):
    tuning = Paraprox(target_quality=0.90).optimize(app, DeviceKind.GPU)
    assert tuning.chosen.variant is not None, "expected an approximate winner"
    return app, tuning.chosen.variant, app.generate_inputs(777)


@pytest.fixture(scope="module")
def memo_app():
    return _tuned(GammaCorrectionApp())


@pytest.fixture(scope="module")
def stencil_app():
    return _tuned(GaussianFilterApp())


@pytest.fixture(scope="module")
def reduction_app():
    return _tuned(ImageDenoisingApp())


@pytest.fixture(scope="module")
def scan_app():
    return _tuned(CumulativeHistogramApp())


def test_benchmark_memoization_exact(benchmark, memo_app):
    app, _v, inputs = memo_app
    benchmark(lambda: app.run_exact(inputs))


def test_benchmark_memoization_approx(benchmark, memo_app):
    app, v, inputs = memo_app
    benchmark(lambda: app.run_variant(v, inputs))


def test_benchmark_stencil_exact(benchmark, stencil_app):
    app, _v, inputs = stencil_app
    benchmark(lambda: app.run_exact(inputs))


def test_benchmark_stencil_approx(benchmark, stencil_app):
    app, v, inputs = stencil_app
    benchmark(lambda: app.run_variant(v, inputs))


def test_benchmark_reduction_exact(benchmark, reduction_app):
    app, _v, inputs = reduction_app
    benchmark(lambda: app.run_exact(inputs))


def test_benchmark_reduction_approx(benchmark, reduction_app):
    app, v, inputs = reduction_app
    benchmark(lambda: app.run_variant(v, inputs))


def test_benchmark_scan_exact(benchmark, scan_app):
    app, _v, inputs = scan_app
    benchmark(lambda: app.run_exact(inputs))


def test_benchmark_scan_approx(benchmark, scan_app):
    app, v, inputs = scan_app
    benchmark(lambda: app.run_variant(v, inputs))
