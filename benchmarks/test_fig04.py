"""Fig 4: bit tuning hill climb for BlackScholesBody."""

from conftest import once

from repro.experiments import fig04


def test_benchmark_fig04(benchmark):
    result = once(benchmark, fig04.run)
    print()
    print(result.to_text())

    qualities = result.column("quality")
    assert len(qualities) >= 1
    # Steepest ascent: each accepted step strictly improves quality.
    assert all(b > a for a, b in zip(qualities, qualities[1:]))
    # The root splits 15 bits equally over the three variable inputs.
    assert result.rows[0]["node"] == "(5, 5, 5)"
    # The climb terminates at a local optimum whose children were all worse
    # (the walk records children for every step including the last).
    assert result.rows[-1]["children_evaluated"] > 0
