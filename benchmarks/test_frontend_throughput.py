"""Wall-clock checks for the serving front-end and the process executor.

Two claims from the serving tier are asserted here:

* **Process beats threads on GIL-bound kernels** — a compiled kernel
  dominated by a long Python-level uniform loop over small vectors holds
  the GIL, so the thread lane serializes; 4 worker processes must lift
  front-end launch throughput by ``REPRO_FRONTEND_MIN_SPEEDUP`` (default
  2x).  Needs real cores; single-core containers skip.
* **Fault-free front-end overhead** — queue + future + dispatcher hand-off
  must cost at most ``REPRO_FRONTEND_MAX_OVERHEAD`` (default 5%) over
  calling :func:`repro.launch` directly.  Runs everywhere.
"""

import os
import time

import numpy as np
import pytest

import kernel_zoo as zoo
from repro import LaunchOptions
from repro.engine import Grid, launch
from repro.parallel import host_worker_count, shutdown_process_pool
from repro.serve import ServeFrontend

WORKERS = 4
MIN_SPEEDUP = float(os.environ.get("REPRO_FRONTEND_MIN_SPEEDUP", "2.0"))
MAX_OVERHEAD = float(os.environ.get("REPRO_FRONTEND_MAX_OVERHEAD", "0.05"))

needs_cores = pytest.mark.skipif(
    host_worker_count() < WORKERS,
    reason=f"needs >= {WORKERS} cores, have {host_worker_count()}",
)

# GIL-bound shape: 4096 threads each folding a 64-element chunk through
# sum_chunks' fixed 4096-iteration uniform loop.  Every iteration is a
# handful of NumPy ops over ~4K-element vectors — far below the size
# where NumPy drops the GIL for long stretches — so compiled threads
# contend and processes do not.
T = 1 << 12
CHUNK = 64
N = T * CHUNK
LAUNCHES = 8


def _chunk_args(seed=0):
    rng = np.random.default_rng(seed)
    return [
        np.zeros(T, np.float32),
        rng.random(N, dtype=np.float32),
        np.int32(N),
        np.int32(CHUNK),
    ]


def _frontend_throughput(executor: str) -> float:
    """Wall seconds for LAUNCHES pipelined sum_chunks launches."""
    options = LaunchOptions(
        backend="codegen",
        parallel=WORKERS,
        executor=executor,
        min_shard_threads=1,
    )
    grid = Grid.for_elements(T)
    with ServeFrontend(options=options, batch_window_s=0.0) as frontend:
        frontend.launch(zoo.sum_chunks, grid, _chunk_args())  # warm
        best = float("inf")
        for _repeat in range(3):
            argsets = [_chunk_args(seed) for seed in range(LAUNCHES)]
            started = time.perf_counter()
            futures = [
                frontend.submit(zoo.sum_chunks, grid, args)
                for args in argsets
            ]
            for future in futures:
                future.result(timeout=300)
            best = min(best, time.perf_counter() - started)
    return best


@needs_cores
def test_process_frontend_beats_thread_frontend():
    shutdown_process_pool()
    try:
        threaded = _frontend_throughput("thread")
        processed = _frontend_throughput("process")
    finally:
        shutdown_process_pool()
    speedup = threaded / processed
    print(
        f"\n{LAUNCHES} sum_chunks launches ({T} threads x {CHUNK}-chunks, "
        f"{WORKERS} workers): threads {threaded:.3f}s, "
        f"processes {processed:.3f}s, {speedup:.2f}x"
    )
    from conftest import write_bench_summary

    write_bench_summary(
        "frontend_throughput",
        process_speedup=speedup,
        thread_walltime_s=threaded,
        process_walltime_s=processed,
        workers=WORKERS,
        floor=MIN_SPEEDUP,
    )
    assert speedup >= MIN_SPEEDUP, (
        f"process-executor speedup {speedup:.2f}x below the required "
        f"{MIN_SPEEDUP:.2f}x (override with REPRO_FRONTEND_MIN_SPEEDUP)"
    )


def test_fault_free_frontend_overhead_is_bounded():
    """Per-launch cost through the front-end vs direct repro.launch."""
    serial = LaunchOptions(backend="codegen")
    grid = Grid.for_elements(T)

    def direct() -> float:
        best = float("inf")
        for _repeat in range(3):
            argsets = [_chunk_args(seed) for seed in range(LAUNCHES)]
            started = time.perf_counter()
            for args in argsets:
                launch(zoo.sum_chunks, grid, args, options=serial)
            best = min(best, time.perf_counter() - started)
        return best

    def fronted() -> float:
        with ServeFrontend(options=serial, batch_window_s=0.0) as frontend:
            frontend.launch(zoo.sum_chunks, grid, _chunk_args())  # warm
            best = float("inf")
            for _repeat in range(3):
                argsets = [_chunk_args(seed) for seed in range(LAUNCHES)]
                started = time.perf_counter()
                futures = [
                    frontend.submit(zoo.sum_chunks, grid, args)
                    for args in argsets
                ]
                for future in futures:
                    future.result(timeout=300)
                best = min(best, time.perf_counter() - started)
        return best

    launch(zoo.sum_chunks, grid, _chunk_args(), options=serial)  # warm
    base = direct()
    served = fronted()
    overhead = served / base - 1.0
    print(
        f"\n{LAUNCHES} serial sum_chunks launches: direct {base:.3f}s, "
        f"front-end {served:.3f}s, overhead {overhead * 100:.1f}%"
    )
    from conftest import write_bench_summary

    write_bench_summary(
        "frontend_throughput",
        frontend_overhead=overhead,
        direct_walltime_s=base,
        fronted_walltime_s=served,
        overhead_ceiling=MAX_OVERHEAD,
    )
    assert overhead <= MAX_OVERHEAD, (
        f"front-end overhead {overhead * 100:.1f}% exceeds "
        f"{MAX_OVERHEAD * 100:.0f}% (override with REPRO_FRONTEND_MAX_OVERHEAD)"
    )
