"""Wall-clock check for the guarded serving path.

Resilience must be affordable when nothing is failing: a fault-free
launch served through the guarded fallback ladder (containment wrapper,
output validation, breaker bookkeeping) must stay within
``REPRO_RESILIENCE_MAX_OVERHEAD`` (default 1.05 = 5 %) of the same
launch with the guard disabled.  The floor is env-overridable for noisy
hosts, mirroring ``REPRO_PARALLEL_MIN_SPEEDUP``.
"""

import os
import time

from repro.apps.registry import make_app
from repro.resilience.guard import GuardPolicy, run_ladder

LAUNCHES = 15
MAX_OVERHEAD = float(os.environ.get("REPRO_RESILIENCE_MAX_OVERHEAD", "1.05"))

GUARDED = GuardPolicy()  # serving default
UNGUARDED = GuardPolicy(enabled=False)


def _time_ladder(app, inputs, policy) -> float:
    run_ladder(app, inputs, None, backend="codegen", policy=policy)  # warm
    best = float("inf")
    for _repeat in range(3):
        started = time.perf_counter()
        for _ in range(LAUNCHES):
            run_ladder(app, inputs, None, backend="codegen", policy=policy)
        best = min(best, time.perf_counter() - started)
    return best


def test_fault_free_guarded_overhead_is_bounded():
    app = make_app("blackscholes", seed=0)
    inputs = app.generate_inputs(seed=app.seed)
    unguarded = _time_ladder(app, inputs, UNGUARDED)
    guarded = _time_ladder(app, inputs, GUARDED)
    overhead = guarded / unguarded
    print(
        f"\n{LAUNCHES} blackscholes launches: unguarded {unguarded:.3f}s, "
        f"guarded {guarded:.3f}s, overhead {overhead:.3f}x"
    )
    from conftest import write_bench_summary

    write_bench_summary(
        "resilience_overhead",
        overhead=overhead,
        unguarded_walltime_s=unguarded,
        guarded_walltime_s=guarded,
        ceiling=MAX_OVERHEAD,
    )
    assert overhead <= MAX_OVERHEAD, (
        f"fault-free guard overhead {overhead:.3f}x above the allowed "
        f"{MAX_OVERHEAD:.3f}x (override with REPRO_RESILIENCE_MAX_OVERHEAD)"
    )
