"""Fig 12: performance-quality tradeoff curves for six benchmarks."""

from collections import defaultdict

from conftest import once


def test_benchmark_fig12(benchmark, fig12_result):
    result = once(benchmark, lambda: fig12_result)
    print()
    print(result.to_text())

    by_app = defaultdict(list)
    for row in result.rows:
        by_app[row["application"]].append(row)
    assert len(by_app) == 6

    for app, rows in by_app.items():
        # Every app contributes a real curve: the exact point plus at
        # least two approximate knob settings.
        assert len(rows) >= 3, app
        exact = [r for r in rows if r["variant"] == "exact"]
        assert len(exact) == 1 and exact[0]["speedup"] == 1.0

        # The frontier trades quality for speed: the fastest point has
        # materially lower quality than exact, and some point beats 1.3x.
        fastest = max(rows, key=lambda r: r["speedup"])
        assert fastest["speedup"] > 1.25, app
        assert fastest["quality"] < 1.0, app

        # Monotone envelope: among knob settings of the *same* family the
        # highest-quality point is never also the fastest non-exact point
        # unless the whole family has one knob value.
        approx = [r for r in rows if r["variant"] != "exact"]
        best_q = max(approx, key=lambda r: r["quality"])
        if len(approx) > 2:
            assert best_q["speedup"] <= fastest["speedup"] + 1e-9, app
