"""Brownout vs hard-reject under saturation, and controller overhead.

Two claims from the overload tier are asserted here:

* **Degrading beats dropping** — at 4x offered load a front-end that
  holds full quality can only reject the excess (``BackpressureError``
  once the queue fills), while a brownout controller steps the serving
  ladder down to faster variants that still clear the paying tenant's
  ``toq_floor``.  Browned-out goodput must be at least
  ``REPRO_OVERLOAD_MIN_GAIN`` (default 2x) the hard-reject goodput, with
  **zero** served responses below the floor.
* **Fault-free controller overhead** — with no pressure, the controller
  adds one ``_observe_pressure`` call per batch window.  Measured
  against the per-batch wall time of the front-end throughput workload
  that cost must stay under ``REPRO_OVERLOAD_MAX_OVERHEAD`` (default
  1%); the end-to-end on/off delta is recorded alongside for
  corroboration (it is noise-dominated at this threshold, so only the
  direct measurement is asserted).

The workload is ``naivebayes``: its reduction-skip ladder has a large
real wall-clock spread (exact is ~10x the cost of ``red_skip8``), so the
brownout gain reflects genuine approximation speedup, not queueing luck.
"""

import copy
import os
import time

import numpy as np
import pytest

import kernel_zoo as zoo
from repro.apps.registry import make_app
from repro.engine import Grid
from repro import LaunchOptions
from repro.errors import BackpressureError
from repro.serve import ApproxSession, OverloadConfig, ServeFrontend

MIN_GAIN = float(os.environ.get("REPRO_OVERLOAD_MIN_GAIN", "2.0"))
MAX_OVERHEAD = float(os.environ.get("REPRO_OVERLOAD_MAX_OVERHEAD", "0.01"))

APP = "naivebayes"
SCALE = 0.2
#: The paying tenant tolerates half the session's target quality —
#: roomy enough that every rung of the skip ladder stays serveable.
TENANT_FLOOR = 0.5
#: Submission window at 4x the full-quality service rate.
WINDOW_S = 2.0
QUEUE_DEPTH = 4

BROWNOUT = OverloadConfig(
    levels=3,
    high_water=0.75,
    low_water=0.25,
    cooldown_s=1.0,
    # Real queue pressure drives this benchmark (unlike the drill's
    # synthetic seam): a tight delay target makes a filling queue
    # register immediately.
    queue_delay_target_s=0.02,
    deadline_s=10.0,
    window=8,
)


@pytest.fixture(scope="module")
def tuned():
    """One tuned session shared by both load runs, plus its timing."""
    app = make_app(APP, scale=SCALE)
    session = ApproxSession(app, target_quality=0.95)
    session.tune()
    inputs = app.generate_inputs(seed=1)
    session.launch(copy.deepcopy(inputs))  # warm the chosen path
    started = time.perf_counter()
    for _ in range(5):
        session.launch(copy.deepcopy(inputs))
    t_full = (time.perf_counter() - started) / 5
    yield app, session, inputs, t_full
    session.close()


def _offered_load(app, session, inputs, t_full, overload):
    """Pace requests at 4x the full-quality service rate; return
    (goodput/s, rejected, served qualities, peak brownout level)."""
    interval = t_full / 4.0
    count = max(60, int(WINDOW_S / interval))
    copies = [copy.deepcopy(inputs) for _ in range(count)]
    frontend = ServeFrontend(
        batch_window_s=0.001,
        max_batch=4,
        max_queue_depth=QUEUE_DEPTH,
        overload=overload,
    )
    frontend.register_tenant("paying", toq_floor=TENANT_FLOOR, priority=1)
    try:
        futures, rejected = [], 0
        started = time.perf_counter()
        for index, payload in enumerate(copies):
            wait = started + index * interval - time.perf_counter()
            if wait > 0:
                time.sleep(wait)
            try:
                futures.append(
                    frontend.submit_app(session, payload, tenant="paying")
                )
            except BackpressureError:
                rejected += 1
        outputs = [future.result(timeout=300) for future in futures]
        elapsed = time.perf_counter() - started
    finally:
        frontend.close()
    qualities = [app.evaluate(output, inputs) for output in outputs]
    peak = max(
        (t.to_level for t in frontend.overload.transitions), default=0
    ) if frontend.overload is not None else 0
    return len(outputs) / elapsed, rejected, qualities, peak


def test_brownout_outserves_hard_reject_at_4x_load(tuned):
    app, session, inputs, t_full = tuned
    reject_tput, rejected, reject_quals, _ = _offered_load(
        app, session, inputs, t_full, overload=None
    )
    brown_tput, brown_rejected, brown_quals, peak = _offered_load(
        app, session, inputs, t_full, overload=BROWNOUT
    )
    gain = brown_tput / reject_tput
    violations = sum(1 for q in brown_quals if q + 1e-9 < TENANT_FLOOR)
    print(
        f"\n4x offered load on {APP}: hard-reject {reject_tput:.1f}/s "
        f"({rejected} rejected), brownout {brown_tput:.1f}/s "
        f"({brown_rejected} rejected, peak level {peak}), gain {gain:.2f}x, "
        f"min served quality {min(brown_quals):.3f} (floor {TENANT_FLOOR})"
    )
    from conftest import write_bench_summary

    write_bench_summary(
        "overload_brownout",
        gain=gain,
        hard_reject_goodput=reject_tput,
        brownout_goodput=brown_tput,
        hard_rejected=rejected,
        brownout_rejected=brown_rejected,
        peak_level=peak,
        floor_violations=violations,
        min_served_quality=min(brown_quals),
        tenant_floor=TENANT_FLOOR,
        gain_floor=MIN_GAIN,
    )
    assert rejected > 0, "baseline never saturated: offered load too low"
    assert peak >= 1, "controller never engaged: comparison is vacuous"
    assert violations == 0, (
        f"{violations} browned-out response(s) served below the "
        f"{TENANT_FLOOR} tenant floor"
    )
    assert gain >= MIN_GAIN, (
        f"brownout goodput gain {gain:.2f}x below the required "
        f"{MIN_GAIN:.2f}x (override with REPRO_OVERLOAD_MIN_GAIN)"
    )


def test_fault_free_controller_overhead_is_bounded():
    """Controller cost per batch vs the front-end throughput workload."""
    T, chunk = 1 << 12, 64
    total = T * chunk

    def chunk_args(seed=0):
        rng = np.random.default_rng(seed)
        return [
            np.zeros(T, np.float32),
            rng.random(total, dtype=np.float32),
            np.int32(total),
            np.int32(chunk),
        ]

    serial = LaunchOptions(backend="codegen")
    grid = Grid.for_elements(T)
    launches = 8

    def walltime(overload):
        with ServeFrontend(
            options=serial, batch_window_s=0.0, overload=overload
        ) as frontend:
            frontend.launch(zoo.sum_chunks, grid, chunk_args())  # warm
            best = float("inf")
            for _repeat in range(3):
                argsets = [chunk_args(seed) for seed in range(launches)]
                started = time.perf_counter()
                futures = [
                    frontend.submit(zoo.sum_chunks, grid, args)
                    for args in argsets
                ]
                for future in futures:
                    future.result(timeout=300)
                best = min(best, time.perf_counter() - started)
        return best

    quiet = OverloadConfig(levels=3, queue_delay_target_s=10.0, deadline_s=60.0)
    base = walltime(None)
    with_controller = walltime(quiet)
    end_to_end = with_controller / base - 1.0

    # Direct measurement: one _observe_pressure per batch window is the
    # whole fault-free hot path (level stays 0, so no per-request
    # degradation lookups happen).
    from repro.serve.frontend import _Request

    with ServeFrontend(batch_window_s=0.0, overload=quiet) as frontend:
        now = time.perf_counter()
        batch = [
            _Request(seq=i, tenant="default", key=("k",), run=lambda: None,
                     enqueued=now)
            for i in range(launches)
        ]
        rounds = 2000
        started = time.perf_counter()
        for _ in range(rounds):
            frontend._observe_pressure(batch, now + 0.001)
        observe_cost = (time.perf_counter() - started) / rounds
    per_batch = base / launches  # batch_window_s=0 => one-request batches,
    # so charge a whole 8-request observation against one launch: an
    # upper bound on the real per-batch share.
    overhead = observe_cost / per_batch
    print(
        f"\ncontroller observation {observe_cost * 1e6:.1f}us per batch vs "
        f"{per_batch * 1000:.1f}ms per launch: {overhead * 100:.3f}% "
        f"(end-to-end on/off delta {end_to_end * 100:+.1f}%)"
    )
    from conftest import write_bench_summary

    write_bench_summary(
        "overload_brownout",
        controller_overhead=overhead,
        observe_cost_s=observe_cost,
        per_launch_wall_s=per_batch,
        end_to_end_delta=end_to_end,
        overhead_ceiling=MAX_OVERHEAD,
    )
    assert overhead <= MAX_OVERHEAD, (
        f"controller overhead {overhead * 100:.3f}% exceeds "
        f"{MAX_OVERHEAD * 100:.1f}% (override with REPRO_OVERLOAD_MAX_OVERHEAD)"
    )
    # Sanity only: wall-clock noise at min-of-3 swings this +/-10% on a
    # shared box, so the end-to-end delta gets a very loose ceiling; the
    # direct measurement above carries the real 1% contract.
    assert end_to_end <= 0.25, (
        f"front-end with idle controller ran {end_to_end * 100:.1f}% slower "
        "end-to-end; something beyond sampling cost is on the hot path"
    )
