"""Shared fixtures for the benchmark harness.

Each ``test_<id>.py`` file regenerates one table/figure of the paper.
Experiment results are computed once per session and shared between the
shape-assertion tests and the pytest-benchmark timing tests; benchmarks
use ``pedantic`` single-shot mode because a full pipeline run is the thing
being measured.
"""

import sys
from pathlib import Path

import pytest

# The codegen walltime bench launches kernels from the test-local zoo.
sys.path.insert(0, str(Path(__file__).parent.parent / "tests"))


def once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture(scope="session")
def toq():
    return 0.90


@pytest.fixture(scope="session")
def fig11_result():
    from repro.experiments import fig11

    return fig11.run()


@pytest.fixture(scope="session")
def fig12_result():
    from repro.experiments import fig12

    return fig12.run()


@pytest.fixture(scope="session")
def fig13_result():
    from repro.experiments import fig13

    return fig13.run()


@pytest.fixture(scope="session")
def fig14_result():
    from repro.experiments import fig14

    return fig14.run()


@pytest.fixture(scope="session")
def fig15_result():
    from repro.experiments import fig15

    return fig15.run()


@pytest.fixture(scope="session")
def fig16_result():
    from repro.experiments import fig16

    return fig16.run()


@pytest.fixture(scope="session")
def fig17_result():
    from repro.experiments import fig17

    return fig17.run()
