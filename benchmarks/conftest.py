"""Shared fixtures for the benchmark harness.

Each ``test_<id>.py`` file regenerates one table/figure of the paper.
Experiment results are computed once per session and shared between the
shape-assertion tests and the pytest-benchmark timing tests; benchmarks
use ``pedantic`` single-shot mode because a full pipeline run is the thing
being measured.
"""

import json
import sys
import time
from pathlib import Path

import pytest

# The codegen walltime bench launches kernels from the test-local zoo.
sys.path.insert(0, str(Path(__file__).parent.parent / "tests"))

#: Repo root — machine-readable benchmark summaries land here.
ROOT = Path(__file__).parent.parent


def once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


def write_bench_summary(name: str, **fields) -> Path:
    """Write ``BENCH_<name>.json`` at the repo root.

    Each walltime/overhead suite calls this with its headline numbers
    (speedup, overhead, walltime seconds ...), so CI and scripts can read
    benchmark outcomes without scraping pytest stdout.  Repeated calls
    for one name merge fields — a suite with several tests accumulates
    one summary file.
    """
    path = ROOT / f"BENCH_{name}.json"
    summary = {}
    if path.exists():
        try:
            summary = json.loads(path.read_text(encoding="utf-8"))
        except ValueError:
            summary = {}
    summary.update(fields)
    summary["name"] = name
    summary["written_at"] = time.strftime("%Y-%m-%dT%H:%M:%S%z")
    path.write_text(
        json.dumps(summary, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return path


@pytest.fixture(scope="session")
def toq():
    return 0.90


@pytest.fixture(scope="session")
def fig11_result():
    from repro.experiments import fig11

    return fig11.run()


@pytest.fixture(scope="session")
def fig12_result():
    from repro.experiments import fig12

    return fig12.run()


@pytest.fixture(scope="session")
def fig13_result():
    from repro.experiments import fig13

    return fig13.run()


@pytest.fixture(scope="session")
def fig14_result():
    from repro.experiments import fig14

    return fig14.run()


@pytest.fixture(scope="session")
def fig15_result():
    from repro.experiments import fig15

    return fig15.run()


@pytest.fixture(scope="session")
def fig16_result():
    from repro.experiments import fig16

    return fig16.run()


@pytest.fixture(scope="session")
def fig17_result():
    from repro.experiments import fig17

    return fig17.run()
