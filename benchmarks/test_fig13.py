"""Fig 13: per-element error CDF at TOQ = 90 %."""

from conftest import once


def test_benchmark_fig13(benchmark, fig13_result):
    result = once(benchmark, lambda: fig13_result)
    print()
    print(result.to_text())

    assert len(result.rows) == 9
    for row in result.rows:
        # Paper: the majority of output elements have < 10% error; we allow
        # the same tolerance band the figure shows (70%-100%), slightly
        # widened for the smallest scaled inputs.
        assert row["pct_le_10pct"] >= 60.0, row["application"]
        # CDFs are monotone by construction; large errors remain rare.
        assert row["pct_le_50pct"] >= row["pct_le_20pct"] >= row["pct_le_10pct"]
        assert row["pct_le_50pct"] >= 95.0, row["application"]
