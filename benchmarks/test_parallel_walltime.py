"""Wall-clock checks for the multicore parallel runtime.

Two claims back the ``repro.parallel`` subsystem and both are asserted
here on hosts with enough cores (CI's 4-vCPU runners; single-core
containers skip — there is nothing to measure):

* **Sharded launches** — a large map grid split across 4 workers must
  beat serial codegen by ``REPRO_PARALLEL_MIN_SPEEDUP`` (default 1.5x).
  The compiled callables release the GIL inside NumPy ufuncs, so threads
  scale on real cores.
* **Concurrent profiling** — a cold tuner warm-up with 4 workers must
  not be slower than the serial warm-up (the variants profile
  concurrently); the measured ratio is printed for the record.
"""

import os
import time

import numpy as np

import kernel_zoo as zoo
from repro.engine import Grid, launch
from repro.parallel import ParallelPolicy, host_worker_count

import pytest

WORKERS = 4
N = 1 << 22  # 4M threads: large enough that pool handoff is noise
LAUNCHES = 20
MIN_SPEEDUP = float(os.environ.get("REPRO_PARALLEL_MIN_SPEEDUP", "1.5"))

needs_cores = pytest.mark.skipif(
    host_worker_count() < WORKERS,
    reason=f"needs >= {WORKERS} cores, have {host_worker_count()}",
)


def _time_launches(kernel, grid, args, parallel) -> float:
    launch(kernel, grid, args, backend="codegen", parallel=parallel)  # warm
    best = float("inf")
    for _repeat in range(3):
        started = time.perf_counter()
        for _ in range(LAUNCHES):
            launch(kernel, grid, args, backend="codegen", parallel=parallel)
        best = min(best, time.perf_counter() - started)
    return best


@needs_cores
def test_sharded_map_beats_serial_codegen():
    rng = np.random.default_rng(0)
    args = [
        np.zeros(N, np.float32),
        rng.random(N, dtype=np.float32) * 100 + 1,
        rng.random(N, dtype=np.float32) * 100 + 1,
        rng.random(N, dtype=np.float32) + 0.1,
        np.float32(0.02),
        np.float32(0.3),
        np.int32(N),
    ]
    grid = Grid.for_elements(N)
    serial = _time_launches(zoo.black_scholes, grid, args, parallel=1)
    sharded = _time_launches(
        zoo.black_scholes,
        grid,
        args,
        parallel=ParallelPolicy(workers=WORKERS, min_shard_threads=1),
    )
    speedup = serial / sharded
    print(
        f"\n{LAUNCHES} blackscholes launches (n={N}, {WORKERS} workers): "
        f"serial {serial:.3f}s, sharded {sharded:.3f}s, {speedup:.2f}x"
    )
    from conftest import write_bench_summary

    write_bench_summary(
        "parallel_walltime",
        map_speedup=speedup,
        map_serial_walltime_s=serial,
        map_sharded_walltime_s=sharded,
        workers=WORKERS,
        floor=MIN_SPEEDUP,
    )
    assert speedup >= MIN_SPEEDUP, (
        f"sharded speedup {speedup:.2f}x below the required "
        f"{MIN_SPEEDUP:.2f}x (override with REPRO_PARALLEL_MIN_SPEEDUP)"
    )


@needs_cores
def test_sharded_stencil_beats_serial_codegen():
    w = h = 2048  # 4M-cell image
    rng = np.random.default_rng(1)
    args = [
        np.zeros(w * h, np.float32),
        rng.random(w * h, dtype=np.float32),
        np.int32(w),
        np.int32(h),
    ]
    grid = Grid.for_image(w, h)
    serial = _time_launches(zoo.mean3x3, grid, args, parallel=1)
    sharded = _time_launches(
        zoo.mean3x3,
        grid,
        args,
        parallel=ParallelPolicy(workers=WORKERS, min_shard_threads=1),
    )
    speedup = serial / sharded
    print(
        f"\n{LAUNCHES} mean3x3 launches ({w}x{h}, {WORKERS} workers): "
        f"serial {serial:.3f}s, sharded {sharded:.3f}s, {speedup:.2f}x"
    )
    from conftest import write_bench_summary

    write_bench_summary(
        "parallel_walltime",
        stencil_speedup=speedup,
        stencil_serial_walltime_s=serial,
        stencil_sharded_walltime_s=sharded,
    )
    assert speedup >= MIN_SPEEDUP, (
        f"sharded stencil speedup {speedup:.2f}x below the required "
        f"{MIN_SPEEDUP:.2f}x (override with REPRO_PARALLEL_MIN_SPEEDUP)"
    )


@needs_cores
def test_concurrent_tuner_warmup_not_slower_than_serial():
    from repro import DeviceKind, Paraprox
    from repro.apps.gaussian import MeanFilterApp
    from repro.device import spec_for
    from repro.runtime.tuner import GreedyTuner

    def warmup(workers) -> float:
        app = MeanFilterApp(scale=0.2)
        variants = Paraprox(target_quality=0.9).compile(app)
        tuner = GreedyTuner(spec_for(DeviceKind.GPU), toq=0.9, workers=workers)
        inputs = app.generate_inputs(seed=app.seed)
        started = time.perf_counter()
        tuner.profile(app, variants, inputs)
        return time.perf_counter() - started

    serial = warmup(1)
    concurrent = warmup(WORKERS)
    ratio = serial / concurrent
    print(
        f"\ntuner warm-up: serial {serial:.3f}s, "
        f"{WORKERS} workers {concurrent:.3f}s, {ratio:.2f}x"
    )
    # Profiling interprets (the cost model needs traces) and interpretation
    # holds the GIL more than compiled ufuncs do, so demand parity plus
    # measurement noise rather than a scaling factor.
    assert ratio >= 0.9, (
        f"concurrent warm-up was {1 / ratio:.2f}x slower than serial"
    )
